"""Execution traces and summaries for many-core simulations.

:class:`StepRecord` is defined in :mod:`repro.telemetry.records` (one
trace schema for the whole codebase) and re-exported here unchanged
for backwards compatibility; :func:`repro.telemetry.run_trace_records`
converts a full :class:`RunTrace` into telemetry records so legacy
engine traces flow through the same JSONL/Chrome exporters as the
kernel's spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from ..core.numerics import as_float
from ..telemetry.records import StepRecord

__all__ = ["StepRecord", "RunTrace", "CoreSummary"]


@dataclass(frozen=True, slots=True)
class CoreSummary:
    """Per-core aggregate for a finished run."""

    core: int
    task: str
    phases: int
    completion_step: int
    busy_steps: int
    stall_steps: int

    def as_row(self) -> dict[str, object]:
        return {
            "core": self.core,
            "task": self.task,
            "phases": self.phases,
            "finished_at": self.completion_step + 1,
            "busy": self.busy_steps,
            "stalled": self.stall_steps,
        }


@dataclass(slots=True)
class RunTrace:
    """Full record of one simulation run."""

    policy: str
    steps: list[StepRecord] = field(default_factory=list)
    core_summaries: list[CoreSummary] = field(default_factory=list)
    bus_utilization: Fraction = Fraction(0)

    @property
    def makespan(self) -> int:
        return len(self.steps)

    def summary_table(self) -> str:
        """Plain-text per-core summary."""
        lines = [
            f"policy={self.policy}  makespan={self.makespan}  "
            f"bus-utilization={as_float(self.bus_utilization) * 100:.1f}%"
        ]
        header = f"{'core':>4}  {'task':<14} {'phases':>6} {'done@':>6} {'busy':>5} {'stall':>5}"
        lines.append(header)
        for cs in self.core_summaries:
            lines.append(
                f"{cs.core:>4}  {cs.task:<14} {cs.phases:>6} "
                f"{cs.completion_step + 1:>6} {cs.busy_steps:>5} {cs.stall_steps:>5}"
            )
        return "\n".join(lines)
