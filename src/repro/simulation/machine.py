"""The simulated many-core system (the paper's Section 1 setting).

A :class:`ManyCoreSystem` is ``m`` identical fixed-speed cores behind a
single continuously divisible :class:`SharedResource` (the data bus).
This is the physical story behind the abstract CRSharing model: the
engine (:mod:`repro.simulation.engine`) moves data over the bus
according to a policy's per-step allocation and the cores progress at
the rate they are fed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from ..core.numerics import Num, ONE, ZERO, to_frac

__all__ = ["SharedResource", "Core", "ManyCoreSystem"]


@dataclass(slots=True)
class SharedResource:
    """A continuously divisible resource with per-step capacity.

    Tracks cumulative grants so utilization statistics can be derived;
    the engine resets the per-step ledger each tick.

    Attributes:
        name: human-readable label ("bus", "memory-bandwidth", ...).
        capacity: per-step capacity (the paper normalizes to 1).
    """

    name: str = "bus"
    capacity: Fraction = ONE
    _granted_this_step: Fraction = field(default=ZERO, repr=False)
    _granted_total: Fraction = field(default=ZERO, repr=False)
    _steps: int = field(default=0, repr=False)

    def begin_step(self) -> None:
        self._granted_this_step = ZERO
        self._steps += 1

    def grant(self, amount: Num) -> Fraction:
        """Reserve *amount* of this step's capacity.

        Raises:
            ValueError: if the grant would exceed capacity or is
                negative.
        """
        amt = to_frac(amount)
        if amt < ZERO:
            raise ValueError(f"negative grant {amt}")
        if self._granted_this_step + amt > self.capacity:
            raise ValueError(
                f"{self.name}: grant of {amt} exceeds remaining capacity "
                f"{self.capacity - self._granted_this_step}"
            )
        self._granted_this_step += amt
        self._granted_total += amt
        return amt

    @property
    def granted_this_step(self) -> Fraction:
        return self._granted_this_step

    @property
    def mean_utilization(self) -> Fraction:
        """Average granted share over all steps so far."""
        if self._steps == 0:
            return ZERO
        return self._granted_total / (self._steps * self.capacity)


@dataclass(slots=True)
class Core:
    """One core: executes its pinned task's phases in order.

    Attributes:
        index: core id.
        busy_steps: steps in which the core made progress.
        stall_steps: steps in which the core had work but received no
            bandwidth (the "data cannot be provided" stalls from the
            paper's introduction).
    """

    index: int
    busy_steps: int = 0
    stall_steps: int = 0

    def record(self, *, had_work: bool, progressed: bool) -> None:
        if not had_work:
            return
        if progressed:
            self.busy_steps += 1
        else:
            self.stall_steps += 1


class ManyCoreSystem:
    """``m`` cores sharing one resource."""

    __slots__ = ("cores", "resource")

    def __init__(self, num_cores: int, *, resource: SharedResource | None = None) -> None:
        if num_cores < 1:
            raise ValueError("need at least one core")
        self.cores = [Core(i) for i in range(num_cores)]
        self.resource = resource if resource is not None else SharedResource()

    @property
    def num_cores(self) -> int:
        return len(self.cores)
