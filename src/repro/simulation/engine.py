"""Discrete-time many-core engine.

Runs a set of phase-structured tasks (one per core) on a
:class:`~repro.simulation.machine.ManyCoreSystem` under any CRSharing
policy.  The engine is the "physical" view of the same dynamics the
abstract :func:`repro.core.simulator.simulate` computes: phases map to
jobs, bus grants map to resource shares, and the per-core progress
rule is Eq. (1)/(2) of the paper.

The engine supports arbitrary phase volumes (the paper's general
model), records full :class:`~repro.simulation.traces.RunTrace`
telemetry (per-core busy/stall accounting, bus utilization), and
cross-checks its final makespan against the abstract simulator --
the two views must agree step for step.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.instance import Instance
from ..core.numerics import ONE, ZERO, frac_sum
from ..core.simulator import PolicyFn, default_step_limit
from ..core.state import ExecState
from ..exceptions import SimulationLimitError
from ..generators.workloads import TaskSpec, tasks_to_instance
from .machine import ManyCoreSystem
from .traces import CoreSummary, RunTrace, StepRecord

__all__ = ["ManyCoreEngine", "run_workload"]


class ManyCoreEngine:
    """Drives one workload to completion under a policy.

    Args:
        tasks: one task per core.
        unit_split: split phases into unit jobs (to compare against the
            exact algorithms) or keep them whole (general model).
    """

    def __init__(self, tasks: list[TaskSpec], *, unit_split: bool = False) -> None:
        if not tasks:
            raise ValueError("need at least one task")
        self.tasks = list(tasks)
        self.instance: Instance = tasks_to_instance(self.tasks, unit_split=unit_split)
        self.system = ManyCoreSystem(len(tasks))

    def run(
        self,
        policy: PolicyFn,
        *,
        max_steps: int | None = None,
        backend: str = "exact",
    ) -> RunTrace:
        """Execute the workload; returns the full trace.

        Args:
            policy: the resource-assignment policy.
            max_steps: hard safety limit.
            backend: ``"exact"`` drives the live machine model in
                Fraction arithmetic (the default, bit-exact);
                ``"vector"`` runs the NumPy float64 backend and
                reconstructs the trace from its recorded rows --
                same step semantics, float tolerance, much faster for
                wide machines.

        Raises:
            SimulationLimitError: if the policy exceeds the step limit.
            ValueError: if the policy over-grants the bus.
        """
        if backend != "exact":
            return self._run_backend(policy, backend, max_steps=max_steps)
        instance = self.instance
        limit = default_step_limit(instance) if max_steps is None else max_steps
        state = ExecState(instance)
        policy_name = getattr(policy, "name", type(policy).__name__)
        trace = RunTrace(policy=str(policy_name))
        finish_step: dict[int, int] = {}

        while not state.all_done:
            if state.t >= limit:
                raise SimulationLimitError(
                    f"workload did not finish within {limit} steps"
                )
            shares = [Fraction(x) if not isinstance(x, Fraction) else x
                      for x in policy(state)]
            if frac_sum(shares) > ONE:
                raise ValueError("policy over-granted the shared bus")
            self.system.resource.begin_step()
            for x in shares:
                self.system.resource.grant(x)
            had_work = [state.is_active(i) for i in range(state.num_processors)]
            outcome = state.apply(shares)
            for core in self.system.cores:
                core.record(
                    had_work=had_work[core.index],
                    progressed=outcome.processed[core.index] > ZERO
                    or any(c[0] == core.index for c in outcome.completed),
                )
            trace.steps.append(
                StepRecord(
                    t=state.t - 1,
                    grants=tuple(shares),
                    progress=outcome.processed,
                    completed=outcome.completed,
                )
            )
            for (i, j) in outcome.completed:
                if j == instance.num_jobs(i) - 1:
                    finish_step[i] = state.t - 1

        for core in self.system.cores:
            task = self.tasks[core.index]
            trace.core_summaries.append(
                CoreSummary(
                    core=core.index,
                    task=task.name,
                    phases=len(task.phases),
                    completion_step=finish_step[core.index],
                    busy_steps=core.busy_steps,
                    stall_steps=core.stall_steps,
                )
            )
        trace.bus_utilization = self.system.resource.mean_utilization
        return trace

    def _run_backend(
        self, policy: PolicyFn, backend: str, *, max_steps: int | None
    ) -> RunTrace:
        """Run via a pluggable backend and rebuild the trace from its
        recorded share/progress rows (float tolerance applies)."""
        from ..core.simulator import run_policy

        result = run_policy(
            self.instance,
            policy,
            backend=backend,
            max_steps=max_steps,
            record_shares=True,
        )
        policy_name = getattr(policy, "name", type(policy).__name__)
        trace = RunTrace(policy=str(policy_name))
        m = self.instance.num_processors
        completed_at: dict[int, list[tuple[int, int]]] = {}
        # A core has work until the step its last job completes
        # (inclusive); it progresses when it processes work or
        # completes a (possibly zero-work) job.
        last_step = [0] * m
        for (i, j), t in result.completion_steps.items():
            completed_at.setdefault(t, []).append((i, j))
            if t > last_step[i]:
                last_step[i] = t
        busy = [0] * m
        stall = [0] * m
        granted_total = 0.0
        for t in range(result.makespan):
            grants = tuple(result.shares[t])
            progress = tuple(result.processed[t])
            completions = tuple(completed_at.get(t, ()))
            granted_total += float(sum(grants))
            trace.steps.append(
                StepRecord(
                    t=t, grants=grants, progress=progress, completed=completions
                )
            )
            finishing = {i for i, _ in completions}
            for core in range(m):
                if t > last_step[core]:
                    continue
                if progress[core] > 0.0 or core in finishing:
                    busy[core] += 1
                else:
                    stall[core] += 1
        for core in range(m):
            task = self.tasks[core]
            trace.core_summaries.append(
                CoreSummary(
                    core=core,
                    task=task.name,
                    phases=len(task.phases),
                    completion_step=last_step[core],
                    busy_steps=busy[core],
                    stall_steps=stall[core],
                )
            )
        trace.bus_utilization = (
            granted_total / result.makespan if result.makespan else 0.0
        )
        return trace


def run_workload(
    tasks: list[TaskSpec],
    policy: PolicyFn,
    *,
    unit_split: bool = False,
    max_steps: int | None = None,
    backend: str = "exact",
) -> RunTrace:
    """One-shot convenience wrapper around :class:`ManyCoreEngine`."""
    return ManyCoreEngine(tasks, unit_split=unit_split).run(
        policy, max_steps=max_steps, backend=backend
    )
