"""Discrete-time many-core engine.

Runs a set of phase-structured tasks (one per core) on a
:class:`~repro.simulation.machine.ManyCoreSystem` under any CRSharing
policy.  The engine is the "physical" view of the same dynamics the
abstract :func:`repro.core.simulator.simulate` computes: phases map to
jobs, bus grants map to resource shares, and the per-core progress
rule is Eq. (1)/(2) of the paper.

Since the kernel refactor the engine is a thin configuration of
:func:`repro.core.kernel.run_kernel`: the selected backend contributes
the arithmetic runtime (exact Fractions or vectorized float64) and the
engine contributes :class:`TraceObserver`, the *single* place where
:class:`~repro.simulation.traces.RunTrace` telemetry (per-core
busy/stall accounting, bus utilization, completion steps) is built --
both arithmetic paths share it, so the trace semantics cannot drift
apart.  Infeasible assignments (e.g. over-granting the bus) raise
:class:`~repro.exceptions.InfeasibleAssignmentError` through the
kernel's shared feasibility check, uniformly across all layers.

Tasks may declare *start offsets* (``TaskSpec.start``), which map to
the instance's per-processor release times: a core whose task has not
started yet is inactive and earns neither busy nor stall steps.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.instance import Instance
from ..core.kernel import ExactRuntime, StepEvent, StepObserver, run_kernel
from ..core.simulator import PolicyFn
from ..generators.workloads import TaskSpec, tasks_to_instance
from .machine import ManyCoreSystem
from .traces import CoreSummary, RunTrace, StepRecord

__all__ = ["ManyCoreEngine", "TraceObserver", "run_workload"]


class TraceObserver(StepObserver):
    """Build a :class:`RunTrace` from kernel step events.

    The one shared trace builder: the exact and vector runtimes feed
    it the same :class:`~repro.core.kernel.StepEvent` stream, so
    busy/stall accounting and bus utilization are computed by one
    implementation regardless of arithmetic.  A core is *busy* in a
    step when it was active (released, with unfinished jobs) and
    processed work or completed a job; it *stalls* when it was active
    but received no useful bandwidth.
    """

    __slots__ = ("instance", "tasks", "trace", "_busy", "_stall", "_finish", "_granted")

    def __init__(
        self, instance: Instance, tasks: list[TaskSpec], policy_name: str
    ) -> None:
        self.instance = instance
        self.tasks = tasks
        self.trace = RunTrace(policy=policy_name)
        m = instance.num_processors
        self._busy = [0] * m
        self._stall = [0] * m
        self._finish: dict[int, int] = {}
        self._granted = 0  # Fraction or float, depending on the runtime

    def on_step(self, event: StepEvent) -> None:
        grants = tuple(event.shares)
        progress = tuple(event.processed)
        self._granted += sum(event.shares)
        self.trace.steps.append(
            StepRecord(
                t=event.t,
                grants=grants,
                progress=progress,
                completed=tuple(event.completed),
            )
        )
        finishing = {i for i, _ in event.completed}
        for i in range(self.instance.num_processors):
            if not event.had_work[i]:
                continue
            if progress[i] > 0 or i in finishing:
                self._busy[i] += 1
            else:
                self._stall[i] += 1

    def on_complete(self, job, t: int) -> None:
        i, j = job
        if j == self.instance.num_jobs(i) - 1:
            self._finish[i] = t

    def on_finish(self, makespan: int) -> None:
        for core, task in enumerate(self.tasks):
            self.trace.core_summaries.append(
                CoreSummary(
                    core=core,
                    task=task.name,
                    phases=len(task.phases),
                    completion_step=self._finish[core],
                    busy_steps=self._busy[core],
                    stall_steps=self._stall[core],
                )
            )
        if makespan:
            utilization = self._granted / makespan
            # Exact runs keep the Fraction; float runs normalize the
            # accumulated numpy scalar to a plain Python float.
            if not isinstance(utilization, Fraction):
                utilization = float(utilization)
            self.trace.bus_utilization = utilization
        else:
            self.trace.bus_utilization = 0.0


class _MachineObserver(StepObserver):
    """Drive the live :class:`ManyCoreSystem` ledger (exact runs only:
    the bus ledger is exact Fraction bookkeeping)."""

    __slots__ = ("system",)

    def __init__(self, system: ManyCoreSystem) -> None:
        self.system = system

    def on_step(self, event: StepEvent) -> None:
        resource = self.system.resource
        resource.begin_step()
        for share in event.shares:
            resource.grant(share)
        finishing = {i for i, _ in event.completed}
        for core in self.system.cores:
            i = core.index
            core.record(
                had_work=bool(event.had_work[i]),
                progressed=event.processed[i] > 0 or i in finishing,
            )


class ManyCoreEngine:
    """Drives one workload to completion under a policy.

    Args:
        tasks: one task per core (start offsets become release times).
        unit_split: split phases into unit jobs (to compare against the
            exact algorithms) or keep them whole (general model).
    """

    def __init__(self, tasks: list[TaskSpec], *, unit_split: bool = False) -> None:
        if not tasks:
            raise ValueError("need at least one task")
        self.tasks = list(tasks)
        self.instance: Instance = tasks_to_instance(self.tasks, unit_split=unit_split)
        self.system = ManyCoreSystem(len(tasks))

    def run(
        self,
        policy: PolicyFn | str,
        *,
        max_steps: int | None = None,
        backend: str = "exact",
        stall_limit: int = 3,
    ) -> RunTrace:
        """Execute the workload; returns the full trace.

        Args:
            policy: the resource-assignment policy, or a registry name
                (resolved via :func:`repro.algorithms.resolve_policy`;
                unknown names raise
                :class:`~repro.exceptions.UnknownPolicyError`).
            max_steps: hard safety limit.
            backend: ``"exact"`` runs the kernel in Fraction arithmetic
                and keeps the live machine ledger exact (the default);
                ``"vector"`` plugs the NumPy float64 runtime into the
                same kernel and the same trace observer -- identical
                step semantics, float tolerance, much faster for wide
                machines.
            stall_limit: abort after this many consecutive
                zero-progress steps with no pending arrival.

        Raises:
            SimulationLimitError: if the policy exceeds the step limit.
            InfeasibleAssignmentError: if the policy over-grants the
                shared bus (checked by the kernel's shared feasibility
                check, uniformly across backends).
        """
        from ..algorithms import resolve_policy  # local: avoid import cycle
        from ..backends import get_backend  # local: backends build on core

        policy = resolve_policy(policy)
        runtime = get_backend(backend).make_runtime(self.instance, policy)
        policy_name = getattr(policy, "name", type(policy).__name__)
        tracer = TraceObserver(self.instance, self.tasks, str(policy_name))
        observers: list[StepObserver] = [tracer]
        if isinstance(runtime, ExactRuntime):
            observers.append(_MachineObserver(self.system))
        run_kernel(
            runtime,
            policy,
            observers,
            max_steps=max_steps,
            stall_limit=stall_limit,
            label="workload",
        )
        return tracer.trace


def run_workload(
    tasks: list[TaskSpec],
    policy: PolicyFn,
    *,
    unit_split: bool = False,
    max_steps: int | None = None,
    backend: str = "exact",
) -> RunTrace:
    """One-shot convenience wrapper around :class:`ManyCoreEngine`."""
    return ManyCoreEngine(tasks, unit_split=unit_split).run(
        policy, max_steps=max_steps, backend=backend
    )
