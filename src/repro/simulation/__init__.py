"""Many-core shared-bandwidth simulation substrate (Section 1's
motivating system, built synthetically per the reproduction rules)."""

from .engine import ManyCoreEngine, run_workload
from .machine import Core, ManyCoreSystem, SharedResource
from .traces import CoreSummary, RunTrace, StepRecord

__all__ = [
    "Core",
    "CoreSummary",
    "ManyCoreEngine",
    "ManyCoreSystem",
    "RunTrace",
    "SharedResource",
    "StepRecord",
    "run_workload",
]
