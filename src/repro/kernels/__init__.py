"""Compiled execution tier: JIT-fused water-fill + step loop.

An optional acceleration layer under the backends
(:mod:`repro.backends`): numba-``@njit`` (nopython, cached)
implementations of the hot loop -- the water-fill grant rules
(:mod:`repro.kernels.waterfill`), and a whole-run driver that steps an
instance from release to makespan inside one JIT region
(:mod:`repro.kernels.driver`).  The dispatch layer
(:mod:`repro.kernels.dispatch`) decides per run whether the fused
driver may serve it and translates results back into the observer
world.

Numba is optional (``pip install .[compiled]``) and import-guarded in
exactly one place (:mod:`repro.kernels._numba`); without it this
package still imports, the kernels run interpreted, and ``"auto"``
mode transparently keeps using the NumPy per-step paths.

Example:
    >>> from repro.kernels import NUMBA_AVAILABLE, normalize_compiled
    >>> normalize_compiled(None)
    'auto'
    >>> normalize_compiled(True)
    'on'
    >>> isinstance(NUMBA_AVAILABLE, bool)
    True
"""

from __future__ import annotations

from ._numba import NUMBA_AVAILABLE, njit, numba_version
from .dispatch import (
    COMPILED_MODES,
    CompiledDecision,
    compiled_policy_code,
    decide,
    instance_tables,
    normalize_compiled,
    note_fallback,
    replay_run,
    run_fused_instance,
)
from .driver import (
    STATUS_INFEASIBLE,
    STATUS_OK,
    STATUS_STALLED,
    STATUS_STEP_LIMIT,
    run_fused,
)
from .waterfill import fill_multi, fill_single, round_key, stable_order

__all__ = [
    "NUMBA_AVAILABLE",
    "njit",
    "numba_version",
    "COMPILED_MODES",
    "CompiledDecision",
    "compiled_policy_code",
    "decide",
    "instance_tables",
    "normalize_compiled",
    "note_fallback",
    "replay_run",
    "run_fused_instance",
    "run_fused",
    "STATUS_OK",
    "STATUS_STEP_LIMIT",
    "STATUS_STALLED",
    "STATUS_INFEASIBLE",
    "fill_single",
    "fill_multi",
    "round_key",
    "stable_order",
]
