"""Dispatch layer between the backends and the fused compiled driver.

The backends never call :func:`repro.kernels.driver.run_fused`
directly; they ask this module three questions:

* :func:`normalize_compiled` -- what does the user's ``compiled``
  argument (``"auto"``/``"on"``/``"off"``, booleans, ``None``) mean?
* :func:`decide` -- can *this* run (policy, observer needs, numba
  availability) use the fused driver, and if not, why not?  Under
  ``"on"`` an ineligible run raises
  :class:`~repro.exceptions.CompiledUnsupportedError`; under
  ``"auto"`` it falls back to the per-step path and the reason is
  counted in the ``compiled.fallbacks`` telemetry counter
  (:func:`note_fallback`).
* :func:`run_fused_instance` -- execute one instance through the
  driver and translate its status code back into the exceptions the
  interpreted kernel raises.

Eligibility is an *exact-type* lookup: a subclass of a built-in policy
may override ``shares_array``, so only the registered classes
themselves map to driver codes.  Without numba the driver runs
interpreted -- ``"auto"`` then prefers the NumPy per-step path (reason
``"numba-missing"``), while ``"on"`` still forces the fused driver so
the compiled code path stays end-to-end testable everywhere.

Completion tables produced by the driver are replayed through the
observer stack (:func:`replay_run`), so objective values and
completion steps are indistinguishable from a per-step run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from ..exceptions import (
    CompiledUnsupportedError,
    InfeasibleAssignmentError,
    SimulationLimitError,
)
from ..telemetry import get_session
from ._numba import NUMBA_AVAILABLE
from .driver import (
    CODE_EDF_WATERFILL,
    CODE_FEWEST_REMAINING_JOBS_FIRST,
    CODE_GREEDY_BALANCE,
    CODE_GREEDY_FINISH_JOBS,
    CODE_LARGEST_REQUIREMENT_FIRST,
    CODE_PROPORTIONAL_SHARE,
    CODE_ROUND_ROBIN,
    CODE_WEIGHTED_SRPT,
    STATUS_INFEASIBLE,
    STATUS_OK,
    STATUS_STALLED,
    STATUS_STEP_LIMIT,
    run_fused,
)

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..core.instance import Instance

__all__ = [
    "COMPILED_MODES",
    "CompiledDecision",
    "normalize_compiled",
    "compiled_policy_code",
    "decide",
    "note_fallback",
    "instance_tables",
    "run_fused_instance",
    "replay_run",
]

#: The three dispatch modes accepted everywhere a ``compiled``
#: argument exists.
COMPILED_MODES = ("auto", "on", "off")

#: Lazily built exact-type map {policy class: driver code}.
_POLICY_CODES: dict[type, int] | None = None


def normalize_compiled(value: Any, *, default: str = "auto") -> str:
    """Normalize a user-facing ``compiled`` argument to a mode string.

    ``None`` means "use *default*" (the backend's own setting);
    booleans map to ``"on"``/``"off"``; strings must be one of
    :data:`COMPILED_MODES`.

    Raises:
        ValueError: for anything else.
    """
    if value is None:
        value = default
    if value is True:
        return "on"
    if value is False:
        return "off"
    if isinstance(value, str) and value in COMPILED_MODES:
        return value
    raise ValueError(
        f"compiled must be one of {COMPILED_MODES} (or a boolean), "
        f"got {value!r}"
    )


def _policy_codes() -> dict[type, int]:
    """The exact-type policy-class -> driver-code map (built lazily).

    Lazy so importing :mod:`repro.kernels` never drags the algorithm
    registry in (the algorithms package imports backends, which import
    this module).
    """
    global _POLICY_CODES
    if _POLICY_CODES is None:
        from ..algorithms.flowdeadline import EDFWaterfill, WeightedSRPT
        from ..algorithms.greedy_balance import GreedyBalance
        from ..algorithms.heuristics import (
            FewestRemainingJobsFirst,
            GreedyFinishJobs,
            LargestRequirementFirst,
            ProportionalShare,
        )
        from ..algorithms.round_robin import RoundRobin

        _POLICY_CODES = {
            GreedyBalance: CODE_GREEDY_BALANCE,
            RoundRobin: CODE_ROUND_ROBIN,
            GreedyFinishJobs: CODE_GREEDY_FINISH_JOBS,
            LargestRequirementFirst: CODE_LARGEST_REQUIREMENT_FIRST,
            FewestRemainingJobsFirst: CODE_FEWEST_REMAINING_JOBS_FIRST,
            ProportionalShare: CODE_PROPORTIONAL_SHARE,
            EDFWaterfill: CODE_EDF_WATERFILL,
            WeightedSRPT: CODE_WEIGHTED_SRPT,
        }
    return _POLICY_CODES


def compiled_policy_code(policy: Any) -> int | None:
    """The fused-driver code for *policy*, or ``None``.

    Exact-type match only: subclasses may override ``shares_array``
    with a different rule, so they never silently inherit the base
    class's compiled path.
    """
    return _policy_codes().get(type(policy))


@dataclass(frozen=True, slots=True)
class CompiledDecision:
    """Outcome of :func:`decide` for one run.

    Attributes:
        code: the driver's policy code when the run may use the fused
            driver, else ``None``.
        reason: why the run falls back (``"policy"``,
            ``"record-shares"``, ``"numba-missing"``) when *code* is
            ``None``; ``None`` otherwise.
    """

    code: int | None
    reason: str | None


def decide(
    policy: Any, mode: str, *, record_shares: bool = False
) -> CompiledDecision:
    """Decide whether one run goes through the fused driver.

    Args:
        policy: the (already resolved) policy object.
        mode: a normalized mode (``"auto"``/``"on"``/``"off"``).
        record_shares: whether the caller needs per-step share rows --
            the fused driver records completions only, so share
            recording forces the per-step path.

    Raises:
        CompiledUnsupportedError: under ``mode="on"`` when the run
            cannot be compiled (unknown policy, or share recording
            requested); ``"auto"`` reports a fallback reason instead.
    """
    if mode == "off":
        return CompiledDecision(code=None, reason=None)
    code = compiled_policy_code(policy)
    if code is None:
        if mode == "on":
            raise CompiledUnsupportedError(
                f"compiled='on' but policy "
                f"{getattr(policy, 'name', policy)!r} has no fused-driver "
                "path (only the built-in water-filling policies do); use "
                "compiled='auto' to fall back transparently"
            )
        return CompiledDecision(code=None, reason="policy")
    if record_shares:
        if mode == "on":
            raise CompiledUnsupportedError(
                "compiled='on' is incompatible with record_shares=True: "
                "the fused driver does not materialize per-step share "
                "rows; pass record_shares=False or compiled='auto'"
            )
        return CompiledDecision(code=None, reason="record-shares")
    if mode == "auto" and not NUMBA_AVAILABLE:
        # Interpreted, the fused driver is slower than the NumPy
        # per-step path; only force it when explicitly asked to.
        return CompiledDecision(code=None, reason="numba-missing")
    return CompiledDecision(code=code, reason=None)


def note_fallback(reason: str | None) -> None:
    """Count one compiled-tier fallback in telemetry (if installed)."""
    if reason is None:
        return
    session = get_session()
    if session is not None:
        session.metrics.counter("compiled.fallbacks", reason=reason).inc()


def instance_tables(instance: "Instance") -> tuple:
    """Flatten *instance* into the driver's input arrays.

    Returns ``(num_jobs, release, work, req, reqk, wgt, dl)`` --
    the padded job tables :func:`repro.kernels.driver.run_fused`
    consumes (for ``k == 1`` the ``reqk`` tensor is the requirement
    table with a leading unit axis, no copy).
    """
    m = instance.num_processors
    nmax = instance.max_jobs
    k = instance.num_resources
    num_jobs = np.array(
        [instance.num_jobs(i) for i in range(m)], dtype=np.int64
    )
    release = np.array(instance.releases, dtype=np.int64)
    work = np.zeros((m, nmax), dtype=np.float64)
    req = np.zeros((m, nmax), dtype=np.float64)
    wgt = np.zeros((m, nmax), dtype=np.float64)
    dl = np.full((m, nmax), np.inf, dtype=np.float64)
    for i, queue in enumerate(instance.queues):
        for j, job in enumerate(queue):
            work[i, j] = float(job.work)
            req[i, j] = float(job.requirement)
            wgt[i, j] = float(job.weight)
            if job.deadline is not None:
                dl[i, j] = float(job.deadline)
    if k == 1:
        reqk = req.reshape(1, m, nmax)
    else:
        reqk = np.zeros((k, m, nmax), dtype=np.float64)
        for i, queue in enumerate(instance.queues):
            for j, job in enumerate(queue):
                for lane, r in enumerate(job.requirements):
                    reqk[lane, i, j] = float(r)
    return num_jobs, release, work, req, reqk, wgt, dl


def run_fused_instance(
    instance: "Instance",
    policy_code: int,
    *,
    tol: float,
    max_steps: int | None = None,
    stall_limit: int = 3,
    label: str = "policy",
) -> tuple[int, np.ndarray]:
    """Run one instance through the fused driver.

    Returns ``(makespan, completion)`` where ``completion`` is the
    driver's ``(m, nmax)`` int64 table of 0-based completion steps.

    Raises:
        SimulationLimitError: step limit exceeded or the policy
            stalled, with the interpreted kernel's message shapes.
        InfeasibleAssignmentError: the fused fill emitted an invalid
            share row (cannot happen for the built-in rules; kept as a
            defensive mirror of the per-step check phase).
    """
    if max_steps is None:
        from ..core.simulator import default_step_limit  # lazy: cycle

        limit = default_step_limit(instance)
    else:
        limit = max_steps
    tables = instance_tables(instance)
    status, steps, completion = run_fused(
        *tables, policy_code, float(tol), limit, stall_limit
    )
    if status == STATUS_OK:
        return steps, completion
    if status == STATUS_STEP_LIMIT:
        raise SimulationLimitError(
            f"{label} did not finish within {limit} steps (compiled)"
        )
    if status == STATUS_STALLED:
        raise SimulationLimitError(
            f"{label} made no progress for {stall_limit} consecutive "
            f"steps (t={steps}); aborting (compiled)"
        )
    if status == STATUS_INFEASIBLE:
        raise InfeasibleAssignmentError(
            f"step {steps}: compiled fill produced an infeasible share "
            "assignment"
        )
    raise AssertionError(  # pragma: no cover - exhaustive statuses
        f"unknown fused-driver status {status}"
    )


def replay_run(
    completion: np.ndarray, makespan: int, observers=()
) -> dict[tuple[int, int], int]:
    """Replay a driver completion table through step observers.

    Completions are delivered in the per-step order the interpreted
    kernel uses -- ascending step, then ascending processor index --
    followed by one ``on_finish(makespan)``, so completion-driven
    observers (objective accumulators, completion recorders) see an
    identical event stream.  Returns the ``{(i, j): t}`` completion
    map for :class:`~repro.backends.base.BackendResult`.
    """
    rows, cols = np.nonzero(completion >= 0)
    steps = completion[rows, cols]
    completion_steps: dict[tuple[int, int], int] = {}
    for pos in np.lexsort((cols, rows, steps)):
        i = int(rows[pos])
        j = int(cols[pos])
        t = int(steps[pos])
        completion_steps[(i, j)] = t
        for observer in observers:
            observer.on_complete((i, j), t)
    for observer in observers:
        observer.on_finish(makespan)
    return completion_steps
