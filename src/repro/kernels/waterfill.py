"""Compiled water-filling kernels (single- and multi-resource).

Plain-loop implementations of the grant rules behind
:func:`repro.algorithms.base.water_fill_array` and
:func:`repro.algorithms.base.water_fill_array_multi`, written in
numba-``@njit``-compatible style: scalar loops, no fancy NumPy
dispatch, one allocation per call.  With numba installed they compile
to nopython machine code (cached across processes); without numba they
run interpreted and exist mainly so the fused driver
(:mod:`repro.kernels.driver`) stays importable and testable
everywhere.

Numerical contract: the sequential grant rule here is the *exact*
path's rule (visit processors in priority order, grant
``min(remaining, requirement, capacity_left)`` -- or the bottleneck
speed fraction for ``k > 1``).  The vectorized prefix-sum /
depletion-rounds fills realize the same rule with different float
operation order, so compiled and vector runs agree within the backend
tolerance (1e-9) rather than bit-for-bit; the crosscheck suite in
``tests/kernels`` pins that agreement (and the integer completion
steps, which coincide exactly on requirement grids coarser than the
tolerance).
"""

from __future__ import annotations

import numpy as np

from ._numba import njit

__all__ = ["round_key", "stable_order", "fill_single", "fill_multi"]


@njit(cache=True)
def round_key(values: np.ndarray) -> np.ndarray:
    """Quantize a float sort key to 9 decimals (compiled ``sort_key``).

    ``np.rint(x * 1e9) / 1e9`` is exactly what ``np.round(x, 9)``
    computes elementwise, so compiled priority orders break near-ties
    identically to :func:`repro.algorithms.base.sort_key`.
    """
    return np.rint(values * 1e9) / 1e9


@njit(cache=True)
def stable_order(primary: np.ndarray, secondary: np.ndarray) -> np.ndarray:
    """Indices sorting by (*primary*, *secondary*, index), all ascending.

    The compiled equivalent of ``np.lexsort((secondary, primary))``
    (numba has no lexsort): a stable mergesort by the secondary key
    followed by a stable mergesort by the primary key yields the same
    unique order -- primary first, secondary within primary ties, and
    original index within full ties.
    """
    by_secondary = np.argsort(secondary, kind="mergesort")
    return by_secondary[np.argsort(primary[by_secondary], kind="mergesort")]


@njit(cache=True)
def fill_single(
    remaining: np.ndarray,
    requirements: np.ndarray,
    eligible: np.ndarray,
    order: np.ndarray,
) -> np.ndarray:
    """Sequential single-resource water-fill at unit capacity.

    Visits processors in *order* and grants each eligible one
    ``min(remaining, requirement, capacity_left)`` -- the exact path's
    rule.  Ineligible or zero-useful processors neither receive nor
    consume capacity.  Returns the ``(m,)`` share vector.
    """
    m = order.shape[0]
    shares = np.zeros(m, dtype=np.float64)
    left = 1.0
    for pos in range(m):
        i = order[pos]
        if not eligible[i]:
            continue
        useful = remaining[i]
        if requirements[i] < useful:
            useful = requirements[i]
        if useful <= 0.0:
            continue
        if useful > left:
            useful = left
        shares[i] = useful
        left -= useful
        if left <= 0.0:
            break
    return shares


@njit(cache=True)
def fill_multi(
    remaining: np.ndarray,
    rstar: np.ndarray,
    reqk: np.ndarray,
    eligible: np.ndarray,
    order: np.ndarray,
) -> np.ndarray:
    """Sequential bottleneck water-fill over ``k`` resources.

    The exact path's multi-resource rule
    (:func:`repro.algorithms.base.water_fill_multi`): each processor in
    *order* gets speed fraction
    ``min(1, remaining / r*, min_l left_l / r_l)`` over the resources
    its active job needs, charging ``fraction * r_l`` against every
    resource.  *reqk* is the ``(k, m)`` active-requirement matrix;
    returns the ``(k, m)`` share matrix.
    """
    k = reqk.shape[0]
    m = order.shape[0]
    shares = np.zeros((k, m), dtype=np.float64)
    left = np.full(k, 1.0, dtype=np.float64)
    for pos in range(m):
        i = order[pos]
        if not eligible[i]:
            continue
        r = rstar[i]
        if r <= 0.0:
            continue
        fraction = remaining[i] / r
        if fraction > 1.0:
            fraction = 1.0
        for lane in range(k):
            req = reqk[lane, i]
            if req > 0.0:
                afford = left[lane] / req
                if afford < fraction:
                    fraction = afford
        if fraction <= 0.0:
            continue
        for lane in range(k):
            req = reqk[lane, i]
            if req > 0.0:
                grant = fraction * req
                shares[lane, i] = grant
                left[lane] -= grant
    return shares
