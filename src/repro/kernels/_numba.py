"""Single import guard for the optional numba dependency.

Numba is the only optional compiled-tier dependency
(``pip install .[compiled]``), and this module is the *one* place that
imports it: every kernel decorates its hot functions with the
:func:`njit` exported here, and every dispatch decision reads
:data:`NUMBA_AVAILABLE`.  When numba is absent the decorator degrades
to a transparent no-op, so the kernels in
:mod:`repro.kernels.waterfill` and :mod:`repro.kernels.driver` remain
plain Python functions -- importable, testable, and runnable
(interpreted) everywhere, while the backend layer's ``"auto"`` mode
simply keeps using the existing NumPy paths.

Masking numba out (the fallback test-suite does this with a
``sys.modules`` stub) and reloading this module flips the whole tier
back to the pure-Python degradation with no other code changes.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["NUMBA_AVAILABLE", "njit", "numba_version"]

try:  # pragma: no cover - exercised via the no-numba fallback job
    import numba as _numba

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised when numba is installed
    _numba = None
    NUMBA_AVAILABLE = False


def numba_version() -> str | None:
    """The installed numba version, or ``None`` without numba."""
    if _numba is None:
        return None
    return str(getattr(_numba, "__version__", "unknown"))


def njit(*args: Any, **kwargs: Any) -> Callable:
    """``numba.njit`` (nopython, cached) or a transparent no-op.

    Usable both bare (``@njit``) and parameterized
    (``@njit(cache=True)``), exactly like numba's decorator.  With
    numba installed the wrapped function compiles in nopython mode
    with on-disk caching (``cache=True`` unless overridden), so warm
    processes skip recompilation; without numba the function is
    returned unchanged and runs interpreted.
    """
    if args and callable(args[0]) and len(args) == 1 and not kwargs:
        func = args[0]
        if _numba is None:
            return func
        return _numba.njit(cache=True)(func)

    def _decorate(func: Callable) -> Callable:
        if _numba is None:
            return func
        options = {"cache": True, **kwargs}
        return _numba.njit(*args, **options)(func)

    return _decorate
