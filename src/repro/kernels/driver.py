"""Whole-run fused driver: one JIT region from step 0 to makespan.

:func:`run_fused` replays the unified stepping kernel
(:func:`repro.core.kernel.run_kernel` driving a
:class:`repro.backends.vector.VectorRuntime`) as a single compiled
loop over flat arrays: release unmasking, the policy's priority order,
the water-fill grant, the feasibility check, the bottleneck work
decrement, completion/stall/step-limit accounting -- everything the
per-step Python path does, minus Python dispatch.  The eight built-in
water-filling policies are encoded as integer codes
(:data:`POLICY_CODES` in :mod:`repro.kernels.dispatch` maps policy
classes to them); anything else falls back to the per-step path.

Semantics intentionally mirrored from the kernel loop:

* the step limit is checked *before* each step (``t >= step_limit``);
* a zero-progress step while unreleased processors remain pending is
  legitimate *waiting* and resets the stall counter (the interpreted
  kernel additionally logs a heartbeat -- a logging feature, not a
  semantic one, so the compiled loop omits it);
* ``stall_limit`` consecutive zero-progress non-waiting steps abort;
* a job completes in the step where its remaining work drops to
  ``<= tol`` while its processor was active at step begin.

The driver records each completion's 0-based step into an
``(m, nmax)`` table; the dispatch layer replays that table through the
observer stack (completion recorder, objective accumulators), so
results are indistinguishable from a per-step run.
"""

from __future__ import annotations

import numpy as np

from ._numba import njit
from .waterfill import fill_multi, fill_single, round_key, stable_order

__all__ = [
    "CODE_GREEDY_BALANCE",
    "CODE_ROUND_ROBIN",
    "CODE_GREEDY_FINISH_JOBS",
    "CODE_LARGEST_REQUIREMENT_FIRST",
    "CODE_FEWEST_REMAINING_JOBS_FIRST",
    "CODE_PROPORTIONAL_SHARE",
    "CODE_EDF_WATERFILL",
    "CODE_WEIGHTED_SRPT",
    "STATUS_OK",
    "STATUS_STEP_LIMIT",
    "STATUS_STALLED",
    "STATUS_INFEASIBLE",
    "run_fused",
]

#: Integer policy codes understood by :func:`run_fused`.
CODE_GREEDY_BALANCE = 0
CODE_ROUND_ROBIN = 1
CODE_GREEDY_FINISH_JOBS = 2
CODE_LARGEST_REQUIREMENT_FIRST = 3
CODE_FEWEST_REMAINING_JOBS_FIRST = 4
CODE_PROPORTIONAL_SHARE = 5
CODE_EDF_WATERFILL = 6
CODE_WEIGHTED_SRPT = 7

#: Run outcomes (the dispatch layer maps non-zero codes to the same
#: exceptions the interpreted kernel raises).
STATUS_OK = 0
STATUS_STEP_LIMIT = 1
STATUS_STALLED = 2
STATUS_INFEASIBLE = 3


@njit(cache=True)
def run_fused(
    num_jobs: np.ndarray,
    release: np.ndarray,
    work: np.ndarray,
    req: np.ndarray,
    reqk: np.ndarray,
    wgt: np.ndarray,
    dl: np.ndarray,
    policy_code: int,
    tol: float,
    step_limit: int,
    stall_limit: int,
) -> tuple:
    """Step one instance to completion inside a single compiled loop.

    Args:
        num_jobs: ``(m,)`` int64 job counts per processor.
        release: ``(m,)`` int64 release steps per processor.
        work: ``(m, nmax)`` float64 remaining-work table (bottleneck
            units), zero-padded past each queue's end.
        req: ``(m, nmax)`` float64 bottleneck requirements ``r*``.
        reqk: ``(k, m, nmax)`` float64 per-resource requirements (for
            ``k == 1`` simply ``req`` with a leading unit axis).
        wgt: ``(m, nmax)`` float64 objective weights.
        dl: ``(m, nmax)`` float64 due steps (``inf`` = no deadline).
        policy_code: one of the ``CODE_*`` constants.
        tol: completion / feasibility tolerance (the backend's).
        step_limit: abort (status 1) once ``t`` reaches this.
        stall_limit: abort (status 2) after this many consecutive
            zero-progress non-waiting steps.

    Returns:
        ``(status, steps, completion)`` -- a ``STATUS_*`` code, the
        number of executed steps (the makespan when status is 0), and
        the ``(m, nmax)`` int64 table of 0-based completion steps
        (-1 where a job never finished).
    """
    m = num_jobs.shape[0]
    k = reqk.shape[0]
    nmax = work.shape[1]

    completion = np.full((m, nmax), -1, dtype=np.int64)
    done = np.zeros(m, dtype=np.int64)
    released = np.zeros(m, dtype=np.bool_)
    remaining = np.zeros(m, dtype=np.float64)
    active_req = np.zeros(m, dtype=np.float64)
    active_reqk = np.zeros((k, m), dtype=np.float64)
    active_wgt = np.zeros(m, dtype=np.float64)
    active_dl = np.full(m, np.inf, dtype=np.float64)
    eligible = np.ones(m, dtype=np.bool_)
    shares = np.zeros((k, m), dtype=np.float64)
    primary = np.zeros(m, dtype=np.float64)
    secondary = np.zeros(m, dtype=np.float64)

    released_count = 0
    jobs_left = 0
    for i in range(m):
        jobs_left += num_jobs[i]

    t = 0
    stalled = 0
    while jobs_left > 0:
        if t >= step_limit:
            return STATUS_STEP_LIMIT, t, completion

        # begin_step: unmask processors whose release time has arrived
        # and load their current job into the active-lane views.
        if released_count < m:
            for i in range(m):
                if not released[i] and release[i] <= t:
                    released[i] = True
                    released_count += 1
                    j = done[i]
                    if j < num_jobs[i]:
                        remaining[i] = work[i, j]
                        active_req[i] = req[i, j]
                        active_wgt[i] = wgt[i, j]
                        active_dl[i] = dl[i, j]
                        for lane in range(k):
                            active_reqk[lane, i] = reqk[lane, i, j]

        # query: the policy's priority order (or closed formula), then
        # the shared water-fill grant rule.
        for lane in range(k):
            for i in range(m):
                shares[lane, i] = 0.0

        if policy_code == CODE_PROPORTIONAL_SHARE:
            if k == 1:
                total = 0.0
                for i in range(m):
                    total += remaining[i]
                if total > 1.0:
                    for i in range(m):
                        shares[0, i] = remaining[i] / total
                elif total > 0.0:
                    for i in range(m):
                        shares[0, i] = remaining[i]
            else:
                demand = np.zeros(k, dtype=np.float64)
                fraction = np.zeros(m, dtype=np.float64)
                for i in range(m):
                    if active_req[i] > 0.0:
                        f = remaining[i] / active_req[i]
                        if f > 1.0:
                            f = 1.0
                        fraction[i] = f
                        for lane in range(k):
                            demand[lane] += active_reqk[lane, i] * f
                theta = 1.0
                for lane in range(k):
                    if demand[lane] > 1.0:
                        scale = 1.0 / demand[lane]
                        if scale < theta:
                            theta = scale
                for i in range(m):
                    if fraction[i] > 0.0:
                        for lane in range(k):
                            shares[lane, i] = (
                                theta * fraction[i] * active_reqk[lane, i]
                            )
        else:
            if policy_code == CODE_ROUND_ROBIN:
                # Phase = 1 + min completed count over pending
                # processors; only processors still inside the phase
                # are eligible, visited in index order.
                min_done = np.int64(1) << 62
                for i in range(m):
                    if done[i] < num_jobs[i] and done[i] < min_done:
                        min_done = done[i]
                for i in range(m):
                    eligible[i] = (
                        done[i] < num_jobs[i] and done[i] == min_done
                    )
                order = np.arange(m)
            else:
                rkey = round_key(remaining)
                if policy_code == CODE_GREEDY_BALANCE:
                    for i in range(m):
                        primary[i] = -np.float64(num_jobs[i] - done[i])
                        secondary[i] = -rkey[i]
                    order = stable_order(primary, secondary)
                elif policy_code == CODE_GREEDY_FINISH_JOBS:
                    order = np.argsort(rkey, kind="mergesort")
                elif policy_code == CODE_LARGEST_REQUIREMENT_FIRST:
                    order = np.argsort(-rkey, kind="mergesort")
                elif policy_code == CODE_FEWEST_REMAINING_JOBS_FIRST:
                    for i in range(m):
                        primary[i] = np.float64(num_jobs[i] - done[i])
                        secondary[i] = -rkey[i]
                    order = stable_order(primary, secondary)
                elif policy_code == CODE_EDF_WATERFILL:
                    order = stable_order(active_dl, rkey)
                else:  # CODE_WEIGHTED_SRPT
                    for i in range(m):
                        if active_wgt[i] > 0.0:
                            primary[i] = remaining[i] / active_wgt[i]
                        else:
                            primary[i] = 0.0
                    order = stable_order(round_key(primary), rkey)
            if k == 1:
                row = fill_single(remaining, active_req, eligible, order)
                for i in range(m):
                    shares[0, i] = row[i]
            else:
                shares = fill_multi(
                    remaining, active_req, active_reqk, eligible, order
                )
            if policy_code == CODE_ROUND_ROBIN:
                for i in range(m):
                    eligible[i] = True

        # check: tolerance-aware bounds and per-resource capacity.
        for lane in range(k):
            total = 0.0
            for i in range(m):
                s = shares[lane, i]
                if s < -tol or s > 1.0 + tol:
                    return STATUS_INFEASIBLE, t, completion
                total += s
            if total > 1.0 + tol:
                return STATUS_INFEASIBLE, t, completion

        # apply: bottleneck work decrement, completions, successor
        # loads -- the fused VectorRuntime.apply + VectorState.advance.
        total_work = 0.0
        ncompleted = 0
        for i in range(m):
            if not released[i] or done[i] >= num_jobs[i]:
                continue
            if k == 1:
                w = shares[0, i]
                if active_req[i] < w:
                    w = active_req[i]
            else:
                f = np.inf
                for lane in range(k):
                    r = active_reqk[lane, i]
                    if r > 0.0:
                        s = shares[lane, i]
                        if r < s:
                            s = r
                    else:
                        continue
                    ratio = s / r
                    if ratio < f:
                        f = ratio
                if active_req[i] > 0.0 and f < np.inf:
                    w = f * active_req[i]
                else:
                    w = 0.0
            if remaining[i] < w:
                w = remaining[i]
            if w < 0.0:
                w = 0.0
            remaining[i] -= w
            total_work += w
            if remaining[i] <= tol:
                j = done[i]
                completion[i, j] = t
                done[i] = j + 1
                jobs_left -= 1
                ncompleted += 1
                nxt = j + 1
                if nxt < num_jobs[i]:
                    remaining[i] = work[i, nxt]
                    active_req[i] = req[i, nxt]
                    active_wgt[i] = wgt[i, nxt]
                    active_dl[i] = dl[i, nxt]
                    for lane in range(k):
                        active_reqk[lane, i] = reqk[lane, i, nxt]
                else:
                    remaining[i] = 0.0
                    active_req[i] = 0.0
                    active_wgt[i] = 0.0
                    active_dl[i] = np.inf
                    for lane in range(k):
                        active_reqk[lane, i] = 0.0

        progressed = ncompleted > 0 or total_work > tol
        if progressed:
            stalled = 0
        elif released_count < m:
            # Legitimate waiting on a future release.
            stalled = 0
        else:
            stalled += 1
            if stalled >= stall_limit:
                return STATUS_STALLED, t + 1, completion
        t += 1

    return STATUS_OK, t, completion
