"""Command-line interface: ``crsharing`` / ``python -m repro``.

Subcommands:

* ``experiment <ID>`` -- run a paper experiment and print its table
  (optionally write CSV/SVG);
* ``list`` -- list experiments, policies, and backends;
* ``solve <instance.json>`` -- exact optimum of an instance file;
* ``run`` / ``schedule <instance.json> --policy NAME --backend
  {exact,vector}`` -- run a policy and render the schedule (``run`` is
  the canonical name, ``schedule`` the historical alias);
* ``batch`` -- run a seeded campaign of random instances through a
  backend, sharded over worker processes;
* ``crosscheck`` -- audit the vector backend against the exact one on
  random instances (``--certify`` additionally proves an optimality
  certificate per instance and asserts neither backend undercuts it);
* ``certify`` -- branch-and-bound over all queue orders of an
  instance and print the optimality certificate (value, witness
  order, nodes/pruned/bound-call counts, proved flag);
* ``bench-report`` -- summarize the timestamped ``BENCH_*.json``
  result stores under ``benchmarks/results/``;
* ``profile`` -- run a policy under telemetry and print the hot-spot
  table (time per kernel phase: query/check/apply/observers);
* ``demo`` -- a quick end-to-end tour on the Figure 1 instance.

``run``/``schedule``, ``batch`` and ``crosscheck`` also take the
telemetry flags: ``--trace FILE`` writes structured trace records
(``--trace-format jsonl`` for grep-able JSONL, ``chrome`` for a
Chrome ``trace_event`` file loadable at https://ui.perfetto.dev), and
``--metrics`` prints a prometheus-style metrics dump after the run.

``run``/``schedule``, ``batch`` and ``crosscheck`` all accept
``--arrivals MAX`` (with ``--arrival-seed``) to sample staggered
per-processor release times on ``0..MAX`` -- the online-arrival
scenario axis; 0 (the default) is the paper's static model.  They
likewise accept ``--resources K`` (with ``--resource-profile``) to
run the multi-resource extension: instances are lifted to ``K``
shared resources with per-job requirement vectors; 1 (the default)
is the paper's single-resource model.  The objective axis rides the
same commands: ``--objective`` selects any registered objective
(``makespan``, the default, reproduces the paper's reports
bit-identically), and ``--weights-profile`` / ``--deadline-profile``
attach seeded objective annotations to the instances.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path

from .algorithms import (
    available_policies,
    get_policy,
    opt_res_assignment,
    opt_res_assignment_general,
)
from .analysis import compute_metrics
from .backends import available_backends
from .core.hypergraph import SchedulingGraph
from .experiments import EXPERIMENTS, get_experiment
from .experiments.runner import run_experiment
from .io import load_instance, save_schedule
from .viz import (
    render_components,
    render_instance,
    render_schedule,
    schedule_svg,
)

__all__ = ["main", "build_parser"]


def _add_arrival_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--arrivals",
        type=int,
        default=0,
        metavar="MAX",
        help="sample per-processor release times on 0..MAX "
        "(0 = static model, the default)",
    )
    parser.add_argument(
        "--arrival-seed",
        type=int,
        default=None,
        help="seed for the arrival sampler (default: derived from the "
        "instance seed on a decorrelated stream)",
    )


def _add_objective_args(parser: argparse.ArgumentParser) -> None:
    from .generators import DEADLINE_PROFILES, WEIGHT_PROFILES
    from .objectives import available_objectives

    parser.add_argument(
        "--objective",
        choices=available_objectives(),
        default="makespan",
        help="scheduling objective to evaluate (makespan = the paper's "
        "objective, the default)",
    )
    parser.add_argument(
        "--weights-profile",
        choices=list(WEIGHT_PROFILES),
        default="unit",
        help="attach seeded per-job objective weights (unit = the "
        "unweighted model, the default)",
    )
    parser.add_argument(
        "--weight-seed",
        type=int,
        default=None,
        help="seed for the weight sampler (default: derived from the "
        "instance seed on a decorrelated stream)",
    )
    parser.add_argument(
        "--deadline-profile",
        choices=list(DEADLINE_PROFILES),
        default=None,
        help="attach seeded per-job deadlines of this tightness "
        "(default: no deadlines)",
    )
    parser.add_argument(
        "--deadline-seed",
        type=int,
        default=None,
        help="seed for the deadline sampler (default: derived from the "
        "instance seed on a decorrelated stream)",
    )


def _add_sequencer_args(parser: argparse.ArgumentParser) -> None:
    from .sequencing import available_sequencers

    parser.add_argument(
        "--sequencer",
        choices=available_sequencers(),
        default=None,
        help="re-derive per-processor queue orders before running "
        "(default: keep the instance's fixed order, the paper's model)",
    )
    parser.add_argument(
        "--search-budget",
        type=int,
        default=200,
        metavar="N",
        help="candidate evaluations per restart for the local-search "
        "sequencer (ignored by the static strategies)",
    )
    parser.add_argument(
        "--sequencer-seed",
        type=int,
        default=0,
        help="seed of the local-search move streams (restarts draw "
        "from decorrelated streams derived from it)",
    )
    parser.add_argument(
        "--batch-lanes",
        type=int,
        default=None,
        metavar="B",
        help="evaluate up to B candidate orders per batched kernel "
        "call in the local-search sequencer (default: 1, the classic "
        "sequential hill-climb; ignored by the static strategies)",
    )


def _sequencer_options(args: argparse.Namespace) -> dict:
    """Factory options for the selected sequencer, from CLI flags.

    The single flag-to-option mapping shared by every subcommand:
    run/schedule and crosscheck build the sequencer object through
    :func:`_resolve_sequencer_arg`, batch forwards name + options to
    the workers -- both read this dict, so a new local-search flag
    cannot drift between subcommands.
    """
    if args.sequencer != "local-search":
        return {}
    options = {
        "policy": args.policy,
        "budget": args.search_budget,
        "seed": args.sequencer_seed,
        "objective": getattr(args, "objective", "makespan"),
    }
    if getattr(args, "batch_lanes", None) is not None:
        options["batch_lanes"] = args.batch_lanes
    return options


def _resolve_sequencer_arg(args: argparse.Namespace):
    """Build the selected sequencer from CLI flags (None = fixed order)."""
    from .sequencing import get_sequencer

    if args.sequencer is None:
        return None
    return get_sequencer(args.sequencer, **_sequencer_options(args))


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help="write structured trace records (spans + events) of the "
        "run to FILE",
    )
    parser.add_argument(
        "--trace-format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help="trace file format: jsonl (one record per line) or chrome "
        "(trace_event JSON, loadable at https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print a prometheus-style metrics dump after the run",
    )


@contextmanager
def _telemetry(args: argparse.Namespace):
    """Install a telemetry session for one command when requested.

    No ``--trace`` / ``--metrics`` flag means no session at all (the
    zero-cost default).  Otherwise a fresh
    :class:`~repro.telemetry.TelemetrySession` is installed for the
    command's duration (tracing only when ``--trace`` asked for a
    file); on clean exit the trace file is written in the requested
    format and the metrics dump printed.
    """
    from .telemetry import (
        TelemetrySession,
        render_metrics,
        use_session,
        write_trace,
    )

    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    if trace_path is None and not want_metrics:
        yield None
        return
    session = TelemetrySession(tracing=trace_path is not None)
    with use_session(session):
        yield session
    if trace_path is not None:
        count = write_trace(
            session.tracer.records, trace_path, format=args.trace_format
        )
        print(
            f"trace: {count} records written to {trace_path} "
            f"({args.trace_format})"
        )
    if want_metrics:
        print(render_metrics(session.metrics), end="")


def _add_resource_args(parser: argparse.ArgumentParser) -> None:
    from .generators import RESOURCE_PROFILES

    parser.add_argument(
        "--resources",
        type=int,
        default=1,
        metavar="K",
        help="number of shared resources; instances are lifted to K "
        "per-job requirement vectors (1 = the paper's single-resource "
        "model, the default)",
    )
    parser.add_argument(
        "--resource-profile",
        choices=list(RESOURCE_PROFILES),
        default="independent",
        help="how resources 1..K-1 relate to resource 0 when lifting",
    )
    parser.add_argument(
        "--resource-seed",
        type=int,
        default=None,
        help="seed for the extra-resource sampler (default: derived "
        "from the instance seed on a decorrelated stream)",
    )


def _add_compiled_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--compiled",
        choices=("auto", "on", "off"),
        default="auto",
        help="fused compiled kernel tier on the vector paths: auto = "
        "use it when numba and a built-in policy allow (the default, "
        "falls back transparently), on = force it (error when the run "
        "is ineligible), off = always the per-step NumPy engine",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="crsharing",
        description=(
            "Reproduction toolkit for 'Scheduling Shared Continuous "
            "Resources on Many-Cores' (Althaus et al.)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiments and policies")

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("id", help=f"experiment id, one of {sorted(EXPERIMENTS)}")
    p_exp.add_argument("--csv", type=Path, help="write the rows as CSV")
    p_exp.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="simulation backend (experiments that simulate accept it; "
        "exact-claim experiments reject non-exact backends)",
    )

    p_solve = sub.add_parser("solve", help="exact optimum of an instance file")
    p_solve.add_argument("instance", type=Path)

    for cmd, help_text in (
        ("run", "run a policy on an instance file"),
        ("schedule", "alias of `run` (historical name)"),
    ):
        p_sched = sub.add_parser(cmd, help=help_text)
        p_sched.add_argument("instance", type=Path)
        p_sched.add_argument(
            "--policy",
            default="greedy-balance",
            help=f"one of {available_policies()}",
        )
        p_sched.add_argument(
            "--backend",
            choices=available_backends(),
            default="exact",
            help="simulation engine: exact Fractions or vectorized float64",
        )
        _add_arrival_args(p_sched)
        _add_resource_args(p_sched)
        _add_objective_args(p_sched)
        _add_sequencer_args(p_sched)
        _add_telemetry_args(p_sched)
        _add_compiled_arg(p_sched)
        p_sched.add_argument("--svg", type=Path, help="write a Gantt SVG")
        p_sched.add_argument("--json", type=Path, help="write the schedule as JSON")

    p_batch = sub.add_parser(
        "batch", help="run a campaign of random instances through a backend"
    )
    p_batch.add_argument("--policy", default="greedy-balance")
    p_batch.add_argument("--backend", choices=available_backends(), default="vector")
    p_batch.add_argument(
        "--family",
        default="uniform",
        choices=["uniform", "bimodal", "heavy-tail", "general", "bag"],
    )
    p_batch.add_argument("--count", type=int, default=100, help="instances to run")
    p_batch.add_argument("--m", type=int, default=16, help="processors per instance")
    p_batch.add_argument("--n", type=int, default=10, help="jobs per processor")
    p_batch.add_argument("--grid", type=int, default=100, help="requirement grid")
    p_batch.add_argument("--seed", type=int, default=0, help="base seed")
    p_batch.add_argument(
        "--workers", type=int, default=None, help="worker processes (1 = serial)"
    )
    p_batch.add_argument(
        "--execution",
        choices=["processes", "batched"],
        default="processes",
        help="campaign execution mode: shard across worker processes "
        "(the default) or step the whole campaign in-process through "
        "the batched vector engine (requires --backend vector)",
    )
    _add_arrival_args(p_batch)
    _add_resource_args(p_batch)
    _add_objective_args(p_batch)
    _add_sequencer_args(p_batch)
    _add_telemetry_args(p_batch)
    _add_compiled_arg(p_batch)
    p_batch.add_argument(
        "--arrival-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="sample release times from a Poisson process at this "
        "intensity instead of the uniform 0..MAX spread",
    )
    p_batch.add_argument("--json", type=Path, help="write the result store as JSON")
    p_batch.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="DIR",
        help="content-addressed result cache: reuse rows computed by "
        "earlier campaigns with the same instances/policy/objective/"
        "sequencer, compute and cache only the misses",
    )

    p_cross = sub.add_parser(
        "crosscheck", help="audit vector-backend agreement with the exact backend"
    )
    p_cross.add_argument("--policy", default="greedy-balance")
    p_cross.add_argument("--count", type=int, default=50)
    p_cross.add_argument("--m", type=int, default=4)
    p_cross.add_argument("--n", type=int, default=6)
    p_cross.add_argument("--grid", type=int, default=100)
    p_cross.add_argument("--seed", type=int, default=0)
    p_cross.add_argument("--rtol", type=float, default=1e-9)
    p_cross.add_argument(
        "--certify",
        action="store_true",
        help="also certify each instance's optimal queue order and "
        "assert neither backend finishes below the proved optimum",
    )
    p_cross.add_argument(
        "--certify-max-nodes",
        type=int,
        default=100_000,
        help="branch-and-bound node budget for --certify",
    )
    _add_arrival_args(p_cross)
    _add_resource_args(p_cross)
    _add_objective_args(p_cross)
    _add_sequencer_args(p_cross)
    _add_telemetry_args(p_cross)
    _add_compiled_arg(p_cross)

    p_certify = sub.add_parser(
        "certify",
        help="certify the optimal queue order of an instance "
        "(branch-and-bound over all per-queue permutations)",
    )
    p_certify.add_argument(
        "instance",
        nargs="?",
        type=Path,
        default=None,
        help="instance file to certify (default: a seeded random "
        "instance shaped by --m/--n/--grid/--seed)",
    )
    p_certify.add_argument(
        "--policy",
        default=None,
        help="certify the best order FOR THIS POLICY (epsilon mode, "
        "simulated through --backend) instead of the offline optimum",
    )
    p_certify.add_argument(
        "--backend",
        choices=available_backends(),
        default="vector",
        help="simulation backend for --policy certification",
    )
    p_certify.add_argument(
        "--oracle",
        choices=["auto", "opt-two", "opt-general", "brute-force", "milp"],
        default="auto",
        help="per-order exact oracle for offline-optimum certification",
    )
    p_certify.add_argument(
        "--max-nodes",
        type=int,
        default=100_000,
        help="branch-and-bound node budget (exhausting it returns an "
        "unproved upper bound)",
    )
    p_certify.add_argument(
        "--m", type=int, default=2, help="processors (generated instance)"
    )
    p_certify.add_argument(
        "--n", type=int, default=4, help="jobs per processor (generated)"
    )
    p_certify.add_argument(
        "--grid", type=int, default=100, help="requirement grid (generated)"
    )
    p_certify.add_argument(
        "--seed", type=int, default=0, help="instance seed (generated)"
    )
    p_certify.add_argument(
        "--json", type=Path, help="write the certificate as JSON"
    )
    _add_telemetry_args(p_certify)

    p_verify = sub.add_parser(
        "verify", help="validate a schedule file and report its properties"
    )
    p_verify.add_argument("schedule", type=Path)

    p_bench = sub.add_parser(
        "bench-report",
        help="summarize the timestamped BENCH_*.json benchmark stores",
    )
    p_bench.add_argument(
        "--results",
        type=Path,
        default=Path("benchmarks") / "results",
        help="results directory (default: benchmarks/results)",
    )
    p_bench.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every store parses, carries rows, "
        "and at least one renders non-empty highlights (the CI gate "
        "against silently-empty benchmark artifacts)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the always-on scheduling service over an arrival "
        "stream (JSONL trace or Poisson) and print the steady-state "
        "report",
    )
    # dest must not collide with the telemetry --trace option below,
    # or the trace exporter would clobber the input file on exit.
    p_serve.add_argument(
        "arrivals_trace",
        nargs="?",
        type=Path,
        default=None,
        metavar="trace",
        help="JSONL arrival trace to replay (default: a seeded "
        "Poisson stream shaped by --rate/--count/--stream-seed)",
    )
    p_serve.add_argument(
        "--policy",
        default="greedy-balance",
        help=f"one of {available_policies()}",
    )
    p_serve.add_argument(
        "--backend",
        choices=["exact", "vector"],
        default="vector",
        help="kernel backend for the service runtime",
    )
    p_serve.add_argument(
        "--admission",
        default="accept-all",
        help="admission policy (see `crsharing list`): accept-all, "
        "utilization-cap, deadline-feasibility",
    )
    p_serve.add_argument(
        "--cap",
        type=float,
        default=0.9,
        help="utilization-cap: target utilization in (0, 1]",
    )
    p_serve.add_argument(
        "--window",
        type=int,
        default=64,
        help="utilization-cap: work-buffer size in steps",
    )
    p_serve.add_argument(
        "--max-queues",
        type=int,
        default=8,
        help="logical queue cap (the service's core count)",
    )
    p_serve.add_argument(
        "--mode",
        choices=["incremental", "from-scratch"],
        default="incremental",
        help="incremental re-scheduling (the default) or the "
        "re-simulate-from-t=0 baseline",
    )
    p_serve.add_argument(
        "--rate",
        type=float,
        default=1.0,
        help="Poisson stream: arrival intensity per step",
    )
    p_serve.add_argument(
        "--count",
        type=int,
        default=100,
        help="Poisson stream: number of arrivals",
    )
    p_serve.add_argument(
        "--stream-seed",
        type=int,
        default=0,
        help="Poisson stream: RNG seed (same seed, same stream)",
    )
    p_serve.add_argument(
        "--event-log",
        type=Path,
        default=None,
        metavar="FILE",
        help="record the replayable event log (JSONL) to FILE",
    )
    p_serve.add_argument(
        "--json", type=Path, help="write the service report as JSON"
    )
    _add_telemetry_args(p_serve)

    p_replay = sub.add_parser(
        "replay",
        help="deterministically re-run a recorded service event log "
        "and verify every admission decision",
    )
    p_replay.add_argument("log", type=Path, help="event log from serve --event-log")
    p_replay.add_argument(
        "--json", type=Path, help="write the replayed report as JSON"
    )
    _add_telemetry_args(p_replay)

    p_prof = sub.add_parser(
        "profile",
        help="profile a policy run and print the kernel hot-spot table",
    )
    p_prof.add_argument(
        "instance",
        nargs="?",
        type=Path,
        default=None,
        help="instance file to profile (default: a seeded random "
        "instance shaped by --m/--n/--grid/--seed)",
    )
    p_prof.add_argument(
        "--policy",
        default="greedy-balance",
        help=f"one of {available_policies()}",
    )
    p_prof.add_argument(
        "--backend", choices=available_backends(), default="exact"
    )
    p_prof.add_argument(
        "--m", type=int, default=8, help="processors (generated instance)"
    )
    p_prof.add_argument(
        "--n", type=int, default=12, help="jobs per processor (generated)"
    )
    p_prof.add_argument(
        "--grid", type=int, default=100, help="requirement grid (generated)"
    )
    p_prof.add_argument(
        "--seed", type=int, default=0, help="instance seed (generated)"
    )
    p_prof.add_argument(
        "--repeat",
        type=int,
        default=3,
        metavar="N",
        help="profiled runs to aggregate (default 3)",
    )

    sub.add_parser("demo", help="quick tour on the Figure 1 example")
    return parser


def _cmd_list() -> int:
    from .objectives import available_objectives
    from .sequencing import available_sequencers
    from .service import available_admission

    experiments = list(EXPERIMENTS.values())
    policies = available_policies()
    backends = available_backends()
    objectives = available_objectives()
    sequencers = available_sequencers()
    print(f"experiments ({len(experiments)}):  run with `crsharing experiment <ID>`")
    for exp in experiments:
        print(f"  {exp.id:<9} {exp.title}")
    print()
    print(f"policies ({len(policies)}):  select with `--policy <name>`")
    for name in policies:
        print(f"  {name}")
    print()
    print(f"backends ({len(backends)}):  select with `--backend <name>`")
    for name in backends:
        print(f"  {name}")
    print()
    print(f"objectives ({len(objectives)}):  select with `--objective <name>`")
    for name in objectives:
        print(f"  {name}")
    print()
    print(f"sequencers ({len(sequencers)}):  select with `--sequencer <name>`")
    for name in sequencers:
        print(f"  {name}")
    print()
    admission = available_admission()
    print(
        f"admission policies ({len(admission)}):  select with "
        "`serve --admission <name>`"
    )
    for name in admission:
        print(f"  {name}")
    print()
    print(
        "scenario axes on run/schedule, batch, crosscheck:\n"
        "  --arrivals MAX   staggered per-processor release times "
        "(0 = the paper's static model)\n"
        "  --resources K    K shared resources with per-job requirement "
        "vectors (1 = the paper's model)\n"
        "  --objective NAME    evaluate a registered objective "
        "(makespan = the paper's objective)\n"
        "  --weights-profile / --deadline-profile    seeded objective "
        "annotations (weights, due steps)\n"
        "  --sequencer NAME    re-derive per-processor queue orders "
        "(omit = the paper's fixed-order model;\n"
        "      local-search takes --search-budget / --sequencer-seed)"
    )
    from .kernels import NUMBA_AVAILABLE, numba_version

    print()
    if NUMBA_AVAILABLE:
        status = f"numba {numba_version()} installed (auto uses it)"
    else:
        status = (
            "numba not installed (auto falls back to the NumPy engine; "
            "pip install '.[compiled]' to enable)"
        )
    print(f"compiled kernels (--compiled auto|on|off): {status}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    exp = get_experiment(args.id)
    result = run_experiment(exp, backend=args.backend)
    print(result.to_text())
    if args.csv:
        result.to_csv(args.csv)
        print(f"rows written to {args.csv}")
    return 0 if result.verdict in (True, None) else 1


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    print(render_instance(instance))
    if instance.num_processors == 2:
        result = opt_res_assignment(instance)
    else:
        result = opt_res_assignment_general(instance)
    print(f"optimal makespan: {result.makespan}")
    print(render_schedule(result.schedule))
    return 0


def _annotate_objective_axes(args: argparse.Namespace, instance):
    """Apply --weights-profile / --deadline-profile lifts (run/schedule)."""
    from .generators import with_deadlines, with_weights

    if args.weights_profile != "unit":
        weight_seed = 0 if args.weight_seed is None else args.weight_seed
        instance = with_weights(
            instance, profile=args.weights_profile, seed=weight_seed
        )
        print(
            f"weights: {args.weights_profile} profile (seed {weight_seed})"
        )
    if args.deadline_profile is not None:
        deadline_seed = 0 if args.deadline_seed is None else args.deadline_seed
        instance = with_deadlines(
            instance, profile=args.deadline_profile, seed=deadline_seed
        )
        print(
            f"deadlines: {args.deadline_profile} profile "
            f"(seed {deadline_seed})"
        )
    return instance


def _cmd_schedule(args: argparse.Namespace) -> int:
    from .generators import with_arrivals, with_resources

    instance = load_instance(args.instance)
    if args.resources > 1 and instance.num_resources == 1:
        resource_seed = 0 if args.resource_seed is None else args.resource_seed
        instance = with_resources(
            instance,
            args.resources,
            profile=args.resource_profile,
            seed=resource_seed,
        )
        print(
            f"resources: lifted to k={args.resources} "
            f"({args.resource_profile} profile, seed {resource_seed})"
        )
    if args.arrivals:
        arrival_seed = 0 if args.arrival_seed is None else args.arrival_seed
        instance = with_arrivals(
            instance, max_release=args.arrivals, seed=arrival_seed
        )
        print(
            f"arrivals: releases={list(instance.releases)} "
            f"(max {args.arrivals}, seed {arrival_seed})"
        )
    instance = _annotate_objective_axes(args, instance)
    sequencer = _resolve_sequencer_arg(args)
    if sequencer is not None:
        instance = sequencer.sequence(instance)
        print(f"sequencer: {args.sequencer} (queue orders re-derived)")
    policy = get_policy(args.policy)
    if args.backend != "exact" or instance.num_resources > 1:
        # Multi-resource runs have no exact Schedule artifact either;
        # they report through the backend-result path.
        return _cmd_schedule_backend(args, instance, policy)
    schedule = policy.run(instance)
    print(render_instance(instance))
    print()
    print(render_schedule(schedule))
    extra = () if args.objective == "makespan" else (args.objective,)
    metrics = compute_metrics(schedule, objectives=extra)
    print(f"metrics: {metrics.as_row()}")
    if extra:
        report = metrics.objectives[args.objective]
        print(
            f"objective {args.objective}: value={float(report['value']):g} "
            f"lower_bound={float(report['lower_bound']):g} "
            f"ratio={report['ratio']:g}"
        )
    if args.svg:
        # Label the Gantt with the full decision triple; the sequencer
        # changed the executed order, so the title must say so.
        title = args.policy
        if args.sequencer is not None:
            title = f"{args.policy} · order: {args.sequencer}"
        args.svg.write_text(schedule_svg(schedule, title=title))
        print(f"SVG written to {args.svg}")
    if args.json:
        save_schedule(schedule, args.json)
        print(f"JSON written to {args.json}")
    return 0


def _cmd_schedule_backend(args: argparse.Namespace, instance, policy) -> int:
    """Non-exact schedule run: report makespan + tolerant audit (the
    float backends produce no exact Schedule artifact to render)."""
    from .analysis import verify_share_rows
    from .core.simulator import run_policy
    from .objectives import get_objective

    objectives = () if args.objective == "makespan" else (args.objective,)
    compiled = getattr(args, "compiled", "auto")
    extra = {}
    if args.backend == "vector":
        extra["compiled"] = compiled
        if compiled == "on":
            # The fused driver records completions, not per-step share
            # rows, so the tolerant share audit has nothing to read.
            extra["record_shares"] = False
    result = run_policy(
        instance, policy, backend=args.backend, objectives=objectives, **extra
    )
    print(render_instance(instance))
    print()
    print(f"backend: {result.backend}")
    print(f"makespan: {result.makespan}")
    for name, value in result.objective_values.items():
        objective = get_objective(name)
        bound = objective.lower_bound(instance)
        print(
            f"objective {name}: value={float(value):g} "
            f"lower_bound={float(bound):g} "
            f"ratio={objective.ratio(value, bound):g}"
        )
    if result.shares is None:
        print(
            "share audit: skipped (compiled run records completions, "
            "not per-step shares; re-run with --compiled off to audit)"
        )
        ok = True
    else:
        report = verify_share_rows(instance, result.shares)
        print(f"feasible (tolerance 1e-9): {report.ok}")
        for problem in report.problems:
            print(f"  problem: {problem}")
        ok = report.ok
    if args.svg or args.json:
        print(
            "note: --svg/--json need the exact schedule artifact; "
            "re-run with --backend exact"
        )
    return 0 if ok else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    from .backends import BatchRunner, make_campaign_instances

    instances = make_campaign_instances(
        args.count,
        args.m,
        args.n,
        family=args.family,
        grid=args.grid,
        seed=args.seed,
        max_release=args.arrivals,
        arrival_seed=args.arrival_seed,
        arrival_rate=args.arrival_rate,
        resources=args.resources,
        resource_profile=args.resource_profile,
        resource_seed=args.resource_seed,
        weights_profile=args.weights_profile,
        weight_seed=args.weight_seed,
        deadline_profile=args.deadline_profile,
        deadline_seed=args.deadline_seed,
    )
    objectives = () if args.objective == "makespan" else (args.objective,)
    runner = BatchRunner(
        policy=args.policy,
        backend=args.backend,
        workers=args.workers,
        objectives=objectives,
        sequencer=args.sequencer,
        sequencer_options=_sequencer_options(args),
        execution=args.execution,
        compiled=args.compiled,
    )
    if args.store is not None:
        import time as _time

        from .backends.batch import BatchResult
        from .service import ResultStore, run_cached_campaign

        store = ResultStore(args.store)
        t0 = _time.perf_counter()
        rows = run_cached_campaign(instances, runner, store)
        result = BatchResult(
            policy=runner.policy,
            backend=runner.backend,
            workers=runner.workers,
            rows=rows,
            wall_seconds=_time.perf_counter() - t0,
            objectives=runner.objectives,
            sequencer=runner.sequencer,
            execution=runner.execution,
        )
    else:
        result = runner.run(instances)
    summary = result.summary()
    arrivals = (
        f"poisson(rate={args.arrival_rate:g})"
        if args.arrival_rate is not None
        else args.arrivals
    )
    print(
        f"campaign: {args.count} x {args.family}(m={args.m}, n={args.n}, "
        f"grid={args.grid}) seed={args.seed} arrivals={arrivals} "
        f"resources={args.resources} objective={args.objective} "
        f"sequencer={args.sequencer or 'fixed (as built)'} "
        f"compiled={args.compiled}"
    )
    for key in (
        "policy",
        "backend",
        "workers",
        "sequencer",
        "execution",
        "mean_makespan",
        "mean_ratio",
        "max_ratio",
        "total_steps",
        "wall_seconds",
        "steps_per_second",
    ):
        if key not in summary:
            continue
        value = summary[key]
        if isinstance(value, float):
            value = f"{value:.6g}"
        print(f"  {key}: {value}")
    for name, report in summary.get("objectives", {}).items():
        mean_ratio = report["mean_ratio"]
        ratio_text = (
            f"{mean_ratio:.6g}" if mean_ratio is not None else "n/a (bound 0)"
        )
        print(
            f"  objective {name}: mean_value={report['mean_value']:.6g} "
            f"max_value={report['max_value']:.6g} "
            f"mean_ratio={ratio_text}"
        )
    if args.store is not None:
        print(
            f"  result cache: {store.hits} hits, {store.misses} misses "
            f"({args.store})"
        )
    if args.json:
        result.to_json(args.json)
        print(f"result store written to {args.json}")
    return 0


def _cmd_crosscheck(args: argparse.Namespace) -> int:
    from .backends import cross_validate
    from .backends.batch import make_campaign_instances

    policy = get_policy(args.policy)
    instances = make_campaign_instances(
        args.count,
        args.m,
        args.n,
        grid=args.grid,
        seed=args.seed,
        max_release=args.arrivals,
        arrival_seed=args.arrival_seed,
        resources=args.resources,
        resource_profile=args.resource_profile,
        resource_seed=args.resource_seed,
        weights_profile=args.weights_profile,
        weight_seed=args.weight_seed,
        deadline_profile=args.deadline_profile,
        deadline_seed=args.deadline_seed,
    )
    objectives = () if args.objective == "makespan" else (args.objective,)
    sequencer = _resolve_sequencer_arg(args)
    worst_rel = 0.0
    worst_dev = 0.0
    worst_obj = 0.0
    failures = 0
    certified = 0
    worst_gap = 0.0
    for k, instance in enumerate(instances):
        check = cross_validate(
            instance,
            policy,
            rtol=args.rtol,
            objectives=objectives,
            sequencer=sequencer,
            certify=args.certify,
            certify_max_nodes=args.certify_max_nodes,
            compiled=args.compiled,
        )
        if check.certificate is not None and check.certificate.proved:
            certified += 1
            worst_gap = max(worst_gap, check.opt_gap)
        worst_rel = max(worst_rel, check.makespan_rel_error)
        if check.max_share_deviation is not None:
            worst_dev = max(worst_dev, check.max_share_deviation)
        if check.max_objective_error is not None:
            worst_obj = max(worst_obj, check.max_objective_error)
        if not check.ok:
            failures += 1
            print(
                f"  MISMATCH seed={args.seed + k}: exact={check.exact_makespan} "
                f"vector={check.vector_makespan}"
                + (
                    f" objective_values={check.objective_values}"
                    if check.objective_values
                    else ""
                )
            )
    print(
        f"crosscheck: {args.count} instances, policy={args.policy}, "
        f"m={args.m}, n={args.n}, arrivals={args.arrivals}, "
        f"resources={args.resources}, objective={args.objective}, "
        f"sequencer={args.sequencer or 'fixed (as built)'}, "
        f"compiled={args.compiled}"
    )
    print(f"  max relative makespan error: {worst_rel:.3g} (rtol {args.rtol:.3g})")
    if args.compiled == "on":
        print("  max per-step share deviation: n/a (compiled runs record "
              "completions, not shares)")
    else:
        print(f"  max per-step share deviation: {worst_dev:.3g}")
    if objectives:
        print(f"  max relative objective error: {worst_obj:.3g}")
    if args.certify:
        print(
            f"  certified: {certified}/{args.count} proved, worst "
            f"optimality gap {worst_gap:.3g} (no backend undercut OPT)"
        )
    print(f"  result: {'OK' if failures == 0 else f'{failures} FAILURES'}")
    return 0 if failures == 0 else 1


def _cmd_certify(args: argparse.Namespace) -> int:
    from .analysis import certify_opt
    from .generators.random_instances import uniform_instance

    if args.instance is not None:
        instance = load_instance(args.instance)
        source = str(args.instance)
    else:
        instance = uniform_instance(
            args.m, args.n, grid=args.grid, seed=args.seed
        )
        source = f"uniform(m={args.m}, n={args.n}, seed={args.seed})"
    cert = certify_opt(
        instance,
        oracle=args.oracle,
        policy=args.policy,
        backend=args.backend,
        max_nodes=args.max_nodes,
    )
    target = (
        "offline optimum (exact oracles)"
        if args.policy is None
        else f"best order for policy {args.policy!r} ({cert.mode} mode)"
    )
    print(f"certify: {source}")
    print(f"  target: {target}")
    status = (
        "PROVED optimal"
        if cert.proved
        else "upper bound only -- node budget exhausted, raise --max-nodes"
    )
    print(f"  certified value: {cert.value} ({status})")
    print(f"  witness order: {[list(row) for row in cert.order]}")
    print(
        f"  search: {cert.nodes} nodes, {cert.pruned} pruned, "
        f"{cert.bound_calls} bound calls, {cert.leaf_evaluations} leaf "
        f"evaluations over an order space of {cert.order_space}"
    )
    print(
        f"  global lower bound: {cert.lower_bound}; "
        f"wall time: {cert.seconds:.3f}s"
    )
    if args.json is not None:
        import json as _json

        args.json.write_text(_json.dumps(cert.summary(), indent=2) + "\n")
        print(f"  certificate written to {args.json}")
    return 0 if cert.proved else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from .analysis import verify_schedule
    from .core.properties import is_balanced, is_nested, is_non_wasting, is_progressive
    from .io import load_schedule

    schedule = load_schedule(args.schedule)
    report = verify_schedule(schedule)
    print(f"makespan: {schedule.makespan}")
    print(f"feasible: {report.ok}")
    for problem in report.problems:
        print(f"  problem: {problem}")
    if report.ok:
        print(f"non-wasting: {is_non_wasting(schedule)}")
        print(f"progressive: {is_progressive(schedule)}")
        print(f"nested:      {is_nested(schedule)}")
        print(f"balanced:    {is_balanced(schedule)}")
        print(f"metrics: {compute_metrics(schedule).as_row()}")
    return 0 if report.ok else 1


def _cmd_bench_report(args: argparse.Namespace) -> int:
    """Summarize the timestamped BENCH_*.json stores in one table."""
    import json as _json

    from .experiments.runner import format_table

    results: Path = args.results
    check: bool = getattr(args, "check", False)
    paths = sorted(results.glob("BENCH_*.json"))
    if not paths:
        print(f"no BENCH_*.json stores under {results}")
        return 1
    rows = []
    problems: list[str] = []
    nonempty_highlights = 0
    for path in paths:
        try:
            data = _json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            problems.append(f"{path.name}: unreadable ({exc})")
            rows.append(
                {"benchmark": path.stem, "generated_at": f"unreadable: {exc}"}
            )
            continue
        bench_rows = data.get("rows", [])
        highlights = []
        # Surface whichever headline figures the store carries; bench
        # schemas differ, so pick known keys from the last row (the
        # largest configuration by convention).
        if bench_rows:
            last = bench_rows[-1]
            for key in (
                "speedup",
                "compiled_steps_per_s",
                "overhead_pct",
                "overhead_disabled_pct",
                "overhead_enabled_pct",
                "vector_steps_per_s",
                "mean_ratio",
                "eval_speedup",
                "evals_per_second",
                "node_fraction",
                "proved",
                "verdict",
            ):
                if key in last:
                    highlights.append(f"{key}={last[key]}")
        if data.get("verdict") is not None:
            highlights.append(f"verdict={data['verdict']}")
        if not bench_rows:
            problems.append(f"{path.name}: empty rows")
        if highlights:
            nonempty_highlights += 1
        rows.append(
            {
                "benchmark": data.get("benchmark", path.stem),
                "generated_at": data.get("generated_at", "-"),
                "rows": len(bench_rows),
                "highlights": ", ".join(highlights) or "-",
            }
        )
    print(f"benchmark stores under {results} ({len(rows)}):")
    print(
        format_table(
            ["benchmark", "generated_at", "rows", "highlights"], rows
        )
    )
    _print_search_throughput(results)
    if check:
        if nonempty_highlights == 0:
            problems.append("no store renders any highlights")
        if problems:
            print("\nbench-report --check FAILED:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(
            f"\nbench-report --check OK: {len(paths)} stores, "
            f"{nonempty_highlights} with highlights"
        )
    return 0


def _print_search_throughput(results: Path) -> None:
    """Cross-store search-throughput digest for ``bench-report``.

    Collects the local-search evaluation-loop figures from
    ``BENCH_sequencing.json`` (single-instance vector loop vs exact)
    and ``BENCH_batched_evals.json`` (batched engine vs single-
    instance loop, plus the raw batched-steps/s series), so the
    search-speed trajectory reads off one block instead of three
    stores.  Silently prints nothing when neither store exists.
    """
    import json as _json

    lines = []
    try:
        data = _json.loads((results / "BENCH_sequencing.json").read_text())
        last = data["rows"][-1]
        lines.append(
            f"single-instance vector loop: "
            f"{last['evals_per_second']} evals/s at m={last['m']} "
            f"({last['eval_speedup']}x over exact re-evaluation)"
        )
    except (OSError, ValueError, LookupError):
        pass
    try:
        data = _json.loads((results / "BENCH_batched_evals.json").read_text())
        last = data["rows"][-1]
        lines.append(
            f"batched engine ({last['batch_lanes']} lanes): "
            f"{last['batched_evals_per_second']} evals/s at m={last['m']} "
            f"({last['eval_speedup']}x over the single-instance loop)"
        )
        for row in data.get("steps_series", []):
            lines.append(
                f"batched steps/s at m={row['m']}: "
                f"{row['batched_steps_per_second']} vs "
                f"{row['vector_steps_per_second']} single-instance"
            )
    except (OSError, ValueError, LookupError):
        pass
    if lines:
        print()
        print("search throughput (local-search evaluation loop):")
        for line in lines:
            print(f"  {line}")


def _cmd_serve(args: argparse.Namespace) -> int:
    """Drive the scheduling service over a trace or Poisson stream."""
    import json as _json

    from .service import (
        PoissonStream,
        SchedulingService,
        TraceStream,
        get_admission,
        write_event_log,
    )

    if args.admission == "utilization-cap":
        admission = get_admission(
            "utilization-cap", cap=args.cap, window=args.window
        )
    else:
        admission = get_admission(args.admission)
    if args.arrivals_trace is not None:
        stream = TraceStream.from_path(args.arrivals_trace)
        source = str(args.arrivals_trace)
    else:
        stream = PoissonStream(
            rate=args.rate, count=args.count, seed=args.stream_seed
        )
        source = (
            f"poisson(rate={args.rate:g}, count={args.count}, "
            f"seed={args.stream_seed})"
        )
    service = SchedulingService(
        policy=args.policy,
        backend=args.backend,
        admission=admission,
        max_queues=args.max_queues,
        mode=args.mode,
    )
    report = service.run_stream(stream)
    print(f"serve: {source} ({len(stream)} arrivals)")
    print(report.render())
    if args.event_log is not None:
        count = write_event_log(
            service.config(), service.event_log, args.event_log
        )
        print(f"event log: {count} lines written to {args.event_log}")
    if args.json is not None:
        args.json.write_text(_json.dumps(report.to_dict(), indent=2))
        print(f"report written to {args.json}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """Re-run a recorded event log and verify it is deterministic."""
    import json as _json

    from .exceptions import ServiceError
    from .service import read_event_log, replay_log

    config, records = read_event_log(args.log)
    arrivals = sum(1 for r in records if r.get("type") == "arrival")
    try:
        report, _service = replay_log(config, records)
    except ServiceError as exc:
        print(f"replay FAILED: {exc}")
        return 1
    print(f"replay: {args.log} ({arrivals} arrivals, {len(records)} events)")
    print(report.render())
    print("deterministic: every recorded admission decision re-derived")
    if args.json is not None:
        args.json.write_text(_json.dumps(report.to_dict(), indent=2))
        print(f"report written to {args.json}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run a policy under a metrics-only telemetry session and print
    where the kernel's wall time goes (the hot-spot table)."""
    from .core.simulator import run_policy
    from .experiments.runner import format_table
    from .telemetry import TelemetrySession, phase_report, use_session

    if args.instance is not None:
        instance = load_instance(args.instance)
        source = str(args.instance)
    else:
        from .generators import random_instances as gen

        instance = gen.uniform_instance(
            args.m, args.n, grid=args.grid, seed=args.seed
        )
        source = (
            f"uniform(m={args.m}, n={args.n}, grid={args.grid}, "
            f"seed={args.seed})"
        )
    session = TelemetrySession(tracing=False)
    with use_session(session):
        for _ in range(max(1, args.repeat)):
            result = run_policy(
                instance, args.policy, backend=args.backend,
                record_shares=False,
            )
    report = phase_report(session.metrics)
    print(
        f"profile: {source} policy={args.policy} backend={args.backend} "
        f"runs={report['runs']} makespan={result.makespan}"
    )
    print(
        format_table(
            ["phase", "calls", "total_s", "mean_us", "share"],
            report["rows"],
        )
    )
    print(
        f"kernel wall time: {report['wall_seconds']:.6f}s  "
        f"attributed to phases: {report['attributed'] * 100:.1f}%"
    )
    return 0


def _cmd_demo() -> int:
    from .algorithms import GreedyBalance
    from .generators import fig1_instance

    instance = fig1_instance()
    print("Figure 1 instance:")
    print(render_instance(instance))
    schedule = GreedyBalance().run(instance)
    print("\nGreedyBalance schedule:")
    print(render_schedule(schedule))
    graph = SchedulingGraph(schedule)
    print("\nScheduling hypergraph:")
    print(render_components(graph))
    print(f"\nmetrics: {compute_metrics(schedule).as_row()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command in ("run", "schedule"):
        with _telemetry(args):
            return _cmd_schedule(args)
    if args.command == "batch":
        with _telemetry(args):
            return _cmd_batch(args)
    if args.command == "crosscheck":
        with _telemetry(args):
            return _cmd_crosscheck(args)
    if args.command == "certify":
        with _telemetry(args):
            return _cmd_certify(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "bench-report":
        return _cmd_bench_report(args)
    if args.command == "serve":
        with _telemetry(args):
            return _cmd_serve(args)
    if args.command == "replay":
        with _telemetry(args):
            return _cmd_replay(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "demo":
        return _cmd_demo()
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
