"""Command-line interface: ``crsharing`` / ``python -m repro``.

Subcommands:

* ``experiment <ID>`` -- run a paper experiment and print its table
  (optionally write CSV/SVG);
* ``list`` -- list experiments and policies;
* ``solve <instance.json>`` -- exact optimum of an instance file;
* ``schedule <instance.json> --policy NAME`` -- run a policy and
  render the schedule (ASCII, optionally SVG/JSON);
* ``demo`` -- a quick end-to-end tour on the Figure 1 instance.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .algorithms import (
    available_policies,
    get_policy,
    opt_res_assignment,
    opt_res_assignment_general,
)
from .analysis import compute_metrics
from .core.hypergraph import SchedulingGraph
from .experiments import EXPERIMENTS, get_experiment
from .io import load_instance, save_schedule
from .viz import (
    hypergraph_svg,
    render_components,
    render_instance,
    render_schedule,
    schedule_svg,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="crsharing",
        description=(
            "Reproduction toolkit for 'Scheduling Shared Continuous "
            "Resources on Many-Cores' (Althaus et al.)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiments and policies")

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("id", help=f"experiment id, one of {sorted(EXPERIMENTS)}")
    p_exp.add_argument("--csv", type=Path, help="write the rows as CSV")

    p_solve = sub.add_parser("solve", help="exact optimum of an instance file")
    p_solve.add_argument("instance", type=Path)

    p_sched = sub.add_parser("schedule", help="run a policy on an instance file")
    p_sched.add_argument("instance", type=Path)
    p_sched.add_argument(
        "--policy",
        default="greedy-balance",
        help=f"one of {available_policies()}",
    )
    p_sched.add_argument("--svg", type=Path, help="write a Gantt SVG")
    p_sched.add_argument("--json", type=Path, help="write the schedule as JSON")

    p_verify = sub.add_parser(
        "verify", help="validate a schedule file and report its properties"
    )
    p_verify.add_argument("schedule", type=Path)

    sub.add_parser("demo", help="quick tour on the Figure 1 example")
    return parser


def _cmd_list() -> int:
    print("experiments:")
    for exp in EXPERIMENTS.values():
        print(f"  {exp.id:<6} {exp.title}")
    print("policies:")
    for name in available_policies():
        print(f"  {name}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    exp = get_experiment(args.id)
    result = exp.run()
    print(result.to_text())
    if args.csv:
        result.to_csv(args.csv)
        print(f"rows written to {args.csv}")
    return 0 if result.verdict in (True, None) else 1


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    print(render_instance(instance))
    if instance.num_processors == 2:
        result = opt_res_assignment(instance)
    else:
        result = opt_res_assignment_general(instance)
    print(f"optimal makespan: {result.makespan}")
    print(render_schedule(result.schedule))
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    policy = get_policy(args.policy)
    schedule = policy.run(instance)
    print(render_instance(instance))
    print()
    print(render_schedule(schedule))
    metrics = compute_metrics(schedule)
    print(f"metrics: {metrics.as_row()}")
    if args.svg:
        args.svg.write_text(schedule_svg(schedule, title=f"{args.policy}"))
        print(f"SVG written to {args.svg}")
    if args.json:
        save_schedule(schedule, args.json)
        print(f"JSON written to {args.json}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .analysis import verify_schedule
    from .core.properties import is_balanced, is_nested, is_non_wasting, is_progressive
    from .io import load_schedule

    schedule = load_schedule(args.schedule)
    report = verify_schedule(schedule)
    print(f"makespan: {schedule.makespan}")
    print(f"feasible: {report.ok}")
    for problem in report.problems:
        print(f"  problem: {problem}")
    if report.ok:
        print(f"non-wasting: {is_non_wasting(schedule)}")
        print(f"progressive: {is_progressive(schedule)}")
        print(f"nested:      {is_nested(schedule)}")
        print(f"balanced:    {is_balanced(schedule)}")
        print(f"metrics: {compute_metrics(schedule).as_row()}")
    return 0 if report.ok else 1


def _cmd_demo() -> int:
    from .algorithms import GreedyBalance
    from .generators import fig1_instance

    instance = fig1_instance()
    print("Figure 1 instance:")
    print(render_instance(instance))
    schedule = GreedyBalance().run(instance)
    print("\nGreedyBalance schedule:")
    print(render_schedule(schedule))
    graph = SchedulingGraph(schedule)
    print("\nScheduling hypergraph:")
    print(render_components(graph))
    print(f"\nmetrics: {compute_metrics(schedule).as_row()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "schedule":
        return _cmd_schedule(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "demo":
        return _cmd_demo()
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
