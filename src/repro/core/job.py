"""Job model for the CRSharing problem (Section 3.1 of the paper).

A job ``(i, j)`` is the *j*-th phase of the task pinned to processor
*i*.  It carries a resource requirement and a processing volume:

``requirements`` (:math:`r_{ij} \\in [0, 1]^k`)
    The share of each shared resource needed to process one unit of
    the job's volume per time step at full speed.  The paper's model
    has exactly one resource (``k = 1``); the multi-resource extension
    (after *Scheduling with Many Shared Resources*, Maack et al.)
    allows ``k >= 1`` renewable resources, each with capacity 1 per
    step.  A job granted share :math:`s_l` of resource *l* runs at
    speed :math:`\\min_l s_l / r_l` over the resources it actually
    needs -- the *bottleneck* resource dictates the pace.

``size`` (:math:`p_{ij} > 0`)
    The processing volume.  The paper's analysis (Sections 4-8) fixes
    ``size == 1`` ("unit size jobs"); the general model and the
    simulator support arbitrary sizes.

Under the paper's *alternative interpretation* (Section 3.1, Eq. 2) a
job is a work volume :math:`\\tilde p_{ij} = r_{ij} p_{ij}` processed
at speed :math:`\\min(R_i(t), r_{ij})`; :attr:`Job.work` exposes that
quantity -- measured on the bottleneck resource for ``k > 1`` -- which
is the natural unit for all bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from ..exceptions import InvalidInstanceError
from .numerics import Num, ONE, ZERO, format_frac, to_frac

__all__ = ["Job", "JobId"]

#: A job is addressed as ``(processor_index, job_index)``; both 0-based
#: in code (the paper uses 1-based indices).
JobId = tuple[int, int]


@dataclass(frozen=True, slots=True)
class Job:
    """One job: per-resource requirements in ``[0,1]`` and a positive size.

    Instances are immutable value objects; all numeric fields are exact
    :class:`~fractions.Fraction` values (see :mod:`repro.core.numerics`).

    Args:
        requirement: resource requirement :math:`r_{ij} \\in [0, 1]`.
            A bare number declares the paper's single-resource model; a
            sequence of ``k`` numbers declares one requirement per
            shared resource (the multi-resource extension).
        size: processing volume :math:`p_{ij} > 0` (default 1 = the
            unit-size restriction analyzed in the paper).

    Raises:
        InvalidInstanceError: if any requirement is outside ``[0,1]``,
            the requirement vector is empty, or the size is not
            positive.

    Example:
        >>> Job("1/3")                      # single resource
        Job(1/3)
        >>> Job(["1/2", "1/4"]).requirement  # bottleneck of two resources
        Fraction(1, 2)
    """

    requirements: tuple[Fraction, ...]
    size: Fraction
    #: Bottleneck requirement, precomputed because the step loops read
    #: it every step; derived from ``requirements``, so excluded from
    #: equality/hash.
    requirement: Fraction = field(compare=False)

    def __init__(
        self, requirement: "Num | tuple[Num, ...] | list[Num]", size: Num = 1
    ) -> None:
        if isinstance(requirement, (tuple, list)):
            reqs = tuple(to_frac(r) for r in requirement)
            if not reqs:
                raise InvalidInstanceError(
                    "a job needs at least one resource requirement"
                )
        else:
            reqs = (to_frac(requirement),)
        for req in reqs:
            if not (ZERO <= req <= ONE):
                raise InvalidInstanceError(
                    f"job requirement must be in [0, 1], got {format_frac(req)}"
                )
        sz = to_frac(size)
        if sz <= ZERO:
            raise InvalidInstanceError(
                f"job size must be positive, got {format_frac(sz)}"
            )
        object.__setattr__(self, "requirements", reqs)
        object.__setattr__(self, "size", sz)
        object.__setattr__(self, "requirement", max(reqs))

    @property
    def num_resources(self) -> int:
        """``k`` -- how many shared resources this job declares."""
        return len(self.requirements)

    @property
    def work(self) -> Fraction:
        """Total work :math:`\\tilde p = r^* \\cdot p` (Eq. 2).

        The amount of bottleneck resource-time the job consumes over
        its lifetime in the alternative (variable-speed)
        interpretation.
        """
        return self.requirement * self.size

    @property
    def work_vector(self) -> tuple[Fraction, ...]:
        """Per-resource work :math:`(r_{l} \\cdot p)_l`.

        Resource-time consumed on each resource over the job's
        lifetime.
        """
        return tuple(r * self.size for r in self.requirements)

    @property
    def is_unit(self) -> bool:
        """True iff the job has unit size (``p == 1``)."""
        return self.size == ONE

    def steps_at_full_speed(self) -> int:
        """Minimum whole steps to finish at full speed (``ceil(size)``).

        Assumes the job is always granted its full requirement.
        """
        return -((-self.size).__floor__())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if len(self.requirements) == 1:
            req = format_frac(self.requirements[0])
        else:
            req = "[" + ", ".join(format_frac(r) for r in self.requirements) + "]"
        if self.is_unit:
            return f"Job({req})"
        return f"Job({req}, size={format_frac(self.size)})"
