"""Job model for the CRSharing problem (Section 3.1 of the paper).

A job ``(i, j)`` is the *j*-th phase of the task pinned to processor
*i*.  It carries two numbers:

``requirement`` (:math:`r_{ij} \\in [0, 1]`)
    The share of the common resource needed to process one unit of the
    job's volume per time step at full speed.

``size`` (:math:`p_{ij} > 0`)
    The processing volume.  The paper's analysis (Sections 4-8) fixes
    ``size == 1`` ("unit size jobs"); the general model and the
    simulator support arbitrary sizes.

Under the paper's *alternative interpretation* (Section 3.1, Eq. 2) a
job is a work volume :math:`\\tilde p_{ij} = r_{ij} p_{ij}` processed
at speed :math:`\\min(R_i(t), r_{ij})`; :attr:`Job.work` exposes that
quantity, which is the natural unit for all bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..exceptions import InvalidInstanceError
from .numerics import Num, ONE, ZERO, format_frac, to_frac

__all__ = ["Job", "JobId"]

#: A job is addressed as ``(processor_index, job_index)``; both 0-based
#: in code (the paper uses 1-based indices).
JobId = tuple[int, int]


@dataclass(frozen=True, slots=True)
class Job:
    """One job: a resource requirement in ``[0,1]`` and a positive size.

    Instances are immutable value objects; all numeric fields are exact
    :class:`~fractions.Fraction` values (see :mod:`repro.core.numerics`).

    Args:
        requirement: resource requirement :math:`r_{ij} \\in [0, 1]`.
        size: processing volume :math:`p_{ij} > 0` (default 1 = the
            unit-size restriction analyzed in the paper).

    Raises:
        InvalidInstanceError: if the requirement is outside ``[0,1]`` or
            the size is not positive.
    """

    requirement: Fraction
    size: Fraction

    def __init__(self, requirement: Num, size: Num = 1) -> None:
        req = to_frac(requirement)
        sz = to_frac(size)
        if not (ZERO <= req <= ONE):
            raise InvalidInstanceError(
                f"job requirement must be in [0, 1], got {format_frac(req)}"
            )
        if sz <= ZERO:
            raise InvalidInstanceError(f"job size must be positive, got {format_frac(sz)}")
        object.__setattr__(self, "requirement", req)
        object.__setattr__(self, "size", sz)

    @property
    def work(self) -> Fraction:
        """Total work :math:`\\tilde p = r \\cdot p` in the alternative
        (variable-speed) interpretation -- the amount of resource-time
        the job consumes over its lifetime."""
        return self.requirement * self.size

    @property
    def is_unit(self) -> bool:
        """True iff the job has unit size (``p == 1``)."""
        return self.size == ONE

    def steps_at_full_speed(self) -> int:
        """Minimum number of whole time steps to finish the job when it
        is always granted its full requirement (``ceil(size)``)."""
        return -((-self.size).__floor__())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_unit:
            return f"Job({format_frac(self.requirement)})"
        return f"Job({format_frac(self.requirement)}, size={format_frac(self.size)})"
