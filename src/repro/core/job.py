"""Job model for the CRSharing problem (Section 3.1 of the paper).

A job ``(i, j)`` is the *j*-th phase of the task pinned to processor
*i*.  It carries a resource requirement and a processing volume:

``requirements`` (:math:`r_{ij} \\in [0, 1]^k`)
    The share of each shared resource needed to process one unit of
    the job's volume per time step at full speed.  The paper's model
    has exactly one resource (``k = 1``); the multi-resource extension
    (after *Scheduling with Many Shared Resources*, Maack et al.)
    allows ``k >= 1`` renewable resources, each with capacity 1 per
    step.  A job granted share :math:`s_l` of resource *l* runs at
    speed :math:`\\min_l s_l / r_l` over the resources it actually
    needs -- the *bottleneck* resource dictates the pace.

``size`` (:math:`p_{ij} > 0`)
    The processing volume.  The paper's analysis (Sections 4-8) fixes
    ``size == 1`` ("unit size jobs"); the general model and the
    simulator support arbitrary sizes.

Under the paper's *alternative interpretation* (Section 3.1, Eq. 2) a
job is a work volume :math:`\\tilde p_{ij} = r_{ij} p_{ij}` processed
at speed :math:`\\min(R_i(t), r_{ij})`; :attr:`Job.work` exposes that
quantity -- measured on the bottleneck resource for ``k > 1`` -- which
is the natural unit for all bookkeeping.

Objective extension
===================

Beyond the paper's makespan objective, a job may carry two optional
annotations consumed by the pluggable objective layer
(:mod:`repro.objectives`):

``weight`` (:math:`w_{ij} > 0`, default 1)
    The job's importance under the weighted flow time objective
    :math:`F_w = \\sum w_{ij} (C_{ij} - r_i)` (cf. the mean response
    time literature, e.g. Berg et al.).  The default of 1 makes every
    weighted objective degenerate to its unweighted form.

``deadline`` (:math:`d_{ij} \\ge 1` or ``None``, default ``None``)
    The 1-based step by which the job should complete under the
    tardiness / lateness objectives (cf. the deadline variants of the
    discrete--continuous line, Józefowska & Węglarz).  ``None`` means
    "no deadline"; such jobs contribute zero tardiness.

Both defaults keep the paper's model bit-identical: they do not enter
the step semantics at all, only objective evaluation and
objective-aware policies read them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from ..exceptions import InvalidInstanceError
from .numerics import Num, ONE, ZERO, format_frac, to_frac

__all__ = ["Job", "JobId"]

#: A job is addressed as ``(processor_index, job_index)``; both 0-based
#: in code (the paper uses 1-based indices).
JobId = tuple[int, int]


@dataclass(frozen=True, slots=True)
class Job:
    """One job: per-resource requirements in ``[0,1]`` and a positive size.

    Instances are immutable value objects; all numeric fields are exact
    :class:`~fractions.Fraction` values (see :mod:`repro.core.numerics`).

    Args:
        requirement: resource requirement :math:`r_{ij} \\in [0, 1]`.
            A bare number declares the paper's single-resource model; a
            sequence of ``k`` numbers declares one requirement per
            shared resource (the multi-resource extension).
        size: processing volume :math:`p_{ij} > 0` (default 1 = the
            unit-size restriction analyzed in the paper).
        weight: objective weight :math:`w_{ij} > 0` (default 1 -- the
            unweighted model; read by the weighted flow objective and
            flow-tuned policies, never by the step semantics).
        deadline: optional 1-based due step :math:`d_{ij} \\ge 1`
            (default ``None`` = no deadline; read by the tardiness
            objectives and deadline-aware policies).

    Raises:
        InvalidInstanceError: if any requirement is outside ``[0,1]``,
            the requirement vector is empty, the size or weight is not
            positive, or the deadline is not ``None`` and < 1.

    Example:
        >>> Job("1/3")                      # single resource
        Job(1/3)
        >>> Job(["1/2", "1/4"]).requirement  # bottleneck of two resources
        Fraction(1, 2)
        >>> Job("1/3", weight=3, deadline=4)
        Job(1/3, weight=3, deadline=4)
    """

    requirements: tuple[Fraction, ...]
    size: Fraction
    weight: Fraction
    deadline: int | None
    #: Bottleneck requirement, precomputed because the step loops read
    #: it every step; derived from ``requirements``, so excluded from
    #: equality/hash.
    requirement: Fraction = field(compare=False)
    #: Memoized :func:`hash` -- ``Fraction`` hashing is slow and the
    #: same ``Job`` objects recur across candidate orders in the
    #: sequencing layer's memoized evaluation cache.
    _hash: int | None = field(compare=False, repr=False)

    def __init__(
        self,
        requirement: "Num | tuple[Num, ...] | list[Num]",
        size: Num = 1,
        *,
        weight: Num = 1,
        deadline: int | None = None,
    ) -> None:
        if isinstance(requirement, (tuple, list)):
            reqs = tuple(to_frac(r) for r in requirement)
            if not reqs:
                raise InvalidInstanceError(
                    "a job needs at least one resource requirement"
                )
        else:
            reqs = (to_frac(requirement),)
        for req in reqs:
            if not (ZERO <= req <= ONE):
                raise InvalidInstanceError(
                    f"job requirement must be in [0, 1], got {format_frac(req)}"
                )
        sz = to_frac(size)
        if sz <= ZERO:
            raise InvalidInstanceError(
                f"job size must be positive, got {format_frac(sz)}"
            )
        wgt = to_frac(weight)
        if wgt <= ZERO:
            raise InvalidInstanceError(
                f"job weight must be positive, got {format_frac(wgt)}"
            )
        if deadline is not None:
            deadline = int(deadline)
            if deadline < 1:
                raise InvalidInstanceError(
                    f"job deadline must be a step >= 1, got {deadline}"
                )
        object.__setattr__(self, "requirements", reqs)
        object.__setattr__(self, "size", sz)
        object.__setattr__(self, "weight", wgt)
        object.__setattr__(self, "deadline", deadline)
        object.__setattr__(self, "requirement", max(reqs))
        object.__setattr__(self, "_hash", None)

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.requirements, self.size, self.weight, self.deadline))
            object.__setattr__(self, "_hash", h)
        return h

    @property
    def num_resources(self) -> int:
        """``k`` -- how many shared resources this job declares."""
        return len(self.requirements)

    @property
    def work(self) -> Fraction:
        """Total work :math:`\\tilde p = r^* \\cdot p` (Eq. 2).

        The amount of bottleneck resource-time the job consumes over
        its lifetime in the alternative (variable-speed)
        interpretation.
        """
        return self.requirement * self.size

    @property
    def work_vector(self) -> tuple[Fraction, ...]:
        """Per-resource work :math:`(r_{l} \\cdot p)_l`.

        Resource-time consumed on each resource over the job's
        lifetime.
        """
        return tuple(r * self.size for r in self.requirements)

    @property
    def is_unit(self) -> bool:
        """True iff the job has unit size (``p == 1``)."""
        return self.size == ONE

    @property
    def has_deadline(self) -> bool:
        """True iff the job carries a due step (``deadline`` is set)."""
        return self.deadline is not None

    @property
    def is_unit_weight(self) -> bool:
        """True iff the job has the default objective weight of 1."""
        return self.weight == ONE

    def replace(self, *, weight: Num | None = None, deadline=...) -> "Job":
        """A copy with the objective annotations swapped.

        ``weight=None`` keeps the current weight; ``deadline`` uses the
        ``...`` sentinel so it can be cleared explicitly with
        ``replace(deadline=None)``.
        """
        return Job(
            self.requirements if len(self.requirements) > 1
            else self.requirements[0],
            self.size,
            weight=self.weight if weight is None else weight,
            deadline=self.deadline if deadline is ... else deadline,
        )

    def steps_at_full_speed(self) -> int:
        """Minimum whole steps to finish at full speed (``ceil(size)``).

        Assumes the job is always granted its full requirement.
        """
        return -((-self.size).__floor__())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if len(self.requirements) == 1:
            req = format_frac(self.requirements[0])
        else:
            req = "[" + ", ".join(format_frac(r) for r in self.requirements) + "]"
        parts = [req]
        if not self.is_unit:
            parts.append(f"size={format_frac(self.size)}")
        if not self.is_unit_weight:
            parts.append(f"weight={format_frac(self.weight)}")
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline}")
        return f"Job({', '.join(parts)})"
