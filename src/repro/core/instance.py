"""Problem instances for CRSharing (Section 3.1).

An :class:`Instance` is ``m`` sequences of :class:`~repro.core.job.Job`
objects, one sequence per processor.  The job-to-processor assignment
and the order of jobs on a processor are *fixed* -- this is the paper's
central modelling decision: the scheduler only distributes the shared
resource, it does not place jobs.

The class carries the derived quantities used throughout the paper:

* ``n`` -- the maximum number of jobs on any processor,
* ``M_j`` -- the set of processors with at least ``j`` jobs
  (:meth:`Instance.processors_with_at_least`),
* the total work :math:`\\sum_{i,j} r_{ij} p_{ij}` behind
  Observation 1 (:meth:`Instance.total_work`).

Online-arrival extension
========================

Beyond the paper's static model, an instance may carry per-processor
integer *release times*: processor ``i``'s queue only becomes
available at step ``releases[i]`` (inactive-until-released, in the
spirit of the dynamic generalizations studied by Maack et al.'s
*Scheduling with Many Shared Resources*).  The default of all zeros
reproduces the paper's static model bit-for-bit; the exact algorithms
of Sections 5-8 analyze the static model only and reject instances
with non-zero release times via :meth:`Instance.require_static`.

Multi-resource extension
========================

An instance may declare ``k >= 1`` shared resources (again after
Maack et al.): every job carries a requirement *vector*
:math:`r_{ij} \\in [0,1]^k`, each resource has capacity 1 per step,
and a job's speed is dictated by its bottleneck resource
(:math:`\\min_l s_l / r_{ijl}`).  All jobs of one instance must agree
on ``k`` (:attr:`Instance.num_resources`); the paper's model is the
``k = 1`` special case and executes bit-identically.  The exact
offline algorithms and the :class:`~repro.core.schedule.Schedule`
artifact analyze the single-resource model only and reject ``k > 1``
via :meth:`Instance.require_single_resource`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Sequence

from ..exceptions import InvalidInstanceError, UnitSizeRequiredError
from .job import Job, JobId
from .numerics import (
    Num,
    common_denominator,
    frac_ceil,
    frac_sum,
    to_frac,
)

__all__ = ["Instance"]


class Instance:
    """An immutable CRSharing problem instance.

    Args:
        queues: one sequence of jobs per processor.  Elements may be
            :class:`Job` objects or bare numbers (interpreted as
            unit-size requirements), so
            ``Instance([[0.5, 0.5], [1, "1/3"]])`` works.
        releases: optional per-processor integer release times (step at
            which the processor's queue becomes available).  ``None``
            (the default) means all zeros -- the paper's static model.

    Raises:
        InvalidInstanceError: if there are no processors, any processor
            has an empty job sequence, the jobs disagree on the number
            of shared resources, or a release time is negative or
            mis-shaped.  (The paper allows ``n_i >= 1`` implicitly; an
            idle processor adds nothing to the problem and would break
            several notational conventions, so we reject it at
            construction.)

    Example:
        >>> inst = Instance([["1/2", "1/2"], [1, "1/3"]])
        >>> inst.m, inst.max_jobs, inst.num_resources
        (2, 2, 1)
    """

    __slots__ = ("_queues", "_releases", "_k", "_hash")

    def __init__(
        self,
        queues: Iterable[Iterable[Job | Num]],
        *,
        releases: Sequence[int] | None = None,
    ) -> None:
        built: list[tuple[Job, ...]] = []
        k: int | None = None
        for qi, queue in enumerate(queues):
            jobs: list[Job] = []
            for job in queue:
                if not isinstance(job, Job):
                    job = Job(job)
                jk = len(job.requirements)
                if jk != k:
                    if k is None:
                        k = jk
                    else:
                        raise InvalidInstanceError(
                            f"all jobs must declare the same number of shared "
                            f"resources: processor {qi} has a job with "
                            f"{jk}, expected {k}"
                        )
                jobs.append(job)
            if not jobs:
                raise InvalidInstanceError(f"processor {qi} has an empty job sequence")
            built.append(tuple(jobs))
        if not built:
            raise InvalidInstanceError("an instance needs at least one processor")
        self._queues: tuple[tuple[Job, ...], ...] = tuple(built)
        self._k = k
        if releases is None:
            self._releases: tuple[int, ...] = (0,) * len(built)
        else:
            rel = tuple(int(r) for r in releases)
            if len(rel) != len(built):
                raise InvalidInstanceError(
                    f"releases has {len(rel)} entries for {len(built)} processors"
                )
            if any(r < 0 for r in rel):
                raise InvalidInstanceError(
                    f"release times must be non-negative, got {rel}"
                )
            self._releases = rel
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def num_processors(self) -> int:
        """``m`` -- the number of processors."""
        return len(self._queues)

    @property
    def m(self) -> int:
        """Alias for :attr:`num_processors` matching the paper."""
        return len(self._queues)

    @property
    def queues(self) -> tuple[tuple[Job, ...], ...]:
        """The job sequences, one tuple per processor."""
        return self._queues

    def num_jobs(self, processor: int) -> int:
        """``n_i`` -- the number of jobs on *processor*."""
        return len(self._queues[processor])

    @property
    def max_jobs(self) -> int:
        """``n = max_i n_i`` -- the longest job sequence."""
        return max(len(q) for q in self._queues)

    @property
    def total_jobs(self) -> int:
        """Total number of jobs over all processors."""
        return sum(len(q) for q in self._queues)

    def job(self, processor: int, index: int) -> Job:
        """The job ``(processor, index)`` (0-based indices)."""
        return self._queues[processor][index]

    def jobs(self) -> Iterator[tuple[JobId, Job]]:
        """Iterate over ``((i, j), job)`` pairs in processor-major order."""
        for i, queue in enumerate(self._queues):
            for j, job in enumerate(queue):
                yield (i, j), job

    def requirement(self, processor: int, index: int) -> Fraction:
        """``r_{ij}`` of job ``(processor, index)`` (bottleneck for ``k > 1``)."""
        return self._queues[processor][index].requirement

    def requirements(self, processor: int) -> tuple[Fraction, ...]:
        """All (bottleneck) requirements on one processor, in order."""
        return tuple(job.requirement for job in self._queues[processor])

    # ------------------------------------------------------------------
    # Shared resources (multi-resource extension)
    # ------------------------------------------------------------------
    @property
    def num_resources(self) -> int:
        """``k`` -- the number of shared resources (1 in the paper's model)."""
        return self._k

    @property
    def is_single_resource(self) -> bool:
        """True iff this is the paper's one-resource model (``k == 1``)."""
        return self._k == 1

    def require_single_resource(self, algorithm: str) -> None:
        """Raise :class:`InvalidInstanceError` unless ``k == 1``.

        The paper's exact offline algorithms, the
        :class:`~repro.core.schedule.Schedule` artifact, and the
        integer-grid fast paths analyze the single-resource model only;
        multi-resource instances run through the kernel backends.
        """
        if self._k != 1:
            raise InvalidInstanceError(
                f"{algorithm} analyzes the paper's single-resource model "
                f"(k=1); this instance declares {self._k} shared resources "
                "-- use the simulator backends (run_policy / run_backend) "
                "for the multi-resource extension"
            )

    # ------------------------------------------------------------------
    # Release times (online-arrival extension)
    # ------------------------------------------------------------------
    @property
    def releases(self) -> tuple[int, ...]:
        """Per-processor release times (all zero in the static model)."""
        return self._releases

    def release(self, processor: int) -> int:
        """Release time of *processor*'s queue (0 in the static model)."""
        return self._releases[processor]

    @property
    def has_releases(self) -> bool:
        """True iff any processor arrives after step 0."""
        return any(r != 0 for r in self._releases)

    @property
    def max_release(self) -> int:
        """The latest release time (0 for static instances)."""
        return max(self._releases)

    def with_releases(self, releases: Sequence[int] | None) -> "Instance":
        """A copy of this instance with the given release times."""
        return Instance(self._queues, releases=releases)

    def require_static(self, algorithm: str) -> None:
        """Reject instances with non-zero release times.

        The exact offline algorithms and closed-form makespan formulas
        (Sections 4-8) analyze the static model only; they raise
        :class:`InvalidInstanceError` through this guard.
        """
        if self.has_releases:
            raise InvalidInstanceError(
                f"{algorithm} assumes the paper's static model (all "
                f"release times 0); this instance has releases "
                f"{self._releases} -- use the simulator/backends for "
                "online arrivals"
            )

    # ------------------------------------------------------------------
    # Objective annotations (weights / deadlines extension)
    # ------------------------------------------------------------------
    @property
    def has_weights(self) -> bool:
        """True iff any job carries a non-default objective weight."""
        return any(not job.is_unit_weight for _, job in self.jobs())

    @property
    def has_deadlines(self) -> bool:
        """True iff any job carries a due step."""
        return any(job.has_deadline for _, job in self.jobs())

    def total_weight(self) -> Fraction:
        """Sum of all job weights (``total_jobs`` in the unit case)."""
        return frac_sum(job.weight for _, job in self.jobs())

    def with_weights(self, weights: Sequence[Sequence[Num]]) -> "Instance":
        """A copy with per-job objective weights (queue-shaped input)."""
        if len(weights) != self.num_processors:
            raise InvalidInstanceError(
                f"weights has {len(weights)} rows for "
                f"{self.num_processors} processors"
            )
        queues = []
        for i, queue in enumerate(self._queues):
            if len(weights[i]) != len(queue):
                raise InvalidInstanceError(
                    f"weights[{i}] has {len(weights[i])} entries for "
                    f"{len(queue)} jobs"
                )
            queues.append(
                [job.replace(weight=w) for job, w in zip(queue, weights[i])]
            )
        return Instance(queues, releases=self._releases)

    def with_deadlines(
        self, deadlines: Sequence[Sequence[int | None]]
    ) -> "Instance":
        """A copy with per-job due steps (queue-shaped; ``None`` clears)."""
        if len(deadlines) != self.num_processors:
            raise InvalidInstanceError(
                f"deadlines has {len(deadlines)} rows for "
                f"{self.num_processors} processors"
            )
        queues = []
        for i, queue in enumerate(self._queues):
            if len(deadlines[i]) != len(queue):
                raise InvalidInstanceError(
                    f"deadlines[{i}] has {len(deadlines[i])} entries for "
                    f"{len(queue)} jobs"
                )
            queues.append(
                [job.replace(deadline=d) for job, d in zip(queue, deadlines[i])]
            )
        return Instance(queues, releases=self._releases)

    def earliest_completion_times(self) -> dict[JobId, int]:
        """Per job, the earliest possible 1-based completion time.

        Processor *i* cannot start before its release and processes its
        queue in order at best at full speed, so job ``(i, j)`` cannot
        complete before ``releases[i] + sum_{j' <= j} ceil(p_{ij'})``.
        Resource contention between processors is ignored, so these are
        valid per-job lower bounds under *any* feasible schedule -- the
        base certificates of the flow/tardiness objective bounds.
        """
        earliest: dict[JobId, int] = {}
        for i, queue in enumerate(self._queues):
            steps = self._releases[i]
            for j, job in enumerate(queue):
                steps += job.steps_at_full_speed()
                earliest[(i, j)] = steps
        return earliest

    # ------------------------------------------------------------------
    # Paper quantities
    # ------------------------------------------------------------------
    def processors_with_at_least(self, j: int) -> tuple[int, ...]:
        """``M_j = { i : n_i >= j }`` for 1-based job index *j*.

        Matches the paper's definition, so ``processors_with_at_least(1)``
        is every processor.
        """
        if j < 1:
            raise ValueError(f"job index must be >= 1 (paper convention), got {j}")
        return tuple(i for i, q in enumerate(self._queues) if len(q) >= j)

    def total_work(self) -> Fraction:
        """:math:`\\sum_{i,j} r_{ij} \\cdot p_{ij}` -- total resource-time.

        By Observation 1, ``ceil(total_work())`` lower-bounds the
        makespan of any feasible schedule.  For ``k > 1`` this sums the
        *bottleneck* work of every job; use :meth:`resource_work` for
        the per-resource congestion totals.
        """
        return frac_sum(job.work for _, job in self.jobs())

    def resource_work(self, resource: int) -> Fraction:
        """Congestion :math:`W_l = \\sum_{i,j} r_{ijl} \\cdot p_{ij}` of one resource.

        The resource-time demanded from shared resource *resource*;
        ``resource_work(0) == total_work()`` for ``k == 1``.
        """
        return frac_sum(
            job.requirements[resource] * job.size for _, job in self.jobs()
        )

    def work_lower_bound(self) -> int:
        """Observation 1, per resource: ``max_l ceil(W_l)`` steps.

        Each resource has capacity 1 per step, so the most congested
        resource lower-bounds the makespan.  For ``k == 1`` this is
        exactly the paper's ``ceil(total work)`` bound.
        """
        if self._k == 1:
            return frac_ceil(self.total_work())
        return max(frac_ceil(self.resource_work(r)) for r in range(self._k))

    def makespan_lower_bound(self) -> int:
        """A makespan lower bound that accounts for release times.

        For static instances this is exactly :meth:`work_lower_bound`
        (Observation 1, the paper's canonical bound; the per-resource
        congestion maximum for ``k > 1``).  With arrivals it
        additionally uses that (a) the resource is unusable before the
        earliest release, and (b) each processor needs at least
        ``sum_j ceil(p_ij)`` steps after its own release (a job cannot
        finish faster than its volume even at full speed).
        """
        if not self.has_releases:
            return self.work_lower_bound()
        bound = min(self._releases) + self.work_lower_bound()
        for i, queue in enumerate(self._queues):
            steps = sum(job.steps_at_full_speed() for job in queue)
            bound = max(bound, self._releases[i] + steps)
        return bound

    @property
    def is_unit_size(self) -> bool:
        """True iff every job has unit size (the analyzed restriction)."""
        return all(job.is_unit for _, job in self.jobs())

    def require_unit_size(self, algorithm: str) -> None:
        """Reject instances with non-unit job sizes.

        Exact algorithms from Sections 5-8 raise
        :class:`UnitSizeRequiredError` through this guard.
        """
        if not self.is_unit_size:
            raise UnitSizeRequiredError(
                f"{algorithm} is defined for unit-size jobs only "
                "(Sections 4-8 of the paper); use the simulator for the "
                "general model"
            )

    # ------------------------------------------------------------------
    # Integer grid
    # ------------------------------------------------------------------
    def resource_denominator(self) -> int:
        """Least common denominator of all requirement components (>= 1)."""
        return common_denominator(
            r for _, job in self.jobs() for r in job.requirements
        )

    def to_integer_grid(self) -> tuple[list[list[int]], int]:
        """Express all requirements as integers over a common grid.

        Returns ``(units, D)`` with
        ``units[i][j] * Fraction(1, D) == r_{ij}``; the per-step
        resource capacity becomes ``D`` units.  Algorithms that only
        add and compare requirements can then run in pure integer
        arithmetic.  Single-resource only (the integer fast paths
        model the paper's scalar requirements).
        """
        self.require_single_resource("to_integer_grid")
        d = self.resource_denominator()
        units = [[int(job.requirement * d) for job in queue] for queue in self._queues]
        return units, d

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_requirements(
        cls,
        requirements: Sequence[Sequence[Num]],
        *,
        releases: Sequence[int] | None = None,
    ) -> "Instance":
        """Build a unit-size instance from raw requirement values.

        Each entry may be a bare number (single resource) or a
        sequence of ``k`` numbers (one requirement per shared
        resource).
        """
        return cls(
            [[Job(r) for r in row] for row in requirements], releases=releases
        )

    @classmethod
    def from_bag(
        cls,
        jobs: Iterable[Job | Num],
        m: int,
        *,
        releases: Sequence[int] | None = None,
    ) -> "Instance":
        """Deal a flat bag of jobs onto ``m`` processors round-robin.

        The paper fixes the job-to-processor assignment and the order
        of each queue a priori; this constructor is the entry point of
        the *sequencing* extension (:mod:`repro.sequencing`), which
        treats both as decision variables.  Job ``b`` of the bag lands
        on processor ``b mod m``, preserving bag order within each
        queue -- the identity placement a
        :class:`~repro.sequencing.Sequencer` then improves on.

        Raises:
            InvalidInstanceError: if ``m < 1`` or the bag has fewer
                than ``m`` jobs (every processor needs a non-empty
                queue).

        Example:
            >>> Instance.from_bag(["1/2", "1/4", "3/4"], 2).queues
            ((Job(0.5), Job(0.75)), (Job(0.25),))
        """
        bag = cls.coerce_bag(jobs, m)
        queues: list[list[Job]] = [[] for _ in range(m)]
        for b, job in enumerate(bag):
            queues[b % m].append(job)
        return cls(queues, releases=releases)

    @classmethod
    def coerce_bag(cls, jobs: Iterable[Job | Num], m: int) -> list[Job]:
        """Normalize a flat bag for placement on ``m`` processors.

        Shared by :meth:`from_bag` and the placement sequencers: bare
        numbers become unit-size :class:`Job` objects, and the bag
        must be able to fill every processor.

        Raises:
            InvalidInstanceError: if ``m < 1`` or the bag has fewer
                than ``m`` jobs.
        """
        if m < 1:
            raise InvalidInstanceError(f"need at least one processor, got m={m}")
        bag = [job if isinstance(job, Job) else Job(job) for job in jobs]
        if len(bag) < m:
            raise InvalidInstanceError(
                f"a bag of {len(bag)} jobs cannot fill {m} processors "
                "(every processor needs a non-empty queue)"
            )
        return bag

    def job_bag(self) -> tuple[Job, ...]:
        """All jobs as one flat bag, in processor-major order.

        The inverse view of :meth:`from_bag`: sequencing strategies
        that re-place jobs across processors flatten through this.
        """
        return tuple(job for _, job in self.jobs())

    def same_bag(self, other: "Instance") -> bool:
        """True iff *other* schedules the same multiset of jobs.

        Queue orders, the job-to-processor assignment, and release
        times may differ -- this is the invariant every
        :class:`~repro.sequencing.Sequencer` must preserve (reordering
        decides *when and where*, never *what*).
        """
        def key(job: Job):
            """Total-order key over the compared job attributes.

            ``None`` deadlines sort after every concrete step
            (comparing ``None`` with ``int`` directly would raise).
            """
            return (
                job.requirements,
                job.size,
                job.weight,
                job.deadline is None,
                job.deadline or 0,
            )

        return sorted(map(key, self.job_bag())) == sorted(
            map(key, other.job_bag())
        )

    def with_queues(
        self, queues: Iterable[Iterable[Job | Num]]
    ) -> "Instance":
        """A copy with the job queues replaced, keeping release times.

        The new queues must keep the processor count (release times are
        per processor); use the plain constructor to change ``m``.

        Raises:
            InvalidInstanceError: on a processor-count mismatch.
        """
        built = [tuple(queue) for queue in queues]
        if len(built) != self.num_processors:
            raise InvalidInstanceError(
                f"with_queues got {len(built)} queues for "
                f"{self.num_processors} processors (release times are "
                "per processor; build a new Instance to change m)"
            )
        return Instance(built, releases=self._releases)

    def with_order(self, orders: Sequence[Sequence[int]]) -> "Instance":
        """A copy with each processor's queue permuted.

        ``orders[i]`` is a permutation of ``range(n_i)`` listing
        processor *i*'s job indices in their new execution order --
        the order-permutation helper behind the static sequencing
        strategies.  ``with_order([range(n_i) ...])`` is the identity.

        Raises:
            InvalidInstanceError: if the row count mismatches or any
                row is not a permutation of that queue's indices.

        Example:
            >>> inst = Instance([["1/2", "1/4"], ["3/4"]])
            >>> inst.with_order([[1, 0], [0]]).queues
            ((Job(0.25), Job(0.5)), (Job(0.75),))
        """
        if len(orders) != self.num_processors:
            raise InvalidInstanceError(
                f"with_order got {len(orders)} rows for "
                f"{self.num_processors} processors"
            )
        queues = []
        for i, queue in enumerate(self._queues):
            order = [int(j) for j in orders[i]]
            if sorted(order) != list(range(len(queue))):
                raise InvalidInstanceError(
                    f"with_order row {i} = {order} is not a permutation "
                    f"of 0..{len(queue) - 1}"
                )
            queues.append(tuple(queue[j] for j in order))
        return Instance(queues, releases=self._releases)

    @classmethod
    def from_percent(cls, percents: Sequence[Sequence[Num]]) -> "Instance":
        """Build a unit-size instance from requirements given in percent.

        The notation used by the paper's figures: node label ``55``
        means :math:`r = 0.55`.
        """
        return cls([[Job(to_frac(p) / 100) for p in row] for row in percents])

    def restrict_to_suffix(self, completed: Sequence[int]) -> "Instance":
        """Sub-instance with the given per-processor job prefixes removed.

        The first ``completed[i]`` jobs of each processor are dropped,
        and processors that become empty are dropped entirely.  The
        suffix models a *residual* workload observed mid-schedule,
        after every processor has arrived, so release times are dropped
        (the result is always static).

        Used by the Case-2 analysis of Theorem 7 and by tests that
        recurse on residual workloads.
        """
        if len(completed) != self.num_processors:
            raise ValueError("completed must have one entry per processor")
        rows = []
        for i, queue in enumerate(self._queues):
            done = completed[i]
            if not 0 <= done <= len(queue):
                raise ValueError(
                    f"completed[{i}]={done} out of range 0..{len(queue)}"
                )
            if done < len(queue):
                rows.append(queue[done:])
        if not rows:
            raise InvalidInstanceError("all jobs already completed; empty sub-instance")
        return Instance(rows)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._queues == other._queues and self._releases == other._releases

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._queues, self._releases))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rows = ", ".join(
            "[" + ", ".join(repr(j) for j in queue) + "]" for queue in self._queues
        )
        if self.has_releases:
            return f"Instance([{rows}], releases={list(self._releases)})"
        return f"Instance([{rows}])"
