"""Constructive Lemma 1: normalizing schedules without losing makespan.

Lemma 1 states every feasible schedule can be transformed into one that
is *non-wasting*, *progressive* and *nested* without increasing the
makespan.  The paper proves this with three exchange arguments; this
module implements them operationally so the claim can be tested on
arbitrary schedules:

1. :func:`make_non_wasting` -- sweep steps in ascending order and pull
   work of active jobs earlier into unused capacity;
2. crossing elimination -- for any pair with
   ``S(A) < S(B) < C(A) < C(B)``, pool the two jobs' per-step resource
   over ``S(B)..C(A)`` and serve ``A`` first;
3. the per-step exchange that leaves at most one running-but-unfinished
   job per step (this yields progressiveness and, together with
   crossing elimination, nestedness).

All passes operate on the *work matrix* ``w[t][i]`` (work processed per
step and processor).  Assigning exactly the processed amounts is always
feasible, so shares and work coincide; after every modification the
matrix is re-executed and re-normalized through the canonical
:class:`~repro.core.schedule.Schedule` semantics, which keeps the
implementation honest about speed caps and job boundaries.

The passes are valid for **unit-size jobs** (the scope of Lemma 1 and
of Sections 4--8): unit size guarantees a job's remaining work never
exceeds its requirement, so every pooled reassignment respects the
per-step speed cap automatically.
"""

from __future__ import annotations

from fractions import Fraction

from ..exceptions import SolverError
from .instance import Instance
from .numerics import ONE, ZERO, frac_sum
from .schedule import Schedule

__all__ = ["make_non_wasting", "make_nice"]

_MAX_PASSES = 10_000


def _replay(instance: Instance, w: list[list[Fraction]]) -> Schedule:
    """Execute the work matrix and normalize it to processed amounts.

    Idempotent: shares equal to processed work are always feasible.
    """
    sched = Schedule(instance, w, validate=True, trim=False)
    for t, step in enumerate(sched.steps):
        w[t] = list(step.processed)
    return sched


def make_non_wasting(schedule: Schedule) -> Schedule:
    """Return an equivalent non-wasting schedule (first part of Lemma 1).

    For each step with unused capacity, active unfinished jobs are
    granted more resource now and correspondingly less later.  The
    makespan never increases; completion times never increase.

    Raises:
        UnitSizeRequiredError: for non-unit-size instances.
    """
    instance = schedule.instance
    instance.require_unit_size("make_non_wasting")
    w = [list(step.processed) for step in schedule.steps]
    _non_wasting_pass(instance, w)
    return Schedule(instance, w, validate=True, trim=True)


def _non_wasting_pass(instance: Instance, w: list[list[Fraction]]) -> None:
    T = len(w)
    for t in range(T):
        sched = _replay(instance, w)
        spare = ONE - frac_sum(w[t])
        if spare <= ZERO:
            continue
        for i in range(instance.num_processors):
            if spare <= ZERO:
                break
            j = sched.active_job(t, i)
            if j is None:
                continue
            # Remaining work of (i, j) at the start of step t.
            consumed_before = sum(
                (sched.step(s).processed[i] for s in range(t) if sched.active_job(s, i) == j),
                ZERO,
            )
            room = instance.job(i, j).work - consumed_before - w[t][i]
            if room <= ZERO:
                continue
            delta = min(spare, room)
            w[t][i] += delta
            spare -= delta
            # Take the same amount away from the job's later steps,
            # earliest first.
            t2 = t + 1
            while delta > ZERO and t2 < T:
                if sched.active_job(t2, i) == j and w[t2][i] > ZERO:
                    take = min(delta, w[t2][i])
                    w[t2][i] -= take
                    delta -= take
                t2 += 1
    _replay(instance, w)


def _find_crossing(
    sched: Schedule, min_start: int
) -> tuple[tuple[int, int], tuple[int, int]] | None:
    """Find one crossing pair ``(A, B)``, or ``None``.

    A crossing satisfies ``S(A) < S(B) < C(A) < C(B)`` and
    ``S(B) > min_start``.  Pairs are scanned in order of ``S(B)`` so
    the earliest crossing is repaired first.
    """
    starts = sched.start_steps
    comps = sched.completion_steps
    jobs = sorted(starts, key=lambda jid: starts[jid])
    best = None
    for b in jobs:
        sb = starts[b]
        if sb <= min_start:
            continue
        for a in jobs:
            if a == b:
                continue
            if starts[a] < sb < comps[a] < comps[b]:
                if best is None or sb < starts[best[1]]:
                    best = (a, b)
                break
    return best


def _eliminate_crossings(
    instance: Instance, w: list[list[Fraction]], min_start: int
) -> None:
    """Repair all crossing pairs whose inner job starts after *min_start*.

    The paper's exchange: serve the earlier-started job first from
    the pooled resource of both.
    """
    for _ in range(_MAX_PASSES):
        sched = _replay(instance, w)
        pair = _find_crossing(sched, min_start)
        if pair is None:
            return
        (ia, ja), (ib, jb) = pair
        t_lo = sched.start_step(ib, jb)
        t_hi = sched.completion_step(ia, ja)
        consumed_before = sum(
            (
                sched.step(s).processed[ia]
                for s in range(t_lo)
                if sched.active_job(s, ia) == ja
            ),
            ZERO,
        )
        rem_a = instance.job(ia, ja).work - consumed_before
        for t in range(t_lo, t_hi + 1):
            pool = w[t][ia] + w[t][ib]
            give_a = min(pool, rem_a)
            w[t][ia] = give_a
            rem_a -= give_a
            w[t][ib] = pool - give_a
    raise SolverError("crossing elimination did not converge")  # pragma: no cover


def make_nice(schedule: Schedule) -> Schedule:
    """Apply the full Lemma 1 normalization to a schedule.

    Returns an equivalent non-wasting, progressive and nested
    schedule with makespan at most the original's.

    The returned schedule is re-validated; the three properties are
    asserted before returning, so a successful call is a constructive
    witness of Lemma 1 for the given input.

    Raises:
        UnitSizeRequiredError: for non-unit-size instances.
        SolverError: if any pass fails to converge or a postcondition
            is violated (would indicate a bug, not bad input).
    """
    from .properties import is_nested, is_non_wasting, is_progressive

    instance = schedule.instance
    instance.require_unit_size("make_nice")
    original_makespan = schedule.makespan
    w = [list(step.processed) for step in schedule.steps]

    # The passes interact: the nested repair conserves per-step totals
    # but moves completions, which can re-expose waste (Definition 2
    # demands under-full steps *finish* every active job); the
    # non-wasting pass pulls work earlier, which can re-create order
    # violations.  Iterate to a fixpoint.  Termination: the potential
    # "sum over steps of t * (work processed at t)" lives on the
    # instance's finite rational grid, never increases under any pass,
    # and strictly decreases whenever the non-wasting pass acts -- so
    # only finitely many rounds can make changes.
    for _ in range(_MAX_PASSES):
        _fixpoint_round(instance, w)
        sched = _replay(instance, w)
        if (
            is_non_wasting(sched)
            and is_progressive(sched)
            and is_nested(sched)
        ):
            break
    else:  # pragma: no cover
        raise SolverError("Lemma 1 passes did not reach a fixpoint")

    result = Schedule(instance, w, validate=True, trim=True)
    if result.makespan > original_makespan:  # pragma: no cover
        raise SolverError(
            f"transformation increased makespan "
            f"({original_makespan} -> {result.makespan})"
        )
    if not is_non_wasting(result):  # pragma: no cover
        raise SolverError("transformation failed to be non-wasting")
    if not is_progressive(result):  # pragma: no cover
        raise SolverError("transformation failed to be progressive")
    if not is_nested(result):  # pragma: no cover
        raise SolverError("transformation failed to be nested")
    return result


def _remaining_after(
    sched: Schedule, instance: Instance, i: int, j: int, t: int
) -> Fraction:
    """Remaining work of job ``(i, j)`` after step ``t`` under *sched*."""
    consumed = sum(
        (
            sched.step(s).processed[i]
            for s in range(t + 1)
            if sched.active_job(s, i) == j
        ),
        ZERO,
    )
    return instance.job(i, j).work - consumed


def _lifo_exchange(
    instance: Instance,
    w: list[list[Fraction]],
    sched: Schedule,
    newer: tuple[int, int],
    older: tuple[int, int],
    t: int,
) -> None:
    """Apply the paper's LIFO exchange at step ``t``.

    Move the older job's step-t resource to the newer job,
    compensating the older job in the steps the newer job surrenders
    afterwards.  Crossing-freeness guarantees ``C(older) >= C(newer)``,
    so the compensation always lands while the older job is
    unfinished.  Per-step totals are conserved.
    """
    ia, ja = newer
    ib, jb = older
    later_newer = _remaining_after(sched, instance, ia, ja, t)
    x = min(w[t][ib], later_newer)
    if x <= ZERO:  # pragma: no cover - callers guarantee x > 0
        raise SolverError("LIFO exchange stalled")
    w[t][ib] -= x
    w[t][ia] += x
    xx = x
    t2 = t + 1
    while xx > ZERO and t2 < len(w):
        if sched.active_job(t2, ia) == ja and w[t2][ia] > ZERO:
            take = min(xx, w[t2][ia])
            w[t2][ia] -= take
            w[t2][ib] += take
            xx -= take
        t2 += 1
    if xx > ZERO:  # pragma: no cover - conservation guarantees 0
        raise SolverError("LIFO exchange lost work")


def _fixpoint_round(instance: Instance, w: list[list[Fraction]]) -> None:
    """One round of all Lemma 1 passes.

    1. non-wasting pass (pull work earlier into spare capacity);
    2. crossing elimination (no S(A) < S(B) < C(A) < C(B));
    3. progressive pass: per step, among jobs *running* and unfinished,
       keep at most one -- exchange toward the earliest-completing one;
    4. nested repair: eliminate remaining Definition 4 witnesses, which
       may involve a newer job that is in progress but *idle* at the
       step (prefer it over the older runner).
    """
    from .properties import nested_violations

    _non_wasting_pass(instance, w)
    _eliminate_crossings(instance, w, min_start=-1)

    T = len(w)
    for t in range(T):
        for _ in range(_MAX_PASSES):
            sched = _replay(instance, w)
            partials = [
                (i, j)
                for i, j in sched.active_jobs(t)
                if sched.step(t).processed[i] > ZERO
                and sched.completion_step(i, j) > t
            ]
            if len(partials) <= 1:
                break
            # Keep the job with the smallest completion time running.
            keep = min(partials, key=lambda jid: sched.completion_step(*jid))
            other = next(jid for jid in partials if jid != keep)
            _lifo_exchange(instance, w, sched, keep, other, t)
            # Shrinking a completion time can create crossings after t.
            _eliminate_crossings(instance, w, min_start=t)
        else:  # pragma: no cover
            raise SolverError("progressive pass did not converge")

    for _ in range(_MAX_PASSES):
        sched = _replay(instance, w)
        violations = nested_violations(sched)
        if not violations:
            return
        older, newer, t = violations[0]
        _lifo_exchange(instance, w, sched, newer, older, t)
        _eliminate_crossings(instance, w, min_start=t)
    raise SolverError("nested repair did not converge")  # pragma: no cover
