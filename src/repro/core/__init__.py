"""Core model of the CRSharing problem (Section 3 of the paper).

This subpackage contains the problem/solution data model (instances,
jobs, schedules), the authoritative step-execution semantics, the
structural schedule properties of Section 4.1, the Lemma 1
normalization transforms, the scheduling hypergraph of Section 3.2,
and the lower bounds used throughout the analysis.
"""

from .checkpoint import (
    KernelCheckpoint,
    checkpoint_run,
    restore_observers,
    restore_runtime,
)
from .continuous import (
    FluidPiece,
    FluidSchedule,
    continuous_greedy_balance,
    continuous_lower_bound,
)
from .hypergraph import Component, SchedulingGraph, build_scheduling_graph
from .instance import Instance
from .job import Job, JobId
from .kernel import (
    CompletionRecorder,
    ExactRuntime,
    KernelRuntime,
    ObjectiveRecorder,
    ShareRecorder,
    StepEvent,
    StepObserver,
    check_share_vector,
    run_kernel,
)
from .speed_scaling import SpeedScalingJob, completion_times_eq1, to_speed_scaling
from .lower_bounds import (
    best_lower_bound,
    lemma5_bound,
    lemma6_bound,
    length_bound,
    max_lateness_bound,
    tardiness_bound,
    theorem7_reference,
    weighted_flow_bound,
    work_bound,
)
from .numerics import (
    Num,
    as_float,
    format_frac,
    frac_ceil,
    frac_floor,
    frac_sum,
    parse_frac,
    to_frac,
    to_frac_seq,
)
from .properties import (
    balance_violations,
    check_proposition_1,
    check_proposition_2,
    is_balanced,
    is_nested,
    is_nice,
    is_non_wasting,
    is_progressive,
    nested_violations,
)
from .schedule import Schedule, StepExecution
from .simulator import PolicyFn, default_step_limit, run_policy, simulate
from .state import Configuration, ExecState, StepOutcome
from .transforms import make_nice, make_non_wasting

__all__ = [
    "CompletionRecorder",
    "Component",
    "Configuration",
    "KernelCheckpoint",
    "checkpoint_run",
    "restore_observers",
    "restore_runtime",
    "ExactRuntime",
    "ExecState",
    "KernelRuntime",
    "ObjectiveRecorder",
    "ShareRecorder",
    "StepEvent",
    "StepObserver",
    "check_share_vector",
    "run_kernel",
    "FluidPiece",
    "FluidSchedule",
    "Instance",
    "Job",
    "JobId",
    "SpeedScalingJob",
    "completion_times_eq1",
    "continuous_greedy_balance",
    "continuous_lower_bound",
    "to_speed_scaling",
    "Num",
    "PolicyFn",
    "Schedule",
    "SchedulingGraph",
    "StepExecution",
    "StepOutcome",
    "as_float",
    "balance_violations",
    "best_lower_bound",
    "build_scheduling_graph",
    "check_proposition_1",
    "check_proposition_2",
    "default_step_limit",
    "format_frac",
    "frac_ceil",
    "frac_floor",
    "frac_sum",
    "is_balanced",
    "is_nested",
    "is_nice",
    "is_non_wasting",
    "is_progressive",
    "lemma5_bound",
    "lemma6_bound",
    "length_bound",
    "make_nice",
    "make_non_wasting",
    "max_lateness_bound",
    "tardiness_bound",
    "weighted_flow_bound",
    "nested_violations",
    "parse_frac",
    "run_policy",
    "simulate",
    "theorem7_reference",
    "to_frac",
    "to_frac_seq",
    "work_bound",
]
