"""Scheduling hypergraphs (Section 3.2).

For a schedule ``S`` of a unit-size instance, the scheduling hypergraph
``H_S = (V, E)`` has one node per job, weighted by its resource
requirement, and one hyperedge per time step containing the jobs active
in that step.  Its connected components carry the structural
information driving the (2 - 1/m) analysis:

* Observation 2: each component's edges are consecutive time steps, so
  components are totally ordered "left to right";
* Definition 1: the *class* ``q_k`` of component ``C_k`` is the size of
  its first edge -- an upper bound on the parallelism available inside
  the component;
* Lemma 2: for balanced, non-wasting, progressive schedules,
  ``|C_k| >= #_k + q_k - 1`` for every non-final component and
  ``|C_N| >= #_N`` for the final one.

The module builds these objects from any :class:`Schedule` and exposes
:class:`Component` records used by the Lemma 5/6 lower bounds and the
Theorem 7 accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator

import networkx as nx

from ..exceptions import UnitSizeRequiredError
from .job import JobId
from .schedule import Schedule

__all__ = ["Component", "SchedulingGraph", "build_scheduling_graph"]


@dataclass(frozen=True, slots=True)
class Component:
    """One connected component of the scheduling graph.

    Attributes:
        index: 0-based component index in left-to-right order (the
            paper's ``k``, shifted by one).
        nodes: the jobs in the component (``C_k``).
        first_step: first time step (0-based) whose edge lies in the
            component.
        num_edges: the paper's ``#_k``.
        klass: the paper's class ``q_k`` -- the size of the first edge.
    """

    index: int
    nodes: frozenset[JobId]
    first_step: int
    num_edges: int
    klass: int

    @property
    def num_nodes(self) -> int:
        """``|C_k|``."""
        return len(self.nodes)

    @property
    def last_step(self) -> int:
        """Last time step whose edge lies in the component.

        Components cover consecutive steps (Observation 2).
        """
        return self.first_step + self.num_edges - 1


class SchedulingGraph:
    """The hypergraph ``H_S`` of a schedule, with component structure."""

    __slots__ = ("schedule", "edges", "components", "_component_of")

    def __init__(self, schedule: Schedule) -> None:
        if not schedule.instance.is_unit_size:
            raise UnitSizeRequiredError(
                "scheduling hypergraphs are defined for unit-size jobs "
                "(Section 3.2)"
            )
        self.schedule = schedule
        #: ``edges[t]`` is the hyperedge ``e_{t+1}`` of the paper.
        self.edges: list[tuple[JobId, ...]] = [
            schedule.active_jobs(t) for t in range(schedule.makespan)
        ]
        self.components: list[Component] = []
        self._component_of: dict[JobId, int] = {}
        self._build_components()

    # ------------------------------------------------------------------
    def _build_components(self) -> None:
        # Union-find over jobs; each hyperedge merges its members.
        parent: dict[JobId, JobId] = {}

        def find(x: JobId) -> JobId:
            """Union-find root of *x* with path compression."""
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        def union(a: JobId, b: JobId) -> None:
            """Merge the components of *a* and *b*."""
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        for (jid, _job) in self.schedule.instance.jobs():
            parent[jid] = jid
        # Steps with no active job (possible only while waiting for an
        # arrival in the release-time extension) contribute no edge.
        for edge in self.edges:
            for other in edge[1:]:
                union(edge[0], other)

        # Group edges and nodes by root; order components by first step.
        root_first_step: dict[JobId, int] = {}
        root_edges: dict[JobId, int] = {}
        for t, edge in enumerate(self.edges):
            if not edge:
                continue
            root = find(edge[0])
            root_first_step.setdefault(root, t)
            root_edges[root] = root_edges.get(root, 0) + 0 + 1
        root_nodes: dict[JobId, set[JobId]] = {}
        for jid in parent:
            root_nodes.setdefault(find(jid), set()).add(jid)

        ordered_roots = sorted(root_first_step, key=root_first_step.get)
        for k, root in enumerate(ordered_roots):
            first = root_first_step[root]
            comp = Component(
                index=k,
                nodes=frozenset(root_nodes[root]),
                first_step=first,
                num_edges=root_edges[root],
                klass=len(self.edges[first]),
            )
            self.components.append(comp)
            for jid in comp.nodes:
                self._component_of[jid] = k

        # Nodes never active in any edge cannot exist in a complete
        # schedule of a valid instance (every job is active at least in
        # its completion step), but guard for isolated roots anyway.
        uncovered = set(parent) - set(self._component_of)
        assert not uncovered, f"jobs missing from all edges: {uncovered}"

    # ------------------------------------------------------------------
    @property
    def num_components(self) -> int:
        """The paper's ``N``."""
        return len(self.components)

    def component_of(self, job: JobId) -> Component:
        """The connected component containing *job*."""
        return self.components[self._component_of[job]]

    def __iter__(self) -> Iterator[Component]:
        return iter(self.components)

    def node_weight(self, job: JobId) -> Fraction:
        """The node weight -- the job's resource requirement."""
        return self.schedule.instance.job(*job).requirement

    # ------------------------------------------------------------------
    # Structural checks (used by the test-suite)
    # ------------------------------------------------------------------
    def edges_of(self, component: Component) -> list[tuple[JobId, ...]]:
        """The hyperedges of *component*'s consecutive step block."""
        return self.edges[component.first_step : component.last_step + 1]

    def check_observation_2(self) -> bool:
        """Check Observation 2 on this schedule's hypergraph.

        Every component's edges form a consecutive block of time
        steps, and each edge lies inside one component.
        """
        for comp in self.components:
            for t in range(comp.first_step, comp.last_step + 1):
                if not set(self.edges[t]) <= comp.nodes:
                    return False
            # No edge outside the block may touch the component.
            for t, edge in enumerate(self.edges):
                inside = comp.first_step <= t <= comp.last_step
                if not inside and set(edge) & comp.nodes:
                    return False
        return True

    def check_classes_decreasing(self) -> bool:
        """Check the class structure stated after Definition 1.

        Classes ``q_k`` are non-increasing left to right, and edge
        sizes within a component never exceed its class (balanced
        schedules).
        """
        classes = [c.klass for c in self.components]
        if any(a < b for a, b in zip(classes, classes[1:])):
            return False
        for comp in self.components:
            if any(len(e) > comp.klass for e in self.edges_of(comp)):
                return False
        return True

    def check_lemma_2(self) -> bool:
        """Check Lemma 2 for balanced schedules.

        ``|C_k| >= #_k + q_k - 1`` for ``k < N`` and ``|C_N| >= #_N``
        (non-wasting, progressive schedules).
        """
        for comp in self.components:
            if comp.index < self.num_components - 1:
                if comp.num_nodes < comp.num_edges + comp.klass - 1:
                    return False
            else:
                if comp.num_nodes < comp.num_edges:
                    return False
        return True

    def mean_edges_per_component(self) -> Fraction:
        """The Theorem 7 quantity ``#_∅``.

        Average edge count over components (equals ``makespan / N``).
        """
        return Fraction(self.schedule.makespan, self.num_components)

    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        """Clique expansion of the hypergraph as a ``networkx`` graph.

        Nodes carry ``weight`` (the requirement) and ``component``
        attributes; edges carry the list of time steps whose hyperedge
        contains both endpoints.  Clique expansion preserves
        connectivity, so ``nx.connected_components`` agrees with
        :attr:`components`.
        """
        g = nx.Graph()
        for (jid, job) in self.schedule.instance.jobs():
            g.add_node(jid, weight=job.requirement, component=self._component_of[jid])
        for t, edge in enumerate(self.edges):
            for a_idx in range(len(edge)):
                for b_idx in range(a_idx + 1, len(edge)):
                    a, b = edge[a_idx], edge[b_idx]
                    if g.has_edge(a, b):
                        g.edges[a, b]["steps"].append(t)
                    else:
                        g.add_edge(a, b, steps=[t])
        return g


def build_scheduling_graph(schedule: Schedule) -> SchedulingGraph:
    """Convenience constructor for :class:`SchedulingGraph`."""
    return SchedulingGraph(schedule)
