"""Continuous-time CRSharing (the Section 9 outlook).

The paper closes by asking what happens when the scheduler may act at
*arbitrary* times instead of discrete steps.  This module implements
that variant as an event-driven fluid model:

* a **fluid schedule** is a piecewise-constant rate assignment
  ``x_i(t) in [0, r_(active job)]`` with ``sum_i x_i(t) <= 1``;
* :func:`continuous_lower_bound` generalizes the paper's two bounds:
  the resource still processes at most one unit of work per unit time
  (Observation 1 verbatim), and a processor running its chain at full
  speed needs :math:`L_i = \\sum_j p_{ij}` time (the continuous analog
  of the length bound -- note *no* rounding to whole steps);
* :func:`continuous_greedy_balance` is GreedyBalance's fluid twin:
  between events it water-fills rates by (remaining jobs, remaining
  work) priority and jumps to the next job completion.

Facts the test-suite checks (all empirical claims kept honest):

* every fluid schedule respects the lower bound, and any *discrete*
  schedule embeds as a fluid one, so ``OPT_cont <= OPT_disc``;
* greedy-vs-greedy has **no** fixed order: continuous GreedyBalance can
  be *worse* than its discrete twin (observed on random instances) --
  the discrete grid synchronizes completions in the greedy rule's
  favor, an effect the paper's step-based model bakes in;
* the lower bound is *not* always achievable: sequential per-processor
  chains with small-cap prefixes force idle capacity (e.g. two chains
  ``[r=1/10, r=1]`` yield bound 2.2 but true continuous optimum 3) --
  the continuous problem inherits the discrete one's difficulty, which
  is exactly the paper's closing point.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..exceptions import SimulationLimitError
from .instance import Instance
from .job import JobId
from .numerics import ONE, ZERO, frac_sum

__all__ = [
    "FluidPiece",
    "FluidSchedule",
    "continuous_lower_bound",
    "continuous_greedy_balance",
]


@dataclass(frozen=True, slots=True)
class FluidPiece:
    """One constant-rate segment of a fluid schedule.

    Attributes:
        start: segment start time (exact rational).
        end: segment end time.
        rates: per-processor processing rate during the segment.
    """

    start: Fraction
    end: Fraction
    rates: tuple[Fraction, ...]

    @property
    def duration(self) -> Fraction:
        """Length of the segment (``end - start``)."""
        return self.end - self.start


@dataclass(slots=True)
class FluidSchedule:
    """A piecewise-constant continuous-time schedule.

    Attributes:
        instance: the instance it solves.
        pieces: contiguous segments covering ``[0, makespan]``.
        completion_times: exact completion time per job.
    """

    instance: Instance
    pieces: list[FluidPiece]
    completion_times: dict[JobId, Fraction]

    @property
    def makespan(self) -> Fraction:
        """End time of the last segment (0 for an empty schedule)."""
        return self.pieces[-1].end if self.pieces else ZERO

    def validate(self) -> None:
        """Check feasibility of the fluid schedule.

        Contiguous pieces, rate caps, capacity, and exact work
        conservation per job.

        Raises:
            AssertionError: on any violation (used by tests).
        """
        inst = self.instance
        m = inst.num_processors
        clock = ZERO
        done = [0] * m
        left = [inst.job(i, 0).work for i in range(m)]
        for piece in self.pieces:
            assert piece.start == clock, "pieces must be contiguous"
            assert piece.end > piece.start, "pieces must have positive length"
            assert frac_sum(piece.rates) <= ONE, "capacity exceeded"
            clock = piece.end
            for i in range(m):
                rate = piece.rates[i]
                assert rate >= ZERO
                if rate == ZERO:
                    continue
                assert done[i] < inst.num_jobs(i), "rate for a finished chain"
                job = inst.job(i, done[i])
                assert rate <= job.requirement, "per-job speed cap violated"
                work = rate * piece.duration
                assert work <= left[i], "job overprocessed within one piece"
                left[i] -= work
                if left[i] == ZERO:
                    jid = (i, done[i])
                    assert self.completion_times[jid] == piece.end
                    done[i] += 1
                    if done[i] < inst.num_jobs(i):
                        left[i] = inst.job(i, done[i]).work
        for i in range(m):
            assert done[i] == inst.num_jobs(i), f"processor {i} unfinished"


def continuous_lower_bound(instance: Instance) -> Fraction:
    """The continuous-time makespan lower bound.

    ``max(total work, max_i sum_j p_ij)`` -- both Observation 1 and
    the full-speed chain length survive the passage to continuous time
    (without any rounding).
    """
    chain = max(
        frac_sum(job.size for job in queue) for queue in instance.queues
    )
    return max(instance.total_work(), chain)


def continuous_greedy_balance(
    instance: Instance, *, max_events: int | None = None
) -> FluidSchedule:
    """Event-driven continuous GreedyBalance.

    Between consecutive job completions the rate vector is constant:
    processors are water-filled in (more remaining jobs, larger
    remaining work, index) priority, each receiving up to its active
    job's requirement.  The next event is the earliest completion at
    those rates; rates are then recomputed.  All event times are exact
    rationals.

    Raises:
        SimulationLimitError: if the event limit is exceeded (cannot
            happen for valid instances: every event completes a job).
    """
    m = instance.num_processors
    limit = 2 * instance.total_jobs + 4 if max_events is None else max_events
    done = [0] * m
    left = [instance.job(i, 0).work for i in range(m)]
    clock = ZERO
    pieces: list[FluidPiece] = []
    completions: dict[JobId, Fraction] = {}

    def remaining_jobs(i: int) -> int:
        """Unfinished jobs on processor *i* at the current event."""
        return instance.num_jobs(i) - done[i]

    events = 0
    while any(done[i] < instance.num_jobs(i) for i in range(m)):
        events += 1
        if events > limit:
            raise SimulationLimitError(
                f"fluid simulation exceeded {limit} events"
            )
        active = [i for i in range(m) if done[i] < instance.num_jobs(i)]
        order = sorted(
            active, key=lambda i: (-remaining_jobs(i), -left[i], i)
        )
        rates = [ZERO] * m
        capacity = ONE
        for i in order:
            if capacity <= ZERO:
                break
            cap = instance.job(i, done[i]).requirement
            give = min(cap, capacity)
            rates[i] = give
            capacity -= give

        # Zero-work jobs (requirement 0) complete instantly; handle
        # them as zero-duration events.
        instant = [i for i in active if left[i] == ZERO]
        if instant:
            for i in instant:
                completions[(i, done[i])] = clock
                done[i] += 1
                if done[i] < instance.num_jobs(i):
                    left[i] = instance.job(i, done[i]).work
            continue

        if all(r == ZERO for r in rates):  # pragma: no cover - r>0 here
            raise SimulationLimitError("fluid simulation stalled")

        # Earliest completion at the current rates.
        horizon = min(
            left[i] / rates[i] for i in active if rates[i] > ZERO
        )
        end = clock + horizon
        pieces.append(FluidPiece(clock, end, tuple(rates)))
        for i in active:
            if rates[i] == ZERO:
                continue
            left[i] -= rates[i] * horizon
            if left[i] == ZERO:
                completions[(i, done[i])] = end
                done[i] += 1
                if done[i] < instance.num_jobs(i):
                    left[i] = instance.job(i, done[i]).work
        clock = end

    return FluidSchedule(
        instance=instance, pieces=pieces, completion_times=completions
    )
