"""Lower bounds on the optimal makespan.

Four bounds from the paper:

* **Observation 1**: the shared resource processes at most one unit of
  total work per step, so ``OPT >= ceil(sum r_ij * p_ij)``.
* **Trivial parallelism bound**: a processor finishes at most one job
  per step, so ``OPT >= n`` (the longest job sequence).
* **Lemma 5** (needs a *non-wasting* schedule's hypergraph): every
  non-final edge of every component consumes the full resource, so
  ``OPT >= sum_k (#_k - 1)``.
* **Lemma 6** (needs a *balanced* schedule's hypergraph):
  ``OPT >= n >= sum_{k<N} |C_k| / q_k + |C_N| / m``.

The schedule-derived bounds are certificates: they are lower bounds on
*any* schedule's makespan, computed from the structure of one given
schedule.  Theorem 7's proof combines them; the test-suite checks them
against exact optima.
"""

from __future__ import annotations

from fractions import Fraction

from .hypergraph import SchedulingGraph
from .instance import Instance
from .numerics import frac_ceil
from .schedule import Schedule

__all__ = [
    "work_bound",
    "length_bound",
    "lemma5_bound",
    "lemma6_bound",
    "theorem7_reference",
    "best_lower_bound",
    "weighted_flow_bound",
    "tardiness_bound",
    "max_lateness_bound",
]


def work_bound(instance: Instance) -> int:
    """Observation 1: ``ceil`` of the total work.

    :math:`\\sum_{i,j} r_{ij} p_{ij}` resource-time must fit into
    unit-capacity steps.
    """
    return instance.work_lower_bound()


def length_bound(instance: Instance) -> int:
    """``n`` -- each processor finishes at most one job per step.

    Stated for unit-size jobs; for general sizes each job ``(i,j)``
    still needs at least ``ceil(p_ij)`` steps, so we sum those per
    processor and take the maximum, which degenerates to ``n`` in the
    unit case.
    """
    best = 0
    for i in range(instance.num_processors):
        steps = sum(job.steps_at_full_speed() for job in instance.queues[i])
        best = max(best, steps)
    return best


def lemma5_bound(graph: SchedulingGraph) -> int:
    """Lemma 5's component bound for nice schedules.

    ``sum_k (#_k - 1)`` over the components of a
    *non-wasting* schedule's hypergraph.

    The caller is responsible for the non-wasting hypothesis (our
    policy implementations produce non-wasting schedules by
    construction; :func:`repro.core.properties.is_non_wasting` checks).
    """
    return sum(comp.num_edges - 1 for comp in graph.components)


def lemma6_bound(graph: SchedulingGraph) -> Fraction:
    """Lemma 6's class-size bound for balanced schedules.

    ``sum_{k<N} |C_k|/q_k + |C_N|/m`` for a *balanced*
    schedule's hypergraph.  Returns the exact rational; since OPT is an
    integer, ``ceil`` of the returned value is also a valid bound.
    """
    m = graph.schedule.instance.num_processors
    total = Fraction(0)
    comps = graph.components
    for comp in comps[:-1]:
        total += Fraction(comp.num_nodes, comp.klass)
    total += Fraction(comps[-1].num_nodes, m)
    return total


def theorem7_reference(graph: SchedulingGraph) -> Fraction:
    """The reference quantity the Theorem 7 proof bounds against.

    The proof splits on ``OPT >= n + 1`` vs ``OPT = n``:

    * case 1 establishes ``S <= (2 - 1/m) * max(LB_5, LB_6 + 1)``
      (its Eq. (12) divides by the Lemma 6 certificate *plus one*);
    * case 2 establishes ``S <= (2 - 1/m) * n`` directly.

    Hence ``S <= (2 - 1/m) * max(LB_5, LB_6 + 1, n)`` holds for every
    balanced, non-wasting, progressive schedule ``S`` -- that is the
    machine-checkable form used by the THM7 experiment and the
    property tests.  Note this reference is *not* itself a lower bound
    on OPT (the ``LB_6 + 1`` term is only valid in case 1); use
    :func:`best_lower_bound` for certificates.
    """
    instance = graph.schedule.instance
    return max(
        Fraction(lemma5_bound(graph)),
        lemma6_bound(graph) + 1,
        Fraction(length_bound(instance)),
    )


def weighted_flow_bound(instance: Instance) -> Fraction:
    """Lower bound on the weighted flow time :math:`F_w`.

    Job ``(i, j)`` cannot complete before its earliest completion time
    (:meth:`~repro.core.instance.Instance.earliest_completion_times`:
    release plus in-order full-speed processing), so its flow
    ``C - releases[i]`` is at least that time minus the release.  The
    weighted sum of these per-job certificates bounds :math:`F_w` for
    every feasible schedule; with unit weights and no releases it
    degenerates to ``sum_i n_i (n_i + 1) / 2`` for unit jobs.
    """
    earliest = instance.earliest_completion_times()
    total = Fraction(0)
    for jid, job in instance.jobs():
        total += job.weight * (earliest[jid] - instance.release(jid[0]))
    return total


def tardiness_bound(instance: Instance) -> Fraction:
    """Lower bound on the weighted total tardiness :math:`\\sum w \\, max(0, C - d)`.

    Uses the same per-job earliest completion certificates: a job with
    deadline ``d`` is late by at least ``max(0, earliest - d)`` in any
    feasible schedule.  0 when every deadline is achievable per-processor
    (the usual case -- contention can still force lateness above it).
    """
    earliest = instance.earliest_completion_times()
    total = Fraction(0)
    for jid, job in instance.jobs():
        if job.deadline is not None and earliest[jid] > job.deadline:
            total += job.weight * (earliest[jid] - job.deadline)
    return total


def max_lateness_bound(instance: Instance) -> int:
    """Lower bound on the maximum lateness :math:`L_{max} = max (C - d)`.

    The per-job earliest completion certificates give
    ``L_max >= max_j (earliest_j - d_j)`` (possibly negative when all
    deadlines are loose).  Instances without deadlines report 0, the
    value the lateness objectives assign them.
    """
    best: int | None = None
    earliest = instance.earliest_completion_times()
    for jid, job in instance.jobs():
        if job.deadline is not None:
            late = earliest[jid] - job.deadline
            best = late if best is None else max(best, late)
    return 0 if best is None else best


def best_lower_bound(instance: Instance, schedule: Schedule | None = None) -> int:
    """The strongest available integer lower bound on OPT.

    Always includes Observation 1 and the length bound; when a
    *schedule* is supplied (expected: a balanced, non-wasting one such
    as GreedyBalance's output on a unit-size instance) the Lemma 5 and
    Lemma 6 certificates are added.
    """
    bound = max(
        work_bound(instance),
        length_bound(instance),
        instance.makespan_lower_bound(),
    )
    # Lemma 5/6 certify static schedules; their waste accounting does
    # not transfer to runs with waiting windows before arrivals.
    if schedule is not None and instance.is_unit_size and not instance.has_releases:
        graph = SchedulingGraph(schedule)
        bound = max(bound, lemma5_bound(graph), frac_ceil(lemma6_bound(graph)))
    return bound
