"""Execution state and configurations.

Two closely related state notions live here:

:class:`ExecState`
    The operational state of a running schedule: per processor, how
    many jobs are done and how much work the active job still needs.
    It implements the *single* authoritative step semantics (Eq. (1)/(2)
    of the paper) used by both :class:`~repro.core.schedule.Schedule`
    (offline replay) and :mod:`repro.core.simulator` (online policies).

:class:`Configuration`
    The paper's Definition 6: a vector
    ``(t, j_1..j_m, v_1..v_m)`` where ``j_i`` counts completed jobs and
    ``v_i`` is the resource already *spent* on the active job.  Used by
    the fixed-``m`` exact algorithm (Section 7) together with its
    *core*/*support* notions and the domination order of Lemma 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Sequence

from ..exceptions import CheckpointError
from .instance import Instance
from .job import JobId
from .numerics import ONE, ZERO, to_frac

__all__ = ["ExecState", "StepOutcome", "Configuration"]


@dataclass(frozen=True, slots=True)
class StepOutcome:
    """What happened during one executed step.

    Attributes:
        active: per processor, the job index processed (``None`` if the
            processor had no unfinished jobs).
        processed: per processor, work units processed this step.
        completed: jobs that finished during this step.
        started: jobs that received their first resource this step
            (zero-work jobs count as started when they become active).
    """

    active: tuple[int | None, ...]
    processed: tuple[Fraction, ...]
    completed: tuple[JobId, ...]
    started: tuple[JobId, ...]


class ExecState:
    """Mutable execution state of a CRSharing run.

    The semantics implemented by :meth:`apply` follow Section 3.1:

    * each processor works on its first unfinished job only;
    * the work processed in a step is
      ``min(share, requirement, remaining_work)`` -- the requirement
      caps the useful speed (granting more than ``r_ij`` does not help)
      and a processor cannot start its next job within the same step;
    * a job whose remaining work reaches zero completes in that step;
      the successor job becomes active at the *next* step;
    * a processor with a non-zero release time is *inactive* until its
      release step: it cannot be worked on, and shares granted to it
      are wasted.  With all release times 0 (the paper's static model)
      this clause never triggers.

    Multi-resource instances (``k > 1``) use the same state with
    *matrix* share input: :meth:`apply` then expects ``k`` share rows
    (one per resource), a job's speed is set by its bottleneck
    resource (``min_l s_l / r_l``, capped at full speed), and
    ``remaining`` tracks work in bottleneck resource-time units.
    :attr:`resource_spent` accounts the resource-time actually
    consumed per resource in either mode.
    """

    __slots__ = (
        "instance",
        "t",
        "done",
        "remaining",
        "resource_spent",
        "_started",
        "_releases",
        "_k",
    )

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self.t = 0
        self.done = [0] * instance.num_processors
        self.remaining = [instance.job(i, 0).work for i in range(instance.num_processors)]
        #: Cumulative resource-time consumed per shared resource (the
        #: "spent" ledger; one entry per resource, k=1 has exactly one).
        self.resource_spent: list[Fraction] = [ZERO] * instance.num_resources
        self._started: set[JobId] = set()
        # None for static instances keeps the hot-path checks cheap.
        self._releases = instance.releases if instance.has_releases else None
        self._k = instance.num_resources

    # ------------------------------------------------------------------
    # Read-only views used by policies
    # ------------------------------------------------------------------
    @property
    def num_processors(self) -> int:
        """``m`` -- the number of processors."""
        return self.instance.num_processors

    def jobs_remaining(self, processor: int) -> int:
        """``n_i(t)`` -- unfinished jobs on *processor*."""
        return self.instance.num_jobs(processor) - self.done[processor]

    def is_active(self, processor: int) -> bool:
        """Released and with unfinished jobs (workable this step)."""
        if self._releases is not None and self.t < self._releases[processor]:
            return False
        return self.done[processor] < self.instance.num_jobs(processor)

    def is_released(self, processor: int) -> bool:
        """True once *processor*'s release time has arrived.

        Always True in the static model.
        """
        return self._releases is None or self.t >= self._releases[processor]

    def active_processors(self) -> list[int]:
        """Indices of all currently workable processors, ascending."""
        return [i for i in range(self.num_processors) if self.is_active(i)]

    @property
    def waiting(self) -> bool:
        """True iff some pending processor has not been released yet.

        Global zero-progress steps are then legitimate: time advances
        toward the next arrival.
        """
        if self._releases is None:
            return False
        return any(
            self.t < self._releases[i]
            and self.done[i] < self.instance.num_jobs(i)
            for i in range(self.num_processors)
        )

    def active_job(self, processor: int) -> int | None:
        """Index of the first unfinished job, or None if inactive."""
        if not self.is_active(processor):
            return None
        return self.done[processor]

    def remaining_work(self, processor: int) -> Fraction:
        """Remaining work (:math:`\\tilde p` units) of the active job.

        0 if the processor has finished everything.
        """
        if not self.is_active(processor):
            return ZERO
        return self.remaining[processor]

    def remaining_requirement(self, processor: int) -> Fraction:
        """The paper's *remaining resource requirement* of the active job.

        For unit-size jobs this equals :meth:`remaining_work`; kept as
        a separate name so policy code reads like the paper.
        """
        return self.remaining_work(processor)

    @property
    def all_done(self) -> bool:
        """True iff every job on every processor has finished.

        An unreleased processor with pending jobs is *not* done,
        merely inactive.
        """
        inst = self.instance
        return all(
            self.done[i] >= inst.num_jobs(i) for i in range(self.num_processors)
        )

    def snapshot(self) -> tuple[int, tuple[int, ...], tuple[Fraction, ...]]:
        """Hashable progress snapshot (used for stall detection)."""
        return (self.t, tuple(self.done), tuple(self.remaining))

    # ------------------------------------------------------------------
    # Snapshot / resume (the checkpoint layer, :mod:`repro.core.checkpoint`)
    # ------------------------------------------------------------------
    def capture(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the mutable execution state.

        Fractions are encoded as exact ``"p/q"`` strings (integers stay
        bare-looking but round-trip through :class:`~fractions.Fraction`
        losslessly), so :meth:`restore` reproduces the state
        bit-identically.  The immutable instance is *not* part of the
        payload; :class:`~repro.core.checkpoint.KernelCheckpoint`
        carries it alongside.
        """
        return {
            "t": self.t,
            "done": list(self.done),
            "remaining": [str(x) for x in self.remaining],
            "resource_spent": [str(x) for x in self.resource_spent],
            "started": sorted([i, j] for (i, j) in self._started),
        }

    def restore(self, data: dict[str, Any]) -> None:
        """Overwrite this state from a :meth:`capture` payload.

        The payload may describe *fewer* processors than this state's
        instance (the service layer restores into an **extended**
        instance whose new queues keep their freshly-initialized
        state); every described processor is validated against the
        instance this state was built over.

        Raises:
            CheckpointError: on malformed payloads or any
                inconsistency with the instance (counts out of range,
                remaining work exceeding the active job's work, or a
                resource-ledger arity mismatch).
        """
        inst = self.instance
        m = inst.num_processors
        try:
            t = int(data["t"])
            done = [int(x) for x in data["done"]]
            remaining = [to_frac(x) for x in data["remaining"]]
            spent = [to_frac(x) for x in data["resource_spent"]]
            started = {(int(i), int(j)) for i, j in data["started"]}
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed exact state payload: {exc}") from exc
        if t < 0:
            raise CheckpointError(f"negative step counter {t}")
        if not len(done) == len(remaining) <= m:
            raise CheckpointError(
                f"state payload describes {len(done)} processors "
                f"(remaining rows: {len(remaining)}) for an instance "
                f"with {m}"
            )
        if len(spent) != inst.num_resources:
            raise CheckpointError(
                f"resource ledger has {len(spent)} entries for "
                f"{inst.num_resources} shared resource(s)"
            )
        for i, (d, rem) in enumerate(zip(done, remaining)):
            n_i = inst.num_jobs(i)
            if not 0 <= d <= n_i:
                raise CheckpointError(
                    f"done[{i}]={d} out of range 0..{n_i}"
                )
            if d < n_i:
                work = inst.job(i, d).work
                if not ZERO <= rem <= work:
                    raise CheckpointError(
                        f"remaining[{i}]={rem} outside [0, {work}] for "
                        f"active job ({i}, {d})"
                    )
            elif rem != ZERO:
                raise CheckpointError(
                    f"remaining[{i}]={rem} nonzero but processor {i} "
                    "has finished every job"
                )
        for i, j in started:
            if not (0 <= i < m and 0 <= j < inst.num_jobs(i)):
                raise CheckpointError(f"started job ({i}, {j}) does not exist")
        self.t = t
        self.done[: len(done)] = done
        self.remaining[: len(remaining)] = remaining
        self.resource_spent = spent
        self._started = started

    # ------------------------------------------------------------------
    # Step semantics
    # ------------------------------------------------------------------
    def apply(self, shares: Sequence[Fraction]) -> StepOutcome:
        """Execute one step with the given share vector (or matrix).

        For single-resource instances *shares* is one value per
        processor (the paper's :math:`R_i(t)`); for ``k > 1`` it is a
        sequence of ``k`` rows, one per resource.  The caller is
        responsible for feasibility checks (the simulator and
        :class:`~repro.core.schedule.Schedule` validate before
        calling).
        """
        if self._k != 1:
            return self._apply_multi(shares)
        inst = self.instance
        m = inst.num_processors
        active: list[int | None] = [None] * m
        processed: list[Fraction] = [ZERO] * m
        completed: list[JobId] = []
        started: list[JobId] = []
        releases = self._releases
        for i in range(m):
            j = self.done[i]
            if j >= inst.num_jobs(i):
                continue
            if releases is not None and self.t < releases[i]:
                continue  # not yet released: granted shares are wasted
            active[i] = j
            job = inst.job(i, j)
            speed = min(shares[i], job.requirement)
            work = min(speed, self.remaining[i])
            if work > ZERO and (i, j) not in self._started:
                self._started.add((i, j))
                started.append((i, j))
            processed[i] = work
            self.remaining[i] -= work
            if work > ZERO:
                self.resource_spent[0] += work
            if self.remaining[i] == ZERO:
                if (i, j) not in self._started:
                    self._started.add((i, j))
                    started.append((i, j))
                completed.append((i, j))
                self.done[i] += 1
                if self.done[i] < inst.num_jobs(i):
                    self.remaining[i] = inst.job(i, self.done[i]).work
        self.t += 1
        return StepOutcome(
            active=tuple(active),
            processed=tuple(processed),
            completed=tuple(completed),
            started=tuple(started),
        )

    def _apply_multi(self, rows: Sequence[Sequence[Fraction]]) -> StepOutcome:
        """Multi-resource step: *rows* holds ``k`` share rows.

        A job's speed is set by its bottleneck resource --
        ``min_l min(s_l, r_l) / r_l`` of full speed -- and the work
        bookkeeping stays in bottleneck resource-time units, so the
        ``k = 1`` semantics are the exact special case of this rule.
        """
        inst = self.instance
        m = inst.num_processors
        active: list[int | None] = [None] * m
        processed: list[Fraction] = [ZERO] * m
        completed: list[JobId] = []
        started: list[JobId] = []
        releases = self._releases
        for i in range(m):
            j = self.done[i]
            if j >= inst.num_jobs(i):
                continue
            if releases is not None and self.t < releases[i]:
                continue  # not yet released: granted shares are wasted
            active[i] = j
            job = inst.job(i, j)
            rstar = job.requirement
            if rstar == ZERO:
                work = ZERO
            else:
                fraction = ONE  # of full speed; bottleneck resource decides
                for lane, req in enumerate(job.requirements):
                    if req > ZERO:
                        granted = min(rows[lane][i], req) / req
                        if granted < fraction:
                            fraction = granted
                work = min(fraction * rstar, self.remaining[i])
            if work > ZERO and (i, j) not in self._started:
                self._started.add((i, j))
                started.append((i, j))
            processed[i] = work
            self.remaining[i] -= work
            if work > ZERO:
                progress = work / rstar
                spent = self.resource_spent
                for lane, req in enumerate(job.requirements):
                    if req > ZERO:
                        spent[lane] += progress * req
            if self.remaining[i] == ZERO:
                if (i, j) not in self._started:
                    self._started.add((i, j))
                    started.append((i, j))
                completed.append((i, j))
                self.done[i] += 1
                if self.done[i] < inst.num_jobs(i):
                    self.remaining[i] = inst.job(i, self.done[i]).work
        self.t += 1
        return StepOutcome(
            active=tuple(active),
            processed=tuple(processed),
            completed=tuple(completed),
            started=tuple(started),
        )


@dataclass(frozen=True, slots=True)
class Configuration:
    """Definition 6: the state of a schedule before a round.

    Attributes:
        t: the (0-based) number of steps already executed.
        completed: ``(j_1(t), ..., j_m(t))`` -- jobs completed per
            processor; the paper's *core*.
        spent: ``(v_1(t), ..., v_m(t))`` -- resource already spent on
            each processor's active job (0 if not started or no active
            job).
    """

    t: int
    completed: tuple[int, ...]
    spent: tuple[Fraction, ...]

    @property
    def core(self) -> tuple[int, ...]:
        """The paper's ``core(γ) = (j_1, ..., j_m)``."""
        return self.completed

    @property
    def support(self) -> tuple[int, ...]:
        """``supp(γ) = { i : v_i > 0 }``.

        The processors whose active job is partially processed.
        """
        return tuple(i for i, v in enumerate(self.spent) if v > ZERO)

    def dominates(self, other: "Configuration") -> bool:
        """Domination order used by Algorithm 2's pruning (Lemma 4).

        Equal or better in *every* component: no later, no fewer jobs
        done on any processor, and no less resource invested anywhere.
        """
        if self.t > other.t:
            return False
        if any(a < b for a, b in zip(self.completed, other.completed)):
            return False
        if any(a < b for a, b in zip(self.spent, other.spent)):
            return False
        return True

    def step_equal(self, other: "Configuration") -> bool:
        """Same round and same core (Definition 6's *step-equal*)."""
        return self.t == other.t and self.completed == other.completed

    @classmethod
    def initial(cls, instance: Instance) -> "Configuration":
        """The configuration before any step has executed."""
        m = instance.num_processors
        return cls(t=0, completed=(0,) * m, spent=(ZERO,) * m)

    def is_final(self, instance: Instance) -> bool:
        """True iff every job of *instance* is completed."""
        return all(
            self.completed[i] >= instance.num_jobs(i)
            for i in range(instance.num_processors)
        )
