"""The alternative model interpretation: speed scaling (Section 3.1).

The paper observes that CRSharing is equivalent to a *speed-scaling*
problem: think of job ``(i, j)`` as work volume
:math:`\\tilde p_{ij} = r_{ij} p_{ij}` on a variable-speed processor
whose speed at step ``t`` is the granted share ``R_i(t)``, subject to

* a **system speed budget**: :math:`\\sum_i R_i(t) \\le 1`, and
* a **per-job speed cap**: speed above :math:`r_{ij}` is wasted.

Under this reading the unit-size restriction becomes "every job is
processable in one step at its maximum speed" (:math:`\\tilde p = r`).

This module makes the equivalence executable: it converts instances to
the speed-scaling view, simulates a schedule under the Eq.-(1)
semantics (progress measured in *fractions of processing volume* at
speed :math:`\\min(R/r, 1)`) independently from the canonical Eq.-(2)
executor (progress in work units at speed :math:`\\min(R, r)`), and the
test-suite asserts both produce identical completion times -- the
paper's claimed equivalence, checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..exceptions import InvalidScheduleError
from .instance import Instance
from .job import JobId
from .numerics import ONE, ZERO
from .schedule import Schedule

__all__ = ["SpeedScalingJob", "to_speed_scaling", "completion_times_eq1"]


@dataclass(frozen=True, slots=True)
class SpeedScalingJob:
    """One job in the variable-speed view.

    Attributes:
        work: the volume :math:`\\tilde p = r \\cdot p` to process.
        max_speed: the cap :math:`r` (granting more does not help).
    """

    work: Fraction
    max_speed: Fraction

    @property
    def min_steps(self) -> int:
        """Steps needed at maximum speed.

        ``ceil(work / max_speed)``, i.e. ``ceil(p)``; 1 for unit-size
        jobs.
        """
        if self.max_speed == ZERO:
            return 1
        q = self.work / self.max_speed
        return -int((-q).__floor__())


def to_speed_scaling(instance: Instance) -> list[list[SpeedScalingJob]]:
    """The speed-scaling view of an instance.

    Per processor, the sequence of (work, max-speed) pairs.
    """
    return [
        [SpeedScalingJob(job.work, job.requirement) for job in queue]
        for queue in instance.queues
    ]


def completion_times_eq1(instance: Instance, schedule: Schedule) -> dict[JobId, int]:
    """Completion steps computed through the paper's Eq. (1).

    Progress is accumulated as *fractions of the processing volume*:
    job ``(i, j)`` is done at the first step ``t2`` with
    :math:`\\sum_{t=t1}^{t2} \\min(R_i(t)/r_{ij}, 1) \\ge p_{ij}`.
    This is an independent re-derivation of the completion bookkeeping
    (the canonical executor uses Eq. (2)); the equivalence asserted by
    Section 3.1 means the result must agree with
    ``schedule.completion_steps`` whenever all requirements are
    positive.

    Zero-requirement jobs are handled as in the canonical semantics
    (they complete in the step they become active).

    Raises:
        InvalidScheduleError: if the shares do not complete all jobs.
    """
    m = instance.num_processors
    current = [0] * m
    #: volume fraction still to process for the active job
    left = [instance.job(i, 0).size for i in range(m)]
    out: dict[JobId, int] = {}

    for t in range(schedule.makespan):
        for i in range(m):
            j = current[i]
            if j >= instance.num_jobs(i):
                continue
            job = instance.job(i, j)
            if job.requirement == ZERO:
                # Degenerate r = 0 (Eq. (2) is stated for r > 0): zero
                # work completes in its activation step, matching the
                # canonical semantics.
                progress = left[i]
            else:
                speed = min(schedule.share(t, i) / job.requirement, ONE)
                progress = min(speed, left[i])
            left[i] -= progress
            if left[i] == ZERO:
                out[(i, j)] = t
                current[i] += 1
                if current[i] < instance.num_jobs(i):
                    left[i] = instance.job(i, current[i]).size

    for i in range(m):
        if current[i] < instance.num_jobs(i):
            raise InvalidScheduleError(
                f"Eq. (1) replay leaves processor {i} unfinished"
            )
    return out
