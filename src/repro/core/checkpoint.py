"""Snapshot / resume for kernel runs (the checkpoint layer).

A :class:`KernelCheckpoint` freezes a run at a clean step boundary:
the remaining work of every active job, the per-resource spent
ledgers, the step counter, and the state of any stateful observers
(:meth:`repro.core.kernel.StepObserver.capture_state`).  Restoring it
yields a runtime that continues **bit-identically** to the
uninterrupted run on both backends -- the round-trip suite in
``tests/core/test_checkpoint.py`` pins this across every policy,
``k``, arrivals, weights and deadlines.

Checkpoints serialize to JSON (rationals as exact ``"p/q"`` strings,
floats via ``repr`` round-tripping) with a format/version tag and a
SHA-256 digest; corrupted or version-skewed documents raise the typed
:class:`~repro.exceptions.CheckpointError` instead of restoring
garbage.

Suspend-and-resume composes with :func:`~repro.core.kernel.run_kernel`
through its ``stop`` predicate:

    >>> from repro.core import ExactRuntime, Instance, run_kernel
    >>> from repro.algorithms import GreedyBalance
    >>> inst = Instance.from_percent([[50, 50], [50, 50]])
    >>> live = ExactRuntime(inst)
    >>> run_kernel(live, GreedyBalance(), stop=lambda rt: rt.t >= 1)
    >>> ckpt = checkpoint_run(live)          # suspended after one step
    >>> doc = ckpt.to_json()                 # fully serializable
    >>> resumed = restore_runtime(KernelCheckpoint.from_json(doc))
    >>> run_kernel(resumed, GreedyBalance()) # continues to the end
    2

Beyond plain resume, a checkpoint may be restored into an **extended**
instance -- one whose queues grew at the tail and/or gained whole new
processors (with their own release times).  That is the primitive
behind the incremental re-scheduling of :mod:`repro.service`: on a job
arrival the engine checkpoints, extends the instance, and continues --
instead of re-simulating from ``t=0``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Sequence

from ..exceptions import CheckpointError
from .instance import Instance

if TYPE_CHECKING:  # pragma: no cover - types only
    from .kernel import KernelRuntime, StepObserver

__all__ = [
    "KernelCheckpoint",
    "checkpoint_run",
    "restore_runtime",
    "restore_observers",
]

_FORMAT = "crsharing-checkpoint"
_VERSION = 1
#: Runtime kinds with a checkpoint implementation.
_KINDS = ("exact", "vector")


def _canonical(body: dict[str, Any]) -> str:
    """Canonical JSON of *body* minus the digest key (digest input)."""
    trimmed = {k: v for k, v in body.items() if k != "digest"}
    return json.dumps(trimmed, sort_keys=True, separators=(",", ":"))


def _digest(body: dict[str, Any]) -> str:
    """SHA-256 integrity digest over the canonical document."""
    return hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()


@dataclass(frozen=True, slots=True)
class KernelCheckpoint:
    """A suspended kernel run, serializable and bit-identically resumable.

    Attributes:
        kind: the runtime family that produced the snapshot --
            ``"exact"`` (:class:`~repro.core.kernel.ExactRuntime`) or
            ``"vector"``
            (:class:`~repro.backends.vector.VectorRuntime`).  A
            checkpoint only restores into the same kind; the two
            arithmetics are deliberately not interchangeable mid-run.
        instance: the instance the run was executing.
        state: the runtime-native mutable state (remaining work,
            resource ledgers, release masks, step counter) as produced
            by the runtime's ``capture()``.
        observers: one captured payload per observer handed to
            :func:`checkpoint_run`, ``None`` for stateless observers.
    """

    kind: str
    instance: Instance
    state: dict[str, Any]
    observers: tuple[dict[str, Any] | None, ...] = ()

    @property
    def t(self) -> int:
        """The step counter at which the run was suspended."""
        return int(self.state["t"])

    def at_step(self, t: int) -> "KernelCheckpoint":
        """A copy fast-forwarded to step *t* (idle time skip).

        Only meaningful while the checkpointed workload is fully
        drained (or every described processor is idle): no work happens
        in the skipped steps, so the service's event engine jumps the
        clock to the next arrival instead of simulating empty steps.

        Raises:
            CheckpointError: if *t* would move the clock backwards.
        """
        if t < self.t:
            raise CheckpointError(
                f"cannot move the step counter backwards ({self.t} -> {t})"
            )
        state = dict(self.state)
        state["t"] = int(t)
        return replace(self, state=state)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Lossless, digest-protected dict form of the checkpoint."""
        from ..io.serialization import instance_to_dict  # io builds on core

        body: dict[str, Any] = {
            "format": _FORMAT,
            "version": _VERSION,
            "kind": self.kind,
            "instance": instance_to_dict(self.instance),
            "state": self.state,
            "observers": list(self.observers),
        }
        body["digest"] = _digest(body)
        return body

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "KernelCheckpoint":
        """Inverse of :meth:`to_dict`, with integrity validation.

        Raises:
            CheckpointError: wrong format tag, unsupported version,
                digest mismatch (corruption), unknown runtime kind, or
                a malformed embedded instance document.
        """
        from ..io.serialization import instance_from_dict  # io builds on core

        if not isinstance(data, dict):
            raise CheckpointError(
                f"checkpoint document must be a dict, got {type(data).__name__}"
            )
        if data.get("format") != _FORMAT:
            raise CheckpointError(
                f"not a kernel checkpoint document: {data.get('format')!r}"
            )
        if data.get("version") != _VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {data.get('version')!r} "
                f"(this build reads version {_VERSION})"
            )
        digest = data.get("digest")
        if digest != _digest(data):
            raise CheckpointError(
                "checkpoint digest mismatch: the document was corrupted "
                "or edited after it was written"
            )
        kind = data.get("kind")
        if kind not in _KINDS:
            raise CheckpointError(
                f"unknown runtime kind {kind!r} (expected one of {_KINDS})"
            )
        try:
            instance = instance_from_dict(data["instance"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint carries a malformed instance: {exc}"
            ) from exc
        state = data.get("state")
        if not isinstance(state, dict) or "t" not in state:
            raise CheckpointError("checkpoint state payload is malformed")
        observers = data.get("observers", [])
        if not isinstance(observers, list):
            raise CheckpointError("checkpoint observer payload is malformed")
        return cls(
            kind=kind,
            instance=instance,
            state=state,
            observers=tuple(observers),
        )

    def to_json(self) -> str:
        """The checkpoint as a JSON string (see :meth:`to_dict`)."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "KernelCheckpoint":
        """Parse and validate a :meth:`to_json` document.

        Raises:
            CheckpointError: on unparseable JSON or any
                :meth:`from_dict` validation failure.
        """
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise CheckpointError(f"unparseable checkpoint JSON: {exc}") from exc
        return cls.from_dict(data)


def checkpoint_run(
    runtime: "KernelRuntime",
    observers: Sequence["StepObserver"] = (),
) -> KernelCheckpoint:
    """Snapshot a (suspended or finished) kernel run.

    Call only at a step boundary -- after :func:`~repro.core.kernel.run_kernel`
    returned, normally or through its ``stop`` predicate.  *observers*
    are the observers the caller will also attach on resume, in the
    same order; stateless ones contribute ``None``.

    Raises:
        CheckpointError: if the runtime has no checkpoint support
            (no ``kind``/``capture`` contract).
    """
    kind = getattr(runtime, "kind", None)
    capture = getattr(runtime, "capture", None)
    if kind not in _KINDS or capture is None:
        raise CheckpointError(
            f"runtime {type(runtime).__name__} does not support "
            "checkpointing (expected an ExactRuntime or VectorRuntime)"
        )
    return KernelCheckpoint(
        kind=kind,
        instance=runtime.instance,
        state=capture(),
        observers=tuple(obs.capture_state() for obs in observers),
    )


def _require_extension(old: Instance, new: Instance) -> None:
    """Validate that *new* extends *old* without rewriting history.

    Every old queue must be a *prefix* of the corresponding new queue
    with an unchanged release time (appending at the tail is the only
    legal growth), and new processors may only be added after the old
    ones.  Anything else would make the checkpointed progress counters
    meaningless.

    Raises:
        CheckpointError: when *new* is not a valid extension.
    """
    if new.num_processors < old.num_processors:
        raise CheckpointError(
            f"extension dropped processors ({old.num_processors} -> "
            f"{new.num_processors})"
        )
    for i, queue in enumerate(old.queues):
        grown = new.queues[i]
        if len(grown) < len(queue) or grown[: len(queue)] != queue:
            raise CheckpointError(
                f"queue {i} of the extension does not keep the "
                "checkpointed jobs as a prefix"
            )
        if new.releases[i] != old.releases[i]:
            raise CheckpointError(
                f"extension changed the release time of processor {i} "
                f"({old.releases[i]} -> {new.releases[i]})"
            )


def restore_runtime(
    checkpoint: KernelCheckpoint,
    *,
    instance: Instance | None = None,
    observers: Sequence["StepObserver"] = (),
) -> "KernelRuntime":
    """Rebuild a runtime (and observer states) from a checkpoint.

    Args:
        checkpoint: the snapshot to restore.
        instance: optional **extension** of the checkpointed instance
            (old queues as prefixes, tail-appended jobs, optionally new
            processors with their own release times); ``None`` resumes
            the checkpointed instance itself.
        observers: fresh observers to restore captured state into, in
            :func:`checkpoint_run` order.  May be empty to resume
            without observers; otherwise the count must match.

    Returns:
        An :class:`~repro.core.kernel.ExactRuntime` or
        :class:`~repro.backends.vector.VectorRuntime` positioned exactly
        where the checkpointed run stopped; pass it straight back into
        :func:`~repro.core.kernel.run_kernel`.

    Raises:
        CheckpointError: unknown kind, invalid extension, or a state /
            observer payload that does not fit.
    """
    target = checkpoint.instance if instance is None else instance
    if target is not checkpoint.instance and target != checkpoint.instance:
        _require_extension(checkpoint.instance, target)
    if checkpoint.kind == "exact":
        from .kernel import ExactRuntime  # lazy: kernel imports nothing from here

        runtime: "KernelRuntime" = ExactRuntime(target)
    elif checkpoint.kind == "vector":
        from ..backends.vector import VectorRuntime  # lazy: avoid core->backends cycle

        runtime = VectorRuntime(
            target, tol=float(checkpoint.state.get("tol", 1e-9))
        )
    else:  # pragma: no cover - from_dict already rejects unknown kinds
        raise CheckpointError(f"unknown runtime kind {checkpoint.kind!r}")
    runtime.restore(checkpoint.state)
    restore_observers(checkpoint, observers)
    return runtime


def restore_observers(
    checkpoint: KernelCheckpoint, observers: Sequence["StepObserver"]
) -> None:
    """Restore captured observer states into fresh observer objects.

    A no-op for an empty *observers* sequence (resuming without
    observers is legal); otherwise the count must match the
    checkpoint's and each stateful payload is handed to the matching
    observer's ``restore_state``.

    Raises:
        CheckpointError: on an observer-count mismatch or a payload a
            stateless observer cannot accept.
    """
    observers = tuple(observers)
    if not observers:
        return
    if len(observers) != len(checkpoint.observers):
        raise CheckpointError(
            f"checkpoint captured {len(checkpoint.observers)} observer "
            f"state(s) but {len(observers)} observer(s) were supplied"
        )
    for obs, state in zip(observers, checkpoint.observers):
        if state is None:
            continue
        try:
            obs.restore_state(state)
        except NotImplementedError as exc:
            raise CheckpointError(str(exc)) from exc
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"observer {type(obs).__name__} rejected its captured "
                f"state: {exc}"
            ) from exc
