"""Structural schedule properties from Section 4.1 of the paper.

The paper restricts analysis to schedules that are *non-wasting*
(Definition 2), *progressive* (Definition 3) and *nested*
(Definition 4); balancedness (Definition 5) is the extra property that
buys the :math:`2 - 1/m` approximation (Theorem 7).  This module
implements all four predicates plus the consequences used in proofs
(Propositions 1 and 2), so the test-suite can assert them directly on
the schedules our algorithms produce.

Conventions: a job is *running* during step ``t`` if it processes a
positive amount of work in that step (zero-work jobs are treated as
running in their completion step); it is *in progress* at ``t`` if it
has started (first resource at or before ``t``) but completes after
``t``.
"""

from __future__ import annotations


from .job import JobId
from .numerics import ONE, ZERO, frac_sum
from .schedule import Schedule

__all__ = [
    "is_non_wasting",
    "is_progressive",
    "is_nested",
    "is_balanced",
    "is_nice",
    "nested_violations",
    "balance_violations",
    "check_proposition_1",
    "check_proposition_2",
]


def _running_jobs(schedule: Schedule, t: int) -> list[JobId]:
    """Jobs running during step *t*.

    Jobs processing positive work, plus zero-work jobs completing at
    *t*, which occupy their processor.
    """
    step = schedule.step(t)
    out: list[JobId] = []
    for i, j in enumerate(step.active):
        if j is None:
            continue
        if step.processed[i] > ZERO or schedule.completion_step(i, j) == t:
            out.append((i, j))
    return out


def is_non_wasting(schedule: Schedule) -> bool:
    """Definition 2's *non-wasting* property.

    Whenever a step assigns less than the full resource, every active
    job finishes during that step.
    """
    for t in range(schedule.makespan):
        step = schedule.step(t)
        if frac_sum(step.shares) < ONE:
            for i, j in enumerate(step.active):
                if j is None:
                    continue
                if schedule.completion_step(i, j) != t:
                    return False
    return True


def is_progressive(schedule: Schedule) -> bool:
    """Definition 3's *progressive* property.

    In every step, at most one job that receives resource is only
    partially processed (``n_i(t) == n_i(t+1)`` while ``R_i(t) > 0``
    for at most one processor).
    """
    for t in range(schedule.makespan):
        step = schedule.step(t)
        partial = 0
        for i, j in enumerate(step.active):
            if j is None or step.shares[i] == ZERO:
                continue
            if schedule.completion_step(i, j) != t:
                partial += 1
                if partial > 1:
                    return False
    return True


def nested_violations(schedule: Schedule) -> list[tuple[JobId, JobId, int]]:
    """All witnesses ``((i,j), (i',j'), t)`` violating Definition 4.

    A violation is: job ``(i,j)`` runs during step ``t`` while some job
    ``(i',j')`` with a *later* start is still in progress
    (``S(i,j) < S(i',j') <= t < C(i',j')``) and that later job started
    before ``(i,j)`` completed (``S(i',j') < C(i,j)``).
    """
    starts = schedule.start_steps
    comps = schedule.completion_steps
    jobs = list(starts)
    violations: list[tuple[JobId, JobId, int]] = []
    for t in range(schedule.makespan):
        running = _running_jobs(schedule, t)
        if not running:
            continue
        in_progress = [
            jid for jid in jobs if starts[jid] <= t < comps[jid]
        ]
        for a in running:
            sa, ca = starts[a], comps[a]
            for b in in_progress:
                if b == a:
                    continue
                sb = starts[b]
                if sa < sb and sb <= t and sb < ca:
                    violations.append((a, b, t))
    return violations


def is_nested(schedule: Schedule) -> bool:
    """Definition 4's *nested* property.

    Among partially processed jobs, the latest-started one is always
    preferred (run and completed) -- equivalently, no witness found
    by :func:`nested_violations`.
    """
    return not nested_violations(schedule)


def balance_violations(schedule: Schedule) -> list[tuple[int, int, int]]:
    """All witnesses ``(t, i, i')`` violating Definition 5.

    A witness: processor ``i`` finishes a job at step ``t`` while
    processor ``i'`` with strictly more remaining jobs does not.
    """
    inst = schedule.instance
    m = inst.num_processors
    violations: list[tuple[int, int, int]] = []
    finish_steps: dict[int, set[int]] = {i: set() for i in range(m)}
    for (i, _j), t in schedule.completion_steps.items():
        finish_steps[i].add(t)
    for t in range(schedule.makespan):
        finishing = [i for i in range(m) if t in finish_steps[i]]
        if not finishing:
            continue
        for i in finishing:
            ni = schedule.jobs_remaining(t, i)
            for ip in range(m):
                if ip == i or t in finish_steps[ip]:
                    continue
                if schedule.jobs_remaining(t, ip) > ni:
                    violations.append((t, i, ip))
    return violations


def is_balanced(schedule: Schedule) -> bool:
    """Definition 5's *balanced* property.

    Whenever a processor finishes a job at step ``t``, so does every
    processor holding more remaining jobs.
    """
    return not balance_violations(schedule)


def is_nice(schedule: Schedule) -> bool:
    """The Lemma 1 package: non-wasting, progressive and nested."""
    return is_non_wasting(schedule) and is_progressive(schedule) and is_nested(schedule)


def check_proposition_1(schedule: Schedule) -> bool:
    """Check Proposition 1 for balanced schedules.

    (a) ``n_{i1} >= n_{i2}`` implies ``n_{i1}(t) >= n_{i2}(t) - 1``;
    (b) ``n_{i1} > n_{i2}`` implies
        ``n_{i1}(t) <= n_{i2}(t) + n_{i1} - n_{i2}``.

    Returns True iff both hold at every step (callers assert this for
    schedules known to be balanced).
    """
    inst = schedule.instance
    m = inst.num_processors
    totals = [inst.num_jobs(i) for i in range(m)]
    for t in range(schedule.makespan + 1):
        rem = [schedule.jobs_remaining(t, i) for i in range(m)]
        for i1 in range(m):
            for i2 in range(m):
                if i1 == i2:
                    continue
                if totals[i1] >= totals[i2] and not rem[i1] >= rem[i2] - 1:
                    return False
                if totals[i1] > totals[i2] and not (
                    rem[i1] <= rem[i2] + totals[i1] - totals[i2]
                ):
                    return False
    return True


def check_proposition_2(schedule: Schedule) -> bool:
    """Check Proposition 2 for balanced schedules.

    If job ``(i, j)`` is active at step ``t`` and is not the last job
    on its processor, then every processor in ``M_j`` is active at
    ``t``.

    (Indices follow the paper: ``M_j`` uses 1-based ``j``.)
    """
    inst = schedule.instance
    for t in range(schedule.makespan):
        for (i, j0) in schedule.active_jobs(t):
            if schedule.jobs_remaining(t, i) <= 1:
                continue  # last job on the processor: no claim
            j_paper = j0 + 1
            for ip in inst.processors_with_at_least(j_paper):
                if not schedule.is_active(t, ip):
                    return False
    return True
