"""Exact rational arithmetic for the CRSharing model.

Every quantity in the paper lives in :math:`[0, 1]` (resource shares,
requirements) or is an integer (time steps, job counts).  The paper's
results are *exact* statements -- e.g. the worst-case families for
RoundRobin (Theorem 3) and GreedyBalance (Theorem 8) achieve their
ratios only in a limit, and the NP-hardness gadget (Theorem 4)
distinguishes makespan 4 from makespan 5 through sums that differ by a
single :math:`1/(A+\\delta)` unit.  Verifying these claims with floating
point would require slack everywhere and would make boundary cases
(``r == 1`` exactly) undecidable.

We therefore canonicalize every numeric input to
:class:`fractions.Fraction` and perform all scheduling arithmetic
exactly.  This module is the single place where conversions happen;
the rest of the library imports from here.

Performance note (see the HPC guide: *measure, then optimize*): exact
``Fraction`` arithmetic is fast as long as denominators stay small.
The instance generators in :mod:`repro.generators` emit rationals on a
common small grid (e.g. percent or ``1/10**4``), so additions keep a
common denominator and never blow up.  For bulk float workloads the
simulator can also run in float mode; the exact mode is the default and
is what the test-suite uses to check the theorems.
"""

from __future__ import annotations

import math
from decimal import Decimal
from fractions import Fraction
from typing import Iterable, Sequence, Union

__all__ = [
    "Num",
    "Rational",
    "ZERO",
    "ONE",
    "to_frac",
    "to_frac_seq",
    "frac_ceil",
    "frac_floor",
    "frac_sum",
    "common_denominator",
    "quantize",
    "as_float",
    "format_frac",
    "parse_frac",
    "is_share",
    "clamp01",
]

#: Anything accepted as a number by the public API.
Num = Union[int, float, str, Fraction, Decimal]

#: The canonical exact type used internally.
Rational = Fraction

ZERO = Fraction(0)
ONE = Fraction(1)


def to_frac(value: Num) -> Fraction:
    """Convert *value* to an exact :class:`~fractions.Fraction`.

    Accepted inputs:

    * ``int`` -- exact.
    * ``Fraction`` -- returned unchanged.
    * ``str`` -- parsed as ``"p/q"`` or a decimal literal (``"0.35"``),
      both exact; this is the recommended way to express decimal
      requirements without binary-float artifacts.
    * ``Decimal`` -- exact.
    * ``float`` -- converted via :class:`~decimal.Decimal` using the
      float's shortest ``repr`` so that ``to_frac(0.1) == Fraction(1, 10)``
      (what the user *meant*), not the exact binary expansion
      ``3602879701896397/2**55``.

    Raises:
        TypeError: for unsupported types.
        ValueError: for non-finite floats.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("bool is not a valid numeric value")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, Decimal):
        return Fraction(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(f"cannot convert non-finite float {value!r} to Fraction")
        # repr(float) is the shortest decimal string that round-trips, so
        # Decimal(repr(x)) recovers the intended decimal value.
        return Fraction(Decimal(repr(value)))
    raise TypeError(f"cannot convert {type(value).__name__} to Fraction")


def to_frac_seq(values: Iterable[Num]) -> tuple[Fraction, ...]:
    """Convert an iterable of numbers to a tuple of exact Fractions."""
    return tuple(to_frac(v) for v in values)


def frac_ceil(x: Num) -> int:
    """Exact ceiling of a rational number as a Python int."""
    return -((-to_frac(x)).__floor__())


def frac_floor(x: Num) -> int:
    """Exact floor of a rational number as a Python int."""
    return to_frac(x).__floor__()


def frac_sum(values: Iterable[Num]) -> Fraction:
    """Exact sum of an iterable of numbers (empty sum is 0)."""
    total = ZERO
    for v in values:
        total += to_frac(v)
    return total


def common_denominator(values: Iterable[Num]) -> int:
    """Least common denominator of the given rationals (>= 1).

    Used to map an instance onto an exact integer grid (see
    :meth:`repro.core.instance.Instance.to_integer_grid`), which turns
    all scheduling arithmetic into integer arithmetic.
    """
    lcm = 1
    for v in values:
        lcm = math.lcm(lcm, to_frac(v).denominator)
    return lcm


def quantize(values: Sequence[Num], denominator: int | None = None) -> tuple[list[int], int]:
    """Scale *values* onto an integer grid.

    Returns ``(units, D)`` such that ``values[k] == units[k] / D``
    exactly.  If *denominator* is given it must be a common multiple of
    all value denominators; otherwise the least common denominator is
    used.

    Raises:
        ValueError: if *denominator* is not a common multiple.
    """
    fracs = to_frac_seq(values)
    lcd = common_denominator(fracs)
    if denominator is None:
        denominator = lcd
    elif denominator % lcd != 0:
        raise ValueError(
            f"denominator {denominator} is not a common multiple of the "
            f"value denominators (need a multiple of {lcd})"
        )
    units = [int(f * denominator) for f in fracs]
    return units, denominator


def as_float(x: Num) -> float:
    """Convert a number to float (for reporting / plotting only)."""
    return float(to_frac(x))


def format_frac(x: Num, *, max_decimal_digits: int = 6) -> str:
    """Human-friendly rendering of a rational number.

    Terminating decimals shorter than *max_decimal_digits* are printed
    as decimals (``"0.35"``); everything else as ``"p/q"``.
    """
    f = to_frac(x)
    if f.denominator == 1:
        return str(f.numerator)
    den = f.denominator
    twos = 0
    while den % 2 == 0:
        den //= 2
        twos += 1
    fives = 0
    while den % 5 == 0:
        den //= 5
        fives += 1
    if den == 1 and max(twos, fives) <= max_decimal_digits:
        digits = max(twos, fives)
        scaled = abs(f) * 10**digits
        text = str(scaled.numerator).rjust(digits + 1, "0")
        sign = "-" if f < 0 else ""
        return f"{sign}{text[:-digits]}.{text[-digits:]}"
    return f"{f.numerator}/{f.denominator}"


def parse_frac(text: str) -> Fraction:
    """Inverse of :func:`format_frac` (accepts ``"p/q"`` and decimals)."""
    return Fraction(text)


def is_share(x: Num) -> bool:
    """True iff ``0 <= x <= 1`` exactly (a valid resource share)."""
    f = to_frac(x)
    return ZERO <= f <= ONE


def clamp01(x: Num) -> Fraction:
    """Clamp a rational into ``[0, 1]``."""
    f = to_frac(x)
    if f < ZERO:
        return ZERO
    if f > ONE:
        return ONE
    return f
