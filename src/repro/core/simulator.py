"""Discrete-time simulator driving online policies (Section 3.1).

The simulator is the bridge between *policies* (state-feedback rules
such as RoundRobin and GreedyBalance, Sections 4.2 / 8.3) and the
offline :class:`~repro.core.schedule.Schedule` artifact all analysis
operates on.  Each step it asks the policy for a share vector, checks
feasibility, advances the shared :class:`~repro.core.state.ExecState`,
and finally wraps the recorded share rows in a validated
:class:`Schedule`.

Policies are plain callables ``policy(state) -> shares`` where *state*
is the live :class:`ExecState` (treated as read-only by convention;
:class:`~repro.algorithms.base.Policy` documents the contract).
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Sequence

from ..exceptions import InfeasibleAssignmentError, SimulationLimitError
from .instance import Instance
from .numerics import Num, ONE, ZERO, format_frac, frac_sum, to_frac
from .schedule import Schedule
from .state import ExecState

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..backends.base import BackendResult

__all__ = [
    "simulate",
    "run_policy",
    "check_share_vector",
    "default_step_limit",
    "PolicyFn",
]

#: A policy maps the execution state to a per-processor share vector.
PolicyFn = Callable[[ExecState], Sequence[Num]]


def default_step_limit(instance: Instance) -> int:
    """A generous upper bound on the steps any sane policy needs.

    Any schedule that each step either finishes a job or uses the full
    resource takes at most ``total_jobs + ceil(total_work)`` steps; we
    double that and pad, so only genuinely stuck policies hit the limit.
    """
    return 2 * (instance.total_jobs + instance.work_lower_bound()) + 16


def check_share_vector(
    instance: Instance, t: int, shares: Sequence[Fraction]
) -> None:
    """Exact feasibility check of one share vector (model Section 3.1).

    Raises:
        InfeasibleAssignmentError: wrong arity, share outside
            ``[0, 1]``, or resource overuse.
    """
    if len(shares) != instance.num_processors:
        raise InfeasibleAssignmentError(
            f"policy returned {len(shares)} shares for "
            f"{instance.num_processors} processors at step {t}"
        )
    for i, x in enumerate(shares):
        if x < ZERO or x > ONE:
            raise InfeasibleAssignmentError(
                f"step {t}: share {format_frac(x)} for processor "
                f"{i} outside [0, 1]"
            )
    total = frac_sum(shares)
    if total > ONE:
        raise InfeasibleAssignmentError(
            f"step {t}: resource overused "
            f"(sum of shares = {format_frac(total)} > 1)"
        )


def run_policy(
    instance: Instance,
    policy: PolicyFn,
    *,
    backend: str = "exact",
    **kwargs,
) -> "BackendResult":
    """Run *policy* through a named simulation backend.

    The backend-agnostic entry point behind the CLI's ``--backend``
    flag: ``backend="exact"`` wraps :func:`simulate` (the result
    carries the validated :class:`Schedule`), ``backend="vector"``
    runs the NumPy float64 engine.  See :mod:`repro.backends`.
    """
    from ..backends import get_backend  # local: backends build on this module

    return get_backend(backend).run(instance, policy, **kwargs)


def simulate(
    instance: Instance,
    policy: PolicyFn,
    *,
    max_steps: int | None = None,
    stall_limit: int = 3,
) -> Schedule:
    """Run *policy* on *instance* until every job is finished.

    Args:
        instance: the CRSharing instance (unit or general job sizes).
        policy: callable producing one share vector per step.
        max_steps: hard safety limit (default
            :func:`default_step_limit`).
        stall_limit: abort after this many *consecutive* steps in which
            nothing changed (no work processed, no job completed) --
            the signature of a policy that will never terminate.

    Returns:
        A validated :class:`Schedule`.

    Raises:
        InfeasibleAssignmentError: if the policy overuses the resource
            or emits an invalid share.
        SimulationLimitError: if the limits are exceeded.
    """
    limit = default_step_limit(instance) if max_steps is None else max_steps
    state = ExecState(instance)
    rows: list[tuple[Fraction, ...]] = []
    stalled = 0

    while not state.all_done:
        if state.t >= limit:
            raise SimulationLimitError(
                f"policy did not finish within {limit} steps "
                f"(done={state.done})"
            )
        raw = policy(state)
        shares = tuple(to_frac(x) for x in raw)
        check_share_vector(instance, state.t, shares)
        outcome = state.apply(shares)
        rows.append(shares)
        if not outcome.completed and all(p == ZERO for p in outcome.processed):
            stalled += 1
            if stalled >= stall_limit:
                raise SimulationLimitError(
                    f"policy made no progress for {stalled} consecutive "
                    f"steps (t={state.t}); aborting"
                )
        else:
            stalled = 0

    # The rows were produced against live state; Schedule re-executes
    # them through the same ExecState semantics, guaranteeing the
    # returned artifact is internally consistent.
    return Schedule(instance, rows, validate=True, trim=True)
