"""Discrete-time simulator driving online policies (Section 3.1).

The simulator is the bridge between *policies* (state-feedback rules
such as RoundRobin and GreedyBalance, Sections 4.2 / 8.3) and the
offline :class:`~repro.core.schedule.Schedule` artifact all analysis
operates on.  Since the kernel refactor, :func:`simulate` is a thin
configuration of :func:`repro.core.kernel.run_kernel`: an
:class:`~repro.core.kernel.ExactRuntime` supplies the Fraction
arithmetic, a :class:`~repro.core.kernel.ShareRecorder` observer
collects the rows, and the recorded rows are wrapped in a validated
:class:`Schedule`.

Policies are plain callables ``policy(state) -> shares`` where *state*
is the live :class:`ExecState` (treated as read-only by convention;
:class:`~repro.algorithms.base.Policy` documents the contract).
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from .instance import Instance
from .kernel import (
    ExactRuntime,
    ShareRecorder,
    StepObserver,
    check_share_vector,
    run_kernel,
)
from .numerics import Num
from .schedule import Schedule
from .state import ExecState

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..backends.base import BackendResult
    from ..sequencing.base import Sequencer

__all__ = [
    "simulate",
    "run_policy",
    "check_share_vector",
    "default_step_limit",
    "PolicyFn",
]

#: A policy maps the execution state to a per-processor share vector.
PolicyFn = Callable[[ExecState], Sequence[Num]]


def default_step_limit(instance: Instance) -> int:
    """A generous upper bound on the steps any sane policy needs.

    Any schedule that each step either finishes a job or uses the full
    resource takes at most ``total_jobs + ceil(total_work)`` steps; we
    double that and pad, so only genuinely stuck policies hit the
    limit.  Release times shift every deadline by at most the latest
    arrival, so that is added on top.
    """
    return 2 * (instance.total_jobs + instance.work_lower_bound()) + 16 + (
        instance.max_release
    )


def run_policy(
    instance: Instance,
    policy: PolicyFn | str,
    *,
    backend: str = "exact",
    sequencer: "Sequencer | str | None" = None,
    compiled: str | bool | None = None,
    **kwargs,
) -> "BackendResult":
    """Run *policy* through a named simulation backend.

    The backend-agnostic entry point behind the CLI's ``--backend``
    flag: ``backend="exact"`` wraps :func:`simulate` (the result
    carries the validated :class:`Schedule`), ``backend="vector"``
    runs the NumPy float64 engine.  See :mod:`repro.backends`.

    *compiled* selects the fused compiled tier on the vector backend
    (``"auto"``/``"on"``/``"off"`` or a boolean, see
    :mod:`repro.kernels`); ``None`` leaves the backend's own default
    (``"auto"``) in charge.  ``compiled="on"`` on a non-vector backend
    raises :class:`~repro.exceptions.BackendError` -- only the vector
    engine has a compiled path; ``"auto"``/``"off"`` are silently
    meaningless there.

    *policy* may be a policy object or a registry name
    (``run_policy(inst, "round-robin")``); names resolve through
    :func:`repro.algorithms.resolve_policy` and unknown names raise
    :class:`~repro.exceptions.UnknownPolicyError` listing the options.

    *sequencer* (a :class:`~repro.sequencing.Sequencer` or registry
    name) re-derives the per-processor queue orders before the run --
    the job-order decision axis (:mod:`repro.sequencing`); ``None``
    keeps the instance's fixed order bit-identical.  Strategies with
    unpinned evaluation options (a bare ``"local-search"``) are bound
    to the policy -- and, when exactly one objective is requested, to
    that objective -- that this run actually executes.  The returned
    result's ``instance`` attribute carries the order that actually
    executed.
    """
    from ..algorithms import resolve_policy  # local: algorithms build on core
    from ..backends import get_backend  # local: backends build on this module

    if compiled is not None:
        from ..exceptions import BackendError  # local: keep imports lean
        from ..kernels import normalize_compiled

        mode = normalize_compiled(compiled)
        if backend == "vector":
            kwargs["compiled"] = mode
        elif mode == "on":
            raise BackendError(
                f"compiled='on' requires backend='vector', got {backend!r}"
            )
    policy = resolve_policy(policy)
    if sequencer is not None:
        from ..sequencing import resolve_sequencer  # local: builds on core

        objectives = tuple(kwargs.get("objectives") or ())
        if "objectives" in kwargs:
            # Materialize before the backend sees it: a one-shot
            # iterable would otherwise arrive exhausted.
            kwargs["objectives"] = objectives
        instance = (
            resolve_sequencer(sequencer)
            .bind(
                policy=policy,
                objective=objectives[0] if len(objectives) == 1 else None,
            )
            .sequence(instance)
        )
    return get_backend(backend).run(instance, policy, **kwargs)


def simulate(
    instance: Instance,
    policy: PolicyFn | str,
    *,
    max_steps: int | None = None,
    stall_limit: int = 3,
    observers: Iterable[StepObserver] = (),
) -> Schedule:
    """Run *policy* on *instance* until every job is finished.

    Args:
        instance: the CRSharing instance (unit or general job sizes,
            with or without release times).
        policy: callable producing one share vector per step, or a
            registry name (resolved via
            :func:`repro.algorithms.resolve_policy`; unknown names
            raise :class:`~repro.exceptions.UnknownPolicyError`).
        max_steps: hard safety limit (default
            :func:`default_step_limit`).
        stall_limit: abort after this many *consecutive* steps in which
            nothing changed (no work processed, no job completed) while
            no processor was waiting on a release -- the signature of a
            policy that will never terminate.
        observers: extra kernel step observers (e.g. the
            :class:`~repro.core.kernel.ObjectiveRecorder` hooks the
            exact backend attaches for online objective values),
            notified after the simulator's own share recorder.

    Returns:
        A validated :class:`Schedule`.

    Raises:
        InvalidInstanceError: for multi-resource instances -- the
            :class:`Schedule` artifact models the paper's
            single-resource analysis; run ``k > 1`` instances through
            :func:`run_policy` / the backends instead.
        InfeasibleAssignmentError: if the policy overuses the resource
            or emits an invalid share.
        SimulationLimitError: if the limits are exceeded.
    """
    from ..algorithms import resolve_policy  # local: algorithms build on core

    policy = resolve_policy(policy)
    instance.require_single_resource("simulate (Schedule artifact)")
    recorder = ShareRecorder()
    run_kernel(
        ExactRuntime(instance),
        policy,
        (recorder, *observers),
        max_steps=max_steps,
        stall_limit=stall_limit,
    )
    # The rows were produced against live state; Schedule re-executes
    # them through the same ExecState semantics, guaranteeing the
    # returned artifact is internally consistent.
    rows: list[tuple[Fraction, ...]] = list(recorder.shares)
    return Schedule(instance, rows, validate=True, trim=True)
