"""The unified stepping kernel (the one step loop in the codebase).

Before this module existed, the paper's step dynamics (Eq. (1)/(2),
Section 3.1) were implemented three times -- in the exact simulator,
the many-core engine, and the vectorized backend -- and every scenario
or metric had to be added to each copy.  The kernel collapses them:

:func:`run_kernel`
    owns the loop -- policy query, feasibility check, state advance,
    stall and step-limit handling, arrival releases -- and knows
    nothing about arithmetic or telemetry.

:class:`KernelRuntime`
    the arithmetic adapter.  :class:`ExactRuntime` (here) drives the
    exact :class:`~repro.core.state.ExecState` in ``Fraction``
    arithmetic; :class:`~repro.backends.vector.VectorRuntime` drives
    the float64 NumPy state.  A runtime translates between the
    policy's native share representation and the shared step
    semantics, and reports each executed step as a :class:`StepEvent`.

:class:`StepObserver`
    the telemetry adapter.  Share recording, completion bookkeeping,
    :class:`~repro.simulation.traces.RunTrace` construction, and
    busy/stall accounting are all observers subscribed to the kernel,
    so new metrics compose instead of being inlined into loop bodies.

``simulate``, ``ManyCoreEngine.run``, ``ExactBackend`` and
``VectorBackend`` are thin configurations of this kernel; golden-output
tests pin that release-time-0 instances execute bit-identically to the
pre-kernel implementations.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from fractions import Fraction
from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..exceptions import (
    InfeasibleAssignmentError,
    ObserverError,
    SimulationLimitError,
)
from ..telemetry import get_session
from .instance import Instance
from .numerics import ONE, ZERO, format_frac, frac_sum, to_frac
from .state import ExecState

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..telemetry import TelemetrySession
    from .job import JobId

__all__ = [
    "StepEvent",
    "StepObserver",
    "ShareRecorder",
    "CompletionRecorder",
    "ObjectiveRecorder",
    "TelemetryObserver",
    "KernelRuntime",
    "ExactRuntime",
    "check_share_vector",
    "run_kernel",
]

#: Structured stall/heartbeat log channel (see ``run_kernel``).
_KERNEL_LOG = logging.getLogger("repro.kernel")


def check_share_vector(
    instance: Instance, t: int, shares: Sequence[Fraction]
) -> None:
    """Exact feasibility check of one share assignment (Section 3.1).

    This is the single over-grant check every exact layer shares: the
    simulator, the many-core engine, and the exact backend all report
    infeasibility through it.  For single-resource instances *shares*
    is one value per processor; for ``k > 1`` it is ``k`` rows (one
    per resource) and every row is checked against that resource's
    unit capacity.

    Raises:
        InfeasibleAssignmentError: wrong arity, share outside
            ``[0, 1]``, or resource overuse (on any resource).
    """
    if instance.num_resources != 1:
        _check_share_matrix(instance, t, shares)
        return
    _check_share_row(instance, t, shares, resource=None)


def _check_share_row(
    instance: Instance,
    t: int,
    shares: Sequence[Fraction],
    *,
    resource: int | None,
) -> None:
    """Check one per-processor share row against unit capacity."""
    where = "" if resource is None else f" on resource {resource}"
    if len(shares) != instance.num_processors:
        raise InfeasibleAssignmentError(
            f"policy returned {len(shares)} shares for "
            f"{instance.num_processors} processors at step {t}{where}"
        )
    for i, x in enumerate(shares):
        if x < ZERO or x > ONE:
            raise InfeasibleAssignmentError(
                f"step {t}: share {format_frac(x)} for processor "
                f"{i} outside [0, 1]{where}"
            )
    total = frac_sum(shares)
    if total > ONE:
        raise InfeasibleAssignmentError(
            f"step {t}: resource overused{where} "
            f"(sum of shares = {format_frac(total)} > 1)"
        )


def _check_share_matrix(
    instance: Instance, t: int, rows: Sequence[Sequence[Fraction]]
) -> None:
    """Check a ``k x m`` share matrix row by row (capacity 1 each)."""
    k = instance.num_resources
    if len(rows) != k:
        raise InfeasibleAssignmentError(
            f"policy returned {len(rows)} share rows for {k} shared "
            f"resources at step {t} (expected one row per resource)"
        )
    for lane, row in enumerate(rows):
        _check_share_row(instance, t, row, resource=lane)


@dataclass(frozen=True, slots=True)
class StepEvent:
    """One executed kernel step, in the runtime's native arithmetic.

    Attributes:
        t: 0-based index of the step that just executed.
        shares: the share vector the policy produced (``Fraction``
            tuples for the exact runtime, a float64 array for the
            vector runtime).
        processed: work processed per processor this step.
        completed: jobs that finished during this step.
        had_work: per processor, whether it was *active* (released and
            with unfinished jobs) when the step began -- the basis of
            busy/stall accounting.
        progressed: True iff the step completed a job or processed a
            measurable amount of work (the runtime's tolerance
            decides "measurable").
    """

    t: int
    shares: Sequence[Any]
    processed: Sequence[Any]
    completed: tuple["JobId", ...]
    had_work: Sequence[Any]
    progressed: bool


class StepObserver:
    """Composable telemetry hook; all callbacks default to no-ops.

    Observers receive every executed step (:meth:`on_step`), every job
    completion (:meth:`on_complete`, called once per finished job after
    the step's :meth:`on_step`), and the final makespan
    (:meth:`on_finish`).  They must not mutate the runtime state.

    Example:
        >>> from repro.core import Instance
        >>> from repro.algorithms import GreedyBalance
        >>> class StepCounter(StepObserver):
        ...     steps = 0
        ...     def on_step(self, event):
        ...         self.steps += 1
        >>> counter = StepCounter()
        >>> inst = Instance.from_percent([[50, 50], [50, 50]])
        >>> run_kernel(ExactRuntime(inst), GreedyBalance(), [counter])
        2
        >>> counter.steps
        2
    """

    def on_step(self, event: StepEvent) -> None:
        """Called after every executed step."""

    def on_complete(self, job: "JobId", t: int) -> None:
        """Called once per job completion (after that step's on_step)."""

    def on_finish(self, makespan: int) -> None:
        """Called once, after the last step."""

    def capture_state(self) -> dict | None:
        """JSON-serializable observer state for checkpointing.

        ``None`` (the default) marks the observer as stateless: the
        checkpoint layer (:mod:`repro.core.checkpoint`) records nothing
        and :meth:`restore_state` is never called for it on resume.
        Stateful observers return a plain-data dict instead and accept
        the same dict back.
        """
        return None

    def restore_state(self, state: dict) -> None:
        """Restore observer state from a :meth:`capture_state` dict.

        Only called with a non-``None`` captured state; the default
        (stateless) observer rejects any payload, because receiving one
        means the checkpoint was taken from a different observer.
        """
        raise NotImplementedError(
            f"{type(self).__name__} is stateless but a checkpoint "
            "carries state for it"
        )


class ShareRecorder(StepObserver):
    """Record per-step share and progress rows (memory permitting).

    Mutable rows (NumPy arrays) are copied at record time, so a policy
    that reuses an output buffer cannot retroactively corrupt earlier
    rows; immutable rows (the exact runtime's tuples) are stored as-is.
    """

    __slots__ = ("shares", "processed")

    def __init__(self) -> None:
        self.shares: list[Sequence[Any]] = []
        self.processed: list[Sequence[Any]] = []

    @staticmethod
    def _freeze(row: Sequence[Any]) -> Sequence[Any]:
        copy = getattr(row, "copy", None)
        return copy() if copy is not None else row

    def on_step(self, event: StepEvent) -> None:
        """Record the step's share and progress rows."""
        self.shares.append(self._freeze(event.shares))
        self.processed.append(self._freeze(event.processed))


class CompletionRecorder(StepObserver):
    """Record the 0-based completion step of every job."""

    __slots__ = ("completion_steps",)

    def __init__(self) -> None:
        self.completion_steps: dict["JobId", int] = {}

    def on_complete(self, job: "JobId", t: int) -> None:
        """Record that *job* completed in step *t*."""
        self.completion_steps[job] = t

    def capture_state(self) -> dict:
        """Completion table as plain data (``[[i, j, t], ...]``)."""
        return {
            "completions": [
                [i, j, t] for (i, j), t in self.completion_steps.items()
            ]
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild the completion table from a captured payload."""
        self.completion_steps = {
            (int(i), int(j)): int(t) for i, j, t in state["completions"]
        }


class ObjectiveRecorder(StepObserver):
    """Accumulate a scheduling objective online during the run.

    The shared bridge between the kernel and the pluggable objective
    layer (:mod:`repro.objectives`): the objective contributes a
    per-run accumulator, the recorder feeds it the kernel's completion
    stream, and :attr:`value` holds the objective value once
    :meth:`on_finish` has fired -- the same observer works unchanged on
    the exact and the vector runtime, so objectives never need a second
    pass over recorded rows.

    Args:
        objective: any object with ``start(instance)`` returning an
            accumulator with ``complete(job, t)`` / ``finish(makespan)``
            (the :class:`repro.objectives.base.Objective` contract).
        instance: the instance the run executes.
    """

    __slots__ = ("objective", "value", "_accumulator", "_seen", "_instance")

    def __init__(self, objective, instance: Instance) -> None:
        self.objective = objective
        self.value = None
        self._instance = instance
        self._accumulator = objective.start(instance)
        #: Completion events in arrival order, kept so a checkpoint can
        #: replay them into a fresh accumulator on resume (accumulators
        #: are arbitrary objective-defined objects; their state is the
        #: fold over this stream by construction).
        self._seen: list[tuple["JobId", int]] = []

    def on_complete(self, job: "JobId", t: int) -> None:
        """Feed one completion to the objective's accumulator."""
        self._seen.append((job, t))
        self._accumulator.complete(job, t)

    def on_finish(self, makespan: int) -> None:
        """Close the accumulator and publish the objective value."""
        self.value = self._accumulator.finish(makespan)

    def capture_state(self) -> dict:
        """The completion stream the accumulator has folded so far."""
        return {"completions": [[i, j, t] for (i, j), t in self._seen]}

    def restore_state(self, state: dict) -> None:
        """Replay a captured completion stream into a fresh accumulator."""
        self.value = None
        self._accumulator = self.objective.start(self._instance)
        self._seen = []
        for i, j, t in state["completions"]:
            self.on_complete((int(i), int(j)), int(t))


class KernelRuntime:
    """Arithmetic adapter contract consumed by :func:`run_kernel`.

    A runtime owns the mutable execution state and translates the
    shared loop skeleton into one arithmetic model:

    * :attr:`t` / :attr:`all_done` / :attr:`waiting` expose progress;
    * :meth:`begin_step` activates processors whose release time has
      arrived (a no-op for the static model);
    * :meth:`query` asks the policy for shares in native form;
    * :meth:`check` raises
      :class:`~repro.exceptions.InfeasibleAssignmentError` on invalid
      shares (within the runtime's tolerance);
    * :meth:`apply` advances the state one step and reports it.
    """

    instance: Instance

    @property
    def t(self) -> int:
        """0-based index of the next step to execute."""
        raise NotImplementedError

    @property
    def all_done(self) -> bool:
        """True once every job on every processor has finished."""
        raise NotImplementedError

    @property
    def waiting(self) -> bool:
        """True iff some pending processor has not been released yet.

        Zero-progress steps are then legitimate waiting, not a stalled
        policy.
        """
        raise NotImplementedError

    def begin_step(self) -> None:
        """Activate processors whose release time has arrived."""

    def query(self, policy) -> Sequence[Any]:
        """Ask *policy* for shares in the runtime's native form."""
        raise NotImplementedError

    def check(self, shares: Sequence[Any]) -> None:
        """Validate one share assignment (raise on infeasibility)."""
        raise NotImplementedError

    def apply(self, shares: Sequence[Any]) -> StepEvent:
        """Advance the state one step and report what happened."""
        raise NotImplementedError

    def describe_progress(self) -> str:
        """Short state description used in limit-error messages."""
        return ""


class ExactRuntime(KernelRuntime):
    """Exact ``Fraction`` arithmetic over :class:`ExecState`.

    The reference runtime; bit-identical to the pre-kernel simulator.
    """

    #: Checkpoint backend tag (see :mod:`repro.core.checkpoint`).
    kind = "exact"

    __slots__ = ("instance", "state", "_m", "_k")

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self.state = ExecState(instance)
        self._m = instance.num_processors
        self._k = instance.num_resources

    @property
    def t(self) -> int:
        """0-based index of the next step to execute."""
        return self.state.t

    @property
    def all_done(self) -> bool:
        """True once every job on every processor has finished."""
        return self.state.all_done

    @property
    def waiting(self) -> bool:
        """True while unreleased processors still hold pending jobs."""
        return self.state.waiting

    def query(self, policy) -> tuple[Fraction, ...]:
        """Ask *policy* for exact shares (a vector, or ``k`` rows)."""
        raw = policy(self.state)
        if self._k == 1:
            return tuple(to_frac(x) for x in raw)
        try:
            return tuple(tuple(to_frac(x) for x in row) for row in raw)
        except TypeError:
            raise InfeasibleAssignmentError(
                f"policy returned a flat share vector for an instance "
                f"with {self._k} shared resources at step {self.state.t}; "
                "expected one share row per resource"
            ) from None

    def check(self, shares: Sequence[Fraction]) -> None:
        """Exact feasibility check via :func:`check_share_vector`."""
        check_share_vector(self.instance, self.state.t, shares)

    def apply(self, shares: Sequence[Fraction]) -> StepEvent:
        """Advance :class:`ExecState` one step and report it."""
        state = self.state
        had_work = tuple(state.is_active(i) for i in range(self._m))
        outcome = state.apply(shares)
        progressed = bool(outcome.completed) or any(
            p > ZERO for p in outcome.processed
        )
        return StepEvent(
            t=state.t - 1,
            shares=shares,
            processed=outcome.processed,
            completed=outcome.completed,
            had_work=had_work,
            progressed=progressed,
        )

    def describe_progress(self) -> str:
        """Completed-job counts, for limit-error messages."""
        return f"done={self.state.done}"

    def capture(self) -> dict:
        """Serializable snapshot of the runtime's mutable state."""
        return self.state.capture()

    def restore(self, data: dict) -> None:
        """Overwrite the runtime's state from a :meth:`capture` payload."""
        self.state.restore(data)


class TelemetryObserver(StepObserver):
    """Kernel step metrics for one run (auto-attached under telemetry).

    Records the run-level figures every future perf PR regressions
    against: a ``kernel.steps`` counter, ``kernel.completions``, a
    ``kernel.job_wait_steps`` histogram (completion step minus the
    processor's release -- the queue-wait distribution), and on finish
    the run wall time (``kernel.run_seconds`` histogram, the
    denominator of hot-spot attribution) plus a
    ``kernel.steps_per_second`` gauge.

    Args:
        session: the telemetry session receiving the metrics.
        instance: the instance the run executes (for release times).
    """

    __slots__ = ("_steps", "_completions", "_waits", "_runs", "_sps", "_run_hist", "_releases", "_t0")

    def __init__(self, session: "TelemetrySession", instance: Instance) -> None:
        metrics = session.metrics
        self._steps = metrics.counter("kernel.steps")
        self._completions = metrics.counter("kernel.completions")
        self._waits = metrics.histogram("kernel.job_wait_steps")
        self._run_hist = metrics.histogram("kernel.run_seconds")
        self._runs = metrics.counter("kernel.runs")
        self._sps = metrics.gauge("kernel.steps_per_second")
        self._releases = instance.releases
        self._t0 = perf_counter()

    def on_step(self, event: StepEvent) -> None:
        """Count the executed step."""
        self._steps.inc()

    def on_complete(self, job: "JobId", t: int) -> None:
        """Count the completion and record its queue wait."""
        self._completions.inc()
        self._waits.observe(t + 1 - self._releases[job[0]])

    def on_finish(self, makespan: int) -> None:
        """Record run wall time and throughput."""
        wall = perf_counter() - self._t0
        self._run_hist.observe(wall)
        self._runs.inc()
        if wall > 0:
            self._sps.set(makespan / wall)


class _TimedObserver(StepObserver):
    """Time one observer's callbacks into the observers histogram.

    Wrapping each observer separately (instead of timing the dispatch
    loop once) keeps the attribution honest when observers are nested
    or added by different layers; ``wrapped`` exposes the original for
    error reporting.
    """

    __slots__ = ("wrapped", "_hist")

    def __init__(self, observer: StepObserver, hist) -> None:
        self.wrapped = observer
        self._hist = hist

    def on_step(self, event: StepEvent) -> None:
        """Forward and time the step callback."""
        t0 = perf_counter()
        self.wrapped.on_step(event)
        self._hist.observe(perf_counter() - t0)

    def on_complete(self, job: "JobId", t: int) -> None:
        """Forward and time the completion callback."""
        t0 = perf_counter()
        self.wrapped.on_complete(job, t)
        self._hist.observe(perf_counter() - t0)

    def on_finish(self, makespan: int) -> None:
        """Forward and time the finish callback."""
        t0 = perf_counter()
        self.wrapped.on_finish(makespan)
        self._hist.observe(perf_counter() - t0)


class _InstrumentedRuntime(KernelRuntime):
    """Phase-timing proxy around a runtime (installed-session runs).

    Pure delegation plus two ``perf_counter`` reads per phase: query,
    check, and apply land in per-phase metrics histograms (query
    labelled by policy -- the per-policy query-latency series) and,
    when the tracer is live, per-step ``kernel.step.*`` span records.
    The proxy never touches shares or state, so instrumented runs stay
    bit-identical (the golden-with-tracing suite pins this).
    """

    __slots__ = ("instance", "_rt", "_tracer", "_trace_steps", "_q", "_c", "_a")

    def __init__(self, runtime: KernelRuntime, session: "TelemetrySession", policy_label: str) -> None:
        self._rt = runtime
        self.instance = runtime.instance
        self._tracer = session.tracer
        self._trace_steps = session.tracer.enabled
        metrics = session.metrics
        self._q = metrics.histogram("kernel.query_seconds", policy=policy_label)
        self._c = metrics.histogram("kernel.check_seconds")
        self._a = metrics.histogram("kernel.apply_seconds")

    @property
    def t(self) -> int:
        """Delegate to the wrapped runtime."""
        return self._rt.t

    @property
    def all_done(self) -> bool:
        """Delegate to the wrapped runtime."""
        return self._rt.all_done

    @property
    def waiting(self) -> bool:
        """Delegate to the wrapped runtime."""
        return self._rt.waiting

    def begin_step(self) -> None:
        """Delegate to the wrapped runtime."""
        self._rt.begin_step()

    def query(self, policy) -> Sequence[Any]:
        """Time the policy query into metrics (and the tracer)."""
        t0 = perf_counter()
        shares = self._rt.query(policy)
        dt = perf_counter() - t0
        self._q.observe(dt)
        if self._trace_steps:
            self._tracer.complete("kernel.step.query", t0, dt, t=self._rt.t)
        return shares

    def check(self, shares: Sequence[Any]) -> None:
        """Time the feasibility check into metrics (and the tracer)."""
        t0 = perf_counter()
        self._rt.check(shares)
        dt = perf_counter() - t0
        self._c.observe(dt)
        if self._trace_steps:
            self._tracer.complete("kernel.step.check", t0, dt, t=self._rt.t)

    def apply(self, shares: Sequence[Any]) -> StepEvent:
        """Time the state advance into metrics (and the tracer)."""
        t0 = perf_counter()
        event = self._rt.apply(shares)
        dt = perf_counter() - t0
        self._a.observe(dt)
        if self._trace_steps:
            self._tracer.complete(
                "kernel.step.apply",
                t0,
                dt,
                t=event.t,
                completed=len(event.completed),
            )
        return event

    def describe_progress(self) -> str:
        """Delegate to the wrapped runtime."""
        return self._rt.describe_progress()


def _log_heartbeat(runtime: KernelRuntime, waited: int, label: str) -> None:
    """Structured stall warning: the run is alive but waiting."""
    detail = runtime.describe_progress()
    _KERNEL_LOG.warning(
        "%s waiting on releases: %d consecutive zero-progress steps at "
        "t=%d%s",
        label,
        waited,
        runtime.t,
        f" ({detail})" if detail else "",
    )


def _kernel_loop(
    runtime: KernelRuntime,
    policy,
    observers: tuple[StepObserver, ...],
    limit: int,
    stall_limit: int,
    label: str,
    heartbeat_interval: int | None,
    heartbeat,
    stop=None,
) -> int | None:
    """The one step loop (shared by the plain and instrumented paths)."""
    stalled = 0
    waited = 0
    while not runtime.all_done:
        if stop is not None and stop(runtime):
            # Suspended at an event boundary: the state is consistent
            # (no partial step), on_finish is NOT dispatched, and the
            # run can be continued bit-identically (checkpoint layer).
            return None
        if runtime.t >= limit:
            detail = runtime.describe_progress()
            raise SimulationLimitError(
                f"{label} did not finish within {limit} steps"
                + (f" ({detail})" if detail else "")
            )
        runtime.begin_step()
        shares = runtime.query(policy)
        runtime.check(shares)
        event = runtime.apply(shares)
        observer: StepObserver | None = None
        try:
            for observer in observers:
                observer.on_step(event)
            if event.completed:
                for job in event.completed:
                    for observer in observers:
                        observer.on_complete(job, event.t)
        except Exception as exc:
            raise _observer_error(observer, f"step {event.t}", exc) from exc
        if event.progressed:
            stalled = 0
            waited = 0
        elif runtime.waiting:
            # Legitimate waiting on a future release -- not a stall,
            # but not silent either: emit a structured heartbeat so a
            # long wait (or a release-time bug) is visible.
            stalled = 0
            waited += 1
            if heartbeat_interval and waited % heartbeat_interval == 0:
                heartbeat(runtime, waited, label)
        else:
            stalled += 1
            if stalled >= stall_limit:
                raise SimulationLimitError(
                    f"{label} made no progress for {stalled} consecutive "
                    f"steps (t={runtime.t}); aborting"
                )

    makespan = runtime.t
    observer = None
    try:
        for observer in observers:
            observer.on_finish(makespan)
    except Exception as exc:
        raise _observer_error(
            observer, f"finish (makespan={makespan})", exc
        ) from exc
    return makespan


def _observer_error(
    observer: StepObserver | None, where: str, exc: Exception
) -> ObserverError:
    """Build the :class:`ObserverError` for one failed callback."""
    target = getattr(observer, "wrapped", observer)
    name = type(target).__name__ if target is not None else "<none>"
    return ObserverError(
        f"observer {name} raised {type(exc).__name__} at {where}: {exc}"
    )


def run_kernel(
    runtime: KernelRuntime,
    policy,
    observers: Iterable[StepObserver] = (),
    *,
    max_steps: int | None = None,
    stall_limit: int = 3,
    label: str = "policy",
    heartbeat_interval: int | None = 64,
    stop=None,
) -> int | None:
    """Drive *policy* through *runtime* until every job is finished.

    Args:
        runtime: the arithmetic adapter owning the execution state.
        policy: the resource-assignment policy (queried via
            ``runtime.query``, so exact runtimes call ``policy(state)``
            and the vector runtime calls ``policy.shares_array``).
        observers: telemetry hooks, notified in the given order.  An
            exception escaping an observer callback is re-raised as
            :class:`~repro.exceptions.ObserverError` (original
            chained); the step it interrupted has already fully
            applied, so the runtime state stays consistent.
        max_steps: hard safety limit (default
            :func:`~repro.core.simulator.default_step_limit` of the
            runtime's instance, which accounts for release times).
        stall_limit: abort after this many *consecutive* steps with no
            progress while no processor is waiting on a release -- the
            signature of a policy that will never terminate.
        label: subject of error messages ("policy", "workload").
        heartbeat_interval: while the run is legitimately *waiting*
            (zero progress, unreleased processors pending), emit a
            structured warning on the ``repro.kernel`` logger -- plus a
            ``kernel.heartbeat`` trace event under telemetry -- every
            this-many waiting steps, so stalls are never silent.
            ``None``/``0`` disables the heartbeat.
        stop: optional suspension predicate ``stop(runtime) -> bool``,
            evaluated before each step.  When it returns True the loop
            returns ``None`` *without* dispatching ``on_finish`` -- the
            runtime sits at a clean step boundary and can be resumed
            (same runtime, or a checkpoint restored through
            :mod:`repro.core.checkpoint`) by calling :func:`run_kernel`
            again; the continued run is bit-identical to an
            uninterrupted one.  The event engine of
            :mod:`repro.service` advances to each arrival this way.

    When a :class:`~repro.telemetry.TelemetrySession` is installed
    (:func:`repro.telemetry.use_session`), the run is instrumented: a
    ``kernel.run`` span wraps the loop, every step phase
    (query/check/apply/observers) is timed into metrics histograms
    (query latency labelled per policy), and a
    :class:`TelemetryObserver` records steps, completions, queue waits
    and throughput.  With no session installed the loop runs
    uninstrumented -- telemetry costs one global read per run
    (``benchmarks/bench_telemetry_overhead.py`` gates the disabled
    path at <= 2% overhead).  Instrumentation never alters arithmetic
    or control flow: traced runs are bit-identical to untraced ones.

    Returns:
        The makespan (number of executed steps).

    Raises:
        InfeasibleAssignmentError: if the policy emits an invalid
            share vector (via ``runtime.check``).
        SimulationLimitError: if a limit is exceeded.
        ObserverError: if an observer callback raises.

    Example:
        >>> from repro.core import Instance
        >>> from repro.algorithms import RoundRobin
        >>> inst = Instance.from_percent([[100], [100]])
        >>> run_kernel(ExactRuntime(inst), RoundRobin())
        2
    """
    if max_steps is None:
        from .simulator import default_step_limit  # circular-free: lazy

        limit = default_step_limit(runtime.instance)
    else:
        limit = max_steps
    observers = tuple(observers)
    session = get_session()
    if session is None:
        # The zero-cost path: no per-step telemetry work at all.
        return _kernel_loop(
            runtime,
            policy,
            observers,
            limit,
            stall_limit,
            label,
            heartbeat_interval,
            _log_heartbeat,
            stop,
        )

    tracer = session.tracer
    metrics = session.metrics
    policy_label = str(getattr(policy, "name", type(policy).__name__))
    obs_hist = metrics.histogram("kernel.observers_seconds")
    instrumented = _InstrumentedRuntime(runtime, session, policy_label)
    wrapped = tuple(
        _TimedObserver(obs, obs_hist)
        for obs in (*observers, TelemetryObserver(session, runtime.instance))
    )

    def _heartbeat(rt: KernelRuntime, waited: int, lbl: str) -> None:
        _log_heartbeat(rt, waited, lbl)
        tracer.event(
            "kernel.heartbeat",
            t=rt.t,
            waited=waited,
            label=lbl,
            detail=rt.describe_progress(),
        )
        metrics.counter("kernel.heartbeats").inc()

    with tracer.span(
        "kernel.run",
        label=label,
        policy=policy_label,
        runtime=type(runtime).__name__,
        m=runtime.instance.num_processors,
        jobs=runtime.instance.total_jobs,
        resources=runtime.instance.num_resources,
    ) as span:
        makespan = _kernel_loop(
            instrumented,
            policy,
            wrapped,
            limit,
            stall_limit,
            label,
            heartbeat_interval,
            _heartbeat,
            stop,
        )
        span.note(
            makespan=makespan,
            **({} if makespan is not None else {"suspended_at": runtime.t}),
        )
    return makespan
