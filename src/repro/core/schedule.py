"""Schedules for CRSharing (Section 3.1).

A feasible schedule is, per the paper, a family of resource assignment
functions :math:`R_i : \\mathbb{N} \\to [0,1]` with
:math:`\\sum_i R_i(t) \\le 1` for every time step.  At each step,
processor *i* uses its share to process its first unfinished job.

:class:`Schedule` stores the share vectors and *executes* them against
the instance (in exact arithmetic, using the alternative
variable-speed interpretation of Section 3.1): it derives, per step,
which job is active on each processor, how much work it processes, and
when every job starts and completes.  All downstream analysis --
property checks (Section 4.1), the scheduling hypergraph (Section 3.2),
lower bounds (Lemmas 5/6) -- is computed from this one artifact, so
online policies and offline exact algorithms are directly comparable.

Step indices are 0-based in code; the paper is 1-based.  Rendering
helpers add 1 where appropriate.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from ..exceptions import InvalidScheduleError
from .instance import Instance
from .job import JobId
from .numerics import Num, ONE, ZERO, format_frac, frac_sum, to_frac

__all__ = ["Schedule", "StepExecution"]


class StepExecution:
    """Execution record of one time step (derived, read-only).

    Attributes:
        shares: the resource share granted to each processor.
        active: per processor, the index of the job processed this
            step, or ``None`` if the processor had already finished.
        processed: per processor, the amount of *work*
            (remaining-requirement units, cf. Eq. (2)) actually
            processed this step.
        useful: total work processed over all processors; the step's
            wasted resource is ``1 - useful`` for non-terminal steps of
            a non-wasting schedule (Lemma 5's accounting).
    """

    __slots__ = ("shares", "active", "processed")

    def __init__(
        self,
        shares: tuple[Fraction, ...],
        active: tuple[int | None, ...],
        processed: tuple[Fraction, ...],
    ) -> None:
        self.shares = shares
        self.active = active
        self.processed = processed

    @property
    def useful(self) -> Fraction:
        """Total work processed over all processors this step."""
        return frac_sum(self.processed)

    @property
    def assigned(self) -> Fraction:
        """Total resource assigned this step (``<= 1`` when feasible)."""
        return frac_sum(self.shares)

    @property
    def waste(self) -> Fraction:
        """Capacity not converted into work this step (``1 - useful``)."""
        return ONE - self.useful


class Schedule:
    """A (validated) schedule for a CRSharing instance.

    Args:
        instance: the problem instance the schedule is for.
        shares: one share vector per time step; each vector has one
            entry per processor.  Entries are converted to exact
            rationals.
        validate: when True (default), raise
            :class:`~repro.exceptions.InvalidScheduleError` if any step
            overuses the resource, any share is outside ``[0,1]``, or
            the schedule does not finish all jobs.
        trim: when True (default), drop trailing steps in which no work
            is processed (they only inflate the makespan and every
            transformation in the paper implicitly removes them).

    Raises:
        InvalidScheduleError: see ``validate``.
    """

    __slots__ = (
        "_instance",
        "_steps",
        "_completion",
        "_start",
        "_jobs_done_before",
        "_final_done_counts",
    )

    def __init__(
        self,
        instance: Instance,
        shares: Iterable[Sequence[Num]],
        *,
        validate: bool = True,
        trim: bool = True,
    ) -> None:
        instance.require_single_resource("Schedule")
        m = instance.num_processors
        rows: list[tuple[Fraction, ...]] = []
        for t, row in enumerate(shares):
            vec = tuple(to_frac(x) for x in row)
            if len(vec) != m:
                raise InvalidScheduleError(
                    f"step {t}: share vector has {len(vec)} entries, expected {m}"
                )
            rows.append(vec)
        self._instance = instance
        self._steps: list[StepExecution] = []
        self._completion: dict[JobId, int] = {}
        self._start: dict[JobId, int] = {}
        self._jobs_done_before: list[tuple[int, ...]] = []
        self._execute(rows, validate=validate, trim=trim)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(
        self, rows: list[tuple[Fraction, ...]], *, validate: bool, trim: bool
    ) -> None:
        from .state import ExecState  # local import to avoid a module cycle

        inst = self._instance
        m = inst.num_processors
        state = ExecState(inst)

        for t, vec in enumerate(rows):
            if validate:
                total = frac_sum(vec)
                if total > ONE:
                    raise InvalidScheduleError(
                        f"step {t}: resource overused (sum of shares = "
                        f"{format_frac(total)} > 1)"
                    )
                for i, x in enumerate(vec):
                    if x < ZERO or x > ONE:
                        raise InvalidScheduleError(
                            f"step {t}: share for processor {i} is "
                            f"{format_frac(x)}, outside [0, 1]"
                        )
            self._jobs_done_before.append(tuple(state.done))
            outcome = state.apply(vec)
            for jid in outcome.started:
                self._start.setdefault(jid, t)
            for jid in outcome.completed:
                self._completion[jid] = t
            self._steps.append(StepExecution(vec, outcome.active, outcome.processed))
        done = state.done

        if trim:
            while self._steps and self._steps[-1].useful == ZERO:
                removed_t = len(self._steps) - 1
                # No job starts/completes in a zero-work step except
                # zero-work jobs; keep those steps.
                if any(t == removed_t for t in self._completion.values()):
                    break
                self._steps.pop()
                self._jobs_done_before.pop()

        # Trimmed steps never contain completions, so `done` is final.
        self._final_done_counts = tuple(done)

        if validate:
            for i in range(m):
                if done[i] < inst.num_jobs(i):
                    raise InvalidScheduleError(
                        f"schedule ends after {len(self._steps)} steps but "
                        f"processor {i} still has "
                        f"{inst.num_jobs(i) - done[i]} unfinished job(s)"
                    )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def instance(self) -> Instance:
        """The instance this schedule was validated against."""
        return self._instance

    @property
    def makespan(self) -> int:
        """Number of time steps until all jobs are finished."""
        return len(self._steps)

    def __len__(self) -> int:
        return len(self._steps)

    @property
    def steps(self) -> tuple[StepExecution, ...]:
        """All per-step execution records, in time order."""
        return tuple(self._steps)

    def step(self, t: int) -> StepExecution:
        """The execution record of step *t* (0-based)."""
        return self._steps[t]

    def share(self, t: int, processor: int) -> Fraction:
        """``R_i(t)`` with 0-based step index."""
        return self._steps[t].shares[processor]

    def share_rows(self) -> list[list[Fraction]]:
        """The raw share matrix (steps x processors), e.g. for serialization."""
        return [list(s.shares) for s in self._steps]

    # ------------------------------------------------------------------
    # Paper quantities
    # ------------------------------------------------------------------
    def jobs_completed_before(self, t: int, processor: int) -> int:
        """``j_i(t)`` -- jobs finished on *processor* before step *t*.

        0-based *t*; ``t == makespan`` is allowed and returns the
        final counts.
        """
        if t == len(self._steps):
            return self._final_done()[processor]
        return self._jobs_done_before[t][processor]

    def jobs_remaining(self, t: int, processor: int) -> int:
        """``n_i(t)`` -- unfinished jobs on *processor* entering step *t*.

        Paper notation, shifted to 0-based steps.
        """
        return self._instance.num_jobs(processor) - self.jobs_completed_before(t, processor)

    def _final_done(self) -> tuple[int, ...]:
        return self._final_done_counts

    def is_active(self, t: int, processor: int) -> bool:
        """True iff *processor* still has unfinished jobs at step *t*."""
        return self.jobs_remaining(t, processor) > 0

    def active_job(self, t: int, processor: int) -> int | None:
        """Index of the job processed by *processor* at step *t*.

        The first unfinished one; ``None`` if the processor is done.
        """
        return self._steps[t].active[processor]

    def active_jobs(self, t: int) -> tuple[JobId, ...]:
        """The hyperedge ``e_t`` -- all active jobs at step *t*.

        Section 3.2's edge, as ``(processor, job_index)`` pairs.
        """
        out = []
        for i, j in enumerate(self._steps[t].active):
            if j is not None:
                out.append((i, j))
        return tuple(out)

    def start_step(self, processor: int, index: int) -> int:
        """``S(i, j)`` -- the step the job first receives resource.

        Definition 4's notion of *starting*.
        """
        return self._start[(processor, index)]

    def completion_step(self, processor: int, index: int) -> int:
        """``C(i, j)`` -- the step in which the job completes."""
        return self._completion[(processor, index)]

    @property
    def completion_steps(self) -> Mapping[JobId, int]:
        """Completion step per job id (``C`` as a mapping)."""
        return dict(self._completion)

    @property
    def completion_times(self) -> Mapping[JobId, int]:
        """1-based completion time per job id.

        The paper's :math:`C(i, j)` uses 1-based steps; this is
        ``completion_steps`` shifted by one, the form the objective
        layer's definitions (flow ``C - r``, lateness ``C - d``) are
        stated in.
        """
        return {jid: t + 1 for jid, t in self._completion.items()}

    def objective_value(self, objective):
        """Evaluate a pluggable objective on this schedule.

        Accepts an :class:`~repro.objectives.base.Objective` instance
        or a registry name (e.g. ``"weighted-flow"``); the makespan
        objective is pinned to return exactly :attr:`makespan`.
        """
        if isinstance(objective, str):
            from ..objectives import get_objective  # lazy: layered on core

            objective = get_objective(objective)
        return objective.value(self)

    def lateness_by_job(self) -> dict[JobId, int]:
        """Positive lateness ``C - d`` per *late* job.

        Only jobs completing after their due step appear; the mapping
        is empty for instances without deadlines.  The single source
        the renderers (deadline markers, lateness shading) and miss
        counts derive from.
        """
        late: dict[JobId, int] = {}
        if not self._instance.has_deadlines:
            return late
        for (i, j), t in self._completion.items():
            deadline = self._instance.job(i, j).deadline
            if deadline is not None and t + 1 > deadline:
                late[(i, j)] = t + 1 - deadline
        return late

    @property
    def start_steps(self) -> Mapping[JobId, int]:
        """Start step per job id (``S`` as a mapping)."""
        return dict(self._start)

    def finishes_job_at(self, t: int) -> tuple[JobId, ...]:
        """All jobs completing during step *t*."""
        return tuple(jid for jid, ct in self._completion.items() if ct == t)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_waste(self) -> Fraction:
        """Total capacity not converted into work, summed over steps."""
        return frac_sum(s.waste for s in self._steps)

    def utilization(self) -> Fraction:
        """Average fraction of capacity converted into work."""
        if not self._steps:
            return ZERO
        return frac_sum(s.useful for s in self._steps) / len(self._steps)

    def resource_given(self, processor: int, index: int) -> Fraction:
        """Work processed for one job over its lifetime.

        Equals the job's work :math:`\\tilde p` in a valid complete
        schedule.
        """
        total = ZERO
        for t, s in enumerate(self._steps):
            if s.active[processor] == index:
                total += s.processed[processor]
        return total

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return (
            self._instance == other._instance
            and [s.shares for s in self._steps] == [s.shares for s in other._steps]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule(m={self._instance.num_processors}, "
            f"makespan={self.makespan})"
        )
