"""Instance generators: canonical figures, adversarial families,
random families, and synthetic many-core workloads."""

from .random_instances import (
    bimodal_instance,
    general_size_instance,
    heavy_tail_instance,
    ragged_instance,
    sample_arrivals,
    uniform_instance,
    with_arrivals,
)
from .workloads import Phase, TaskSpec, make_io_workload, tasks_to_instance
from .worst_case import (
    fig1_instance,
    fig2_instance,
    fig2_nested_schedule,
    fig2_unnested_schedule,
    greedy_balance_adversarial,
    greedy_balance_witness_schedule,
    max_blocks,
    round_robin_adversarial,
    round_robin_optimal_schedule,
)

__all__ = [
    "Phase",
    "TaskSpec",
    "bimodal_instance",
    "fig1_instance",
    "fig2_instance",
    "fig2_nested_schedule",
    "fig2_unnested_schedule",
    "general_size_instance",
    "greedy_balance_adversarial",
    "greedy_balance_witness_schedule",
    "heavy_tail_instance",
    "make_io_workload",
    "max_blocks",
    "ragged_instance",
    "round_robin_adversarial",
    "round_robin_optimal_schedule",
    "sample_arrivals",
    "tasks_to_instance",
    "uniform_instance",
    "with_arrivals",
]
