"""Synthetic many-core I/O workloads (the paper's Section 1 motivation).

The paper motivates CRSharing with many-core chips whose cores share a
single data bus: I/O-intensive scientific tasks progress at the rate
the bus feeds them.  No trace data ships with the paper, so (per the
reproduction's substitution rule) we model tasks as sequences of
*phases* -- each phase a bandwidth demand plus a data volume -- and
generate workload mixes spanning the regimes the introduction
describes: streaming (sustained high bandwidth), bursty (alternating
compute/IO), and compute-dominated tasks.

A :class:`TaskSpec` converts to the processor queue of a CRSharing
instance: each phase becomes one job whose requirement is the
bandwidth demand and whose size is the phase length (in steps at full
speed).  ``unit_split=True`` chops phases into unit-size jobs so the
exact algorithms (Sections 5-8) apply.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction

from ..core.instance import Instance
from ..core.job import Job
from ..core.numerics import Num, to_frac

__all__ = ["Phase", "TaskSpec", "tasks_to_instance", "make_io_workload"]


@dataclass(frozen=True, slots=True)
class Phase:
    """One task phase: constant bandwidth demand for a data volume.

    Attributes:
        bandwidth: fraction of the shared bus needed to run at full
            speed (the job's resource requirement).
        duration: length of the phase in time steps at full speed (the
            job's processing volume).
    """

    bandwidth: Fraction
    duration: int

    def __init__(self, bandwidth: Num, duration: int = 1) -> None:
        bw = to_frac(bandwidth)
        if duration < 1:
            raise ValueError(f"phase duration must be >= 1, got {duration}")
        object.__setattr__(self, "bandwidth", bw)
        object.__setattr__(self, "duration", int(duration))


@dataclass(frozen=True, slots=True)
class TaskSpec:
    """A named task: an ordered sequence of phases pinned to one core.

    Attributes:
        name: human-readable task label.
        phases: the ordered phases.
        start: step at which the task arrives on its core (its release
            time in the CRSharing instance).  Default 0 -- the paper's
            static model where every task is present from the start.
    """

    name: str
    phases: tuple[Phase, ...]
    start: int

    def __init__(self, name: str, phases, start: int = 0) -> None:
        object.__setattr__(self, "name", str(name))
        object.__setattr__(self, "phases", tuple(phases))
        if not self.phases:
            raise ValueError(f"task {name!r} has no phases")
        if start < 0:
            raise ValueError(f"task {name!r} has negative start {start}")
        object.__setattr__(self, "start", int(start))

    @property
    def total_volume(self) -> int:
        return sum(p.duration for p in self.phases)


def tasks_to_instance(tasks: list[TaskSpec], *, unit_split: bool = True) -> Instance:
    """Convert one task per core into a CRSharing instance.

    Task start offsets become the instance's per-processor release
    times (all zero for the static model).

    Args:
        tasks: one task per processor, in core order.
        unit_split: when True (default) each phase of duration ``d``
            becomes ``d`` unit-size jobs with the phase's bandwidth
            (the restriction analyzed in the paper); when False each
            phase maps to a single job of size ``d``.
    """
    rows: list[list[Job]] = []
    for task in tasks:
        row: list[Job] = []
        for phase in task.phases:
            if unit_split:
                row.extend(Job(phase.bandwidth) for _ in range(phase.duration))
            else:
                row.append(Job(phase.bandwidth, phase.duration))
        rows.append(row)
    releases = [task.start for task in tasks]
    return Instance(rows, releases=releases if any(releases) else None)


def make_io_workload(
    num_cores: int,
    *,
    phases_per_task: tuple[int, int] = (3, 6),
    streaming_fraction: float = 0.3,
    bursty_fraction: float = 0.4,
    grid: int = 100,
    max_start: int = 0,
    seed: int | None = None,
) -> list[TaskSpec]:
    """A mixed many-core workload: streaming, bursty and compute tasks.

    * **streaming**: long phases at 40-90% bus demand (e.g. checkpoint
      writers, data ingest);
    * **bursty**: alternating compute (1-10%) and I/O (50-100%) phases
      (e.g. iterative solvers with snapshot output);
    * **compute**: low demand throughout (5-20%).

    Fractions are over cores; the remainder are compute tasks.  With
    ``max_start > 0`` each task additionally receives a uniform random
    start offset in ``0..max_start`` (phased online arrivals); the
    default of 0 keeps the static workload and the random stream of
    existing seeds unchanged.
    """
    if num_cores < 1:
        raise ValueError("need at least one core")
    rng = random.Random(seed)
    # Starts come from a separate stream so a given seed produces the
    # same phases at every arrival spread (and none is drawn at all
    # for the static default, keeping pre-arrival seeds byte-stable).
    start_rng = random.Random(None if seed is None else seed + 0x9E3779B9)
    tasks: list[TaskSpec] = []
    n_stream = round(num_cores * streaming_fraction)
    n_bursty = round(num_cores * bursty_fraction)

    def n_phases() -> int:
        return rng.randint(*phases_per_task)

    def bw(lo: int, hi: int) -> Fraction:
        return Fraction(rng.randint(lo, hi), grid)

    for c in range(num_cores):
        if c < n_stream:
            phases = [
                Phase(bw(40, 90), rng.randint(2, 4)) for _ in range(n_phases())
            ]
            kind = "stream"
        elif c < n_stream + n_bursty:
            phases = []
            for p in range(n_phases()):
                if p % 2 == 0:
                    phases.append(Phase(bw(1, 10), rng.randint(1, 3)))
                else:
                    phases.append(Phase(bw(50, 100), 1))
            kind = "bursty"
        else:
            phases = [
                Phase(bw(5, 20), rng.randint(1, 3)) for _ in range(n_phases())
            ]
            kind = "compute"
        start = start_rng.randint(0, max_start) if max_start > 0 else 0
        tasks.append(TaskSpec(f"{kind}-{c}", phases, start=start))
    return tasks
