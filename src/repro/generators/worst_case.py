"""Adversarial and canonical instances from the paper's figures.

* :func:`fig1_instance` / :func:`fig2_instance` -- the worked examples
  of Figures 1 and 2 (exact requirement values from the figures);
* :func:`fig2_nested_schedule` / :func:`fig2_unnested_schedule` -- the
  two hand-built schedules of Figure 2b/2c;
* :func:`round_robin_adversarial` -- the Theorem 3 lower-bound family
  (Figure 3) driving RoundRobin to ratio 2;
* :func:`greedy_balance_adversarial` -- the Theorem 8 block family
  (Figure 5) driving GreedyBalance to ratio 2 - 1/m, together with
  :func:`greedy_balance_witness_schedule`, an explicit near-optimal
  schedule exploiting the construction's unit diagonals.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.instance import Instance
from ..core.numerics import ONE, ZERO, to_frac
from ..core.schedule import Schedule

__all__ = [
    "fig1_instance",
    "fig2_instance",
    "fig2_nested_schedule",
    "fig2_unnested_schedule",
    "round_robin_adversarial",
    "round_robin_optimal_schedule",
    "greedy_balance_adversarial",
    "greedy_balance_witness_schedule",
    "max_blocks",
]


# ----------------------------------------------------------------------
# Figures 1 and 2: worked examples
# ----------------------------------------------------------------------
def fig1_instance() -> Instance:
    """The 3-processor example of Figure 1 (labels in percent)."""
    return Instance.from_percent(
        [
            [20, 10, 10, 10],
            [50, 55, 90, 55, 10],
            [50, 40, 95],
        ]
    )


def fig2_instance() -> Instance:
    """The Figure 2 input: four 50% jobs against two 100% jobs."""
    return Instance.from_percent([[50, 50, 50, 50], [100], [100]])


def fig2_nested_schedule() -> Schedule:
    """Figure 2b: the nested schedule (p1's job completes before p2's
    starts)."""
    h = Fraction(1, 2)
    rows = [
        (h, h, ZERO),
        (h, h, ZERO),
        (h, ZERO, h),
        (h, ZERO, h),
    ]
    return Schedule(fig2_instance(), rows)


def fig2_unnested_schedule() -> Schedule:
    """Figure 2c: non-wasting and progressive, but p1's job is still
    running when p2's starts and completes first -- not nested."""
    h = Fraction(1, 2)
    rows = [
        (h, h, ZERO),
        (h, ZERO, h),
        (h, h, ZERO),
        (h, ZERO, h),
    ]
    return Schedule(fig2_instance(), rows)


# ----------------------------------------------------------------------
# Figure 3 / Theorem 3: RoundRobin worst case
# ----------------------------------------------------------------------
def round_robin_adversarial(n: int) -> Instance:
    """The Theorem 3 lower-bound family on two processors.

    With ``eps = 1/n``: ``r_{1j} = j*eps`` and ``r_{2j} = 1+eps-r_{1j}``.
    Every phase total is ``1 + eps``, so RoundRobin needs two steps per
    phase (``2n`` total), while pairing ``(1,j)`` with ``(2,j+1)``
    yields exactly-full steps and an optimal makespan of ``n + 1``.
    """
    if n < 1:
        raise ValueError("n must be positive")
    eps = Fraction(1, n)
    row1 = [j * eps for j in range(1, n + 1)]
    row2 = [ONE + eps - r for r in row1]
    return Instance.from_requirements([row1, row2])


def round_robin_optimal_schedule(n: int) -> Schedule:
    """The (n+1)-step optimal schedule of Figure 3a.

    Step 1 runs ``(2,1)`` alone (requirement exactly 1); step ``t`` for
    ``t = 2..n`` pairs ``(1,t-1)`` with ``(2,t)`` (requirements sum to
    exactly 1); step ``n+1`` runs ``(1,n)`` alone (requirement 1).
    """
    inst = round_robin_adversarial(n)
    rows = [(ZERO, inst.requirement(1, 0))]
    for j in range(1, n):
        rows.append((inst.requirement(0, j - 1), inst.requirement(1, j)))
    rows.append((inst.requirement(0, n - 1), ZERO))
    return Schedule(inst, rows)


# ----------------------------------------------------------------------
# Figure 5 / Theorem 8: GreedyBalance worst case
# ----------------------------------------------------------------------
def max_blocks(m: int, epsilon: Fraction) -> int:
    """How many complete blocks the Theorem 8 construction supports
    before a requirement would leave ``[0, 1]``.

    Per block, the bottom-left requirement drops by ``m(m-1)*eps`` (and
    the top second-column one rises by the same amount), starting from
    ``1 - m*eps`` (block 1's lowest) -- we generate while everything
    stays within bounds.
    """
    if m < 2:
        raise ValueError("the construction needs m >= 2")
    blocks = 1
    while True:
        drop = blocks * m * (m - 1) * epsilon
        # Bottom value of the next block's first column and top value
        # of its second column must stay in [0, 1].
        if ONE - (m - 1) * epsilon - drop < ZERO:
            return blocks
        if (m * (m - 1) + 1) * epsilon + drop > ONE:
            return blocks
        blocks += 1


def greedy_balance_adversarial(
    m: int, blocks: int, epsilon: Fraction | None = None
) -> Instance:
    """The Theorem 8 block construction (Figure 5 for m=3, eps=1/100).

    Each block spans ``m`` columns:

    * block 1, column 1: ``r_{i,1} = 1 - i*eps``;
    * every later block's column 1: ``r = 1 - (m-1)*eps`` for rows
      ``1..m-1`` and the bottom row completes the up-left diagonal
      (through the previous block's tail) to exactly 1;
    * every block's column 2, row 1: the column-1 deficits plus eps
      (``sum_i (1 - r_{i,1}) + eps``); rows ``2..m`` get ``eps``;
    * remaining columns: all ``eps``.

    GreedyBalance spends ``m`` steps clearing each block's first column
    (balancing forbids running ahead) and one step per remaining
    column: ``2m - 1`` steps per block.  An optimal schedule rides the
    unit diagonals and needs essentially ``m`` steps per block
    (:func:`greedy_balance_witness_schedule`), so the ratio approaches
    ``2 - 1/m``.

    Note: the journal listing's column-2 formula reads
    ``1 - sum(1 - r) + eps``; the figure's values (7/13/19 percent for
    m=3) match ``sum(1 - r) + eps``, which is also what makes the
    diagonals sum to exactly 1 -- we implement the latter.

    Raises:
        ValueError: if the requested number of blocks does not fit the
            epsilon (see :func:`max_blocks`).
    """
    if m < 2:
        raise ValueError("the construction needs m >= 2")
    if blocks < 1:
        raise ValueError("need at least one block")
    if epsilon is None:
        # Small enough for the requested number of blocks.
        epsilon = Fraction(1, m * (m - 1) * (blocks + 1) + m + 1)
    eps = to_frac(epsilon)
    if not (ZERO < eps):
        raise ValueError("epsilon must be positive")
    if blocks > max_blocks(m, eps):
        raise ValueError(
            f"{blocks} blocks need a smaller epsilon "
            f"(max {max_blocks(m, eps)} at eps={eps})"
        )

    cols: list[list[Fraction]] = []  # cols[j][i] = requirement of (i, j)

    def add_block_tail(first_col: list[Fraction]) -> None:
        """Columns 2..m of a block, given its first column."""
        deficit = sum((ONE - r for r in first_col), ZERO)
        second = [deficit + eps] + [eps] * (m - 1)
        cols.append(second)
        for _ in range(m - 2):
            cols.append([eps] * m)

    # Block 1.
    first = [ONE - (i + 1) * eps for i in range(m)]
    cols.append(first)
    add_block_tail(first)

    # Blocks 2..blocks.
    for _ in range(blocks - 1):
        j = len(cols)  # 0-based index of the new block's first column
        col = [ONE - (m - 1) * eps for _ in range(m - 1)]
        # Bottom row: complete the up-left diagonal to exactly 1.
        diag = sum((cols[j - k][m - 1 - k] for k in range(1, m)), ZERO)
        col.append(ONE - diag)
        cols.append(col)
        add_block_tail(col)

    rows = [[cols[j][i] for j in range(len(cols))] for i in range(m)]
    for row in rows:
        for r in row:
            if not (ZERO <= r <= ONE):  # pragma: no cover - guarded above
                raise ValueError(f"construction produced requirement {r}")
    return Instance.from_requirements(rows)


def greedy_balance_witness_schedule(instance: Instance, m: int) -> Schedule:
    """A near-optimal diagonal schedule for the Theorem 8 construction.

    Step ``s`` (0-based) processes the up-left diagonal ending in the
    bottom row at column ``s``: job ``(m-1-k, s-k)`` for each valid
    ``k``.  All interior diagonals sum to exactly 1 by construction and
    tail diagonals are under-full; the early *boundary* diagonals,
    which climb through block 1's first column, carry
    ``1 + (2s - m) * eps`` -- over-full for ``s > m/2``.  Each overflow
    is repaired by prepaying the surplus of the diagonal's top job
    (that processor's *first* job, so it may legally receive resource
    in any earlier step, where its processor idles and the earliest
    diagonals have matching slack).  Total length: ``n + m - 1`` steps
    for ``n`` columns.
    """
    n = instance.max_jobs
    rows: list[list[Fraction]] = []
    for step in range(n + m - 1):
        row = [ZERO] * m
        for k in range(m):
            i = m - 1 - k  # 0-based processor (bottom row is m-1)
            j = step - k  # 0-based column
            if 0 <= j < n:
                row[i] = instance.requirement(i, j)
        rows.append(row)
    # Boundary repair, earliest overflowing diagonal first.  At step s
    # (< m) the top member is job (m-1-s, 0) -- the first job of a
    # processor that idles at all earlier steps.
    for s in range(1, m):
        excess = sum(rows[s], ZERO) - ONE
        if excess <= ZERO:
            continue
        top = m - 1 - s
        for t in range(s):
            if excess <= ZERO:
                break
            slack = ONE - sum(rows[t], ZERO)
            if slack > ZERO and rows[t][top] == ZERO:
                pay = min(slack, excess)
                rows[t][top] = pay
                rows[s][top] -= pay
                excess -= pay
        if excess > ZERO:  # pragma: no cover - slack always suffices
            raise ValueError("witness repair ran out of slack")
    return Schedule(instance, rows, validate=True, trim=True)
