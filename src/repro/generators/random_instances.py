"""Seeded random CRSharing instance families.

All generators emit requirements on an exact rational grid
(``k / grid`` with integer ``k``), so downstream exact arithmetic stays
fast (common denominators; see :mod:`repro.core.numerics`) and every
experiment is reproducible from its seed.
"""

from __future__ import annotations

import random
from fractions import Fraction

from ..core.instance import Instance
from ..core.job import Job

__all__ = [
    "uniform_instance",
    "bimodal_instance",
    "ragged_instance",
    "heavy_tail_instance",
    "general_size_instance",
    "sample_arrivals",
    "with_arrivals",
]


def _rng(seed: int | None) -> random.Random:
    return random.Random(seed)


def sample_arrivals(
    m: int,
    *,
    max_release: int,
    seed: int | None = None,
    pin_first: bool = True,
) -> tuple[int, ...]:
    """Sample per-processor release times uniformly on ``0..max_release``.

    Args:
        m: number of processors.
        max_release: the arrival spread (0 yields the static model).
        seed: RNG seed.  The sampler owns its own
            :class:`random.Random`; to keep release times statistically
            independent of a requirement stream, pass a seed
            decorrelated from the one that generated the requirements
            (as :func:`repro.backends.batch.make_campaign_instances`
            does).
        pin_first: force at least one processor to release at step 0
            (default), so the schedule never starts with a dead window
            that every policy waits through identically.
    """
    if max_release < 0:
        raise ValueError(f"max_release must be >= 0, got {max_release}")
    if max_release == 0:
        return (0,) * m
    rng = _rng(seed)
    releases = [rng.randint(0, max_release) for _ in range(m)]
    if pin_first and min(releases) > 0:
        releases[rng.randrange(m)] = 0
    return tuple(releases)


def with_arrivals(
    instance: Instance,
    *,
    max_release: int,
    seed: int | None = None,
) -> Instance:
    """Attach sampled release times to an existing instance.

    The arrival axis composes with every instance family: requirements
    come from the family's own seeded stream, release times from
    :func:`sample_arrivals`.  ``max_release=0`` returns the instance
    unchanged (bit-identical static model).
    """
    if max_release == 0:
        return instance
    return instance.with_releases(
        sample_arrivals(
            instance.num_processors, max_release=max_release, seed=seed
        )
    )


def uniform_instance(
    m: int,
    n: int,
    *,
    grid: int = 100,
    low: int = 1,
    high: int | None = None,
    seed: int | None = None,
) -> Instance:
    """``m`` processors x ``n`` unit jobs with requirements uniform on
    ``{low/grid, ..., high/grid}`` (defaults: 1%..100%)."""
    if high is None:
        high = grid
    if not 0 <= low <= high <= grid:
        raise ValueError(f"need 0 <= low <= high <= grid, got {low}, {high}, {grid}")
    rng = _rng(seed)
    return Instance.from_requirements(
        [
            [Fraction(rng.randint(low, high), grid) for _ in range(n)]
            for _ in range(m)
        ]
    )


def bimodal_instance(
    m: int,
    n: int,
    *,
    heavy_prob: float = 0.3,
    heavy_range: tuple[int, int] = (70, 100),
    light_range: tuple[int, int] = (1, 10),
    grid: int = 100,
    seed: int | None = None,
) -> Instance:
    """Hot/cold mixture: jobs are *heavy* (I/O-bound phases) with
    probability ``heavy_prob``, otherwise *light* (compute phases that
    barely touch the bus).  Mirrors the paper's motivating workloads
    where bandwidth-hungry phases alternate with compute."""
    rng = _rng(seed)

    def draw() -> Fraction:
        lo, hi = heavy_range if rng.random() < heavy_prob else light_range
        return Fraction(rng.randint(lo, hi), grid)

    return Instance.from_requirements(
        [[draw() for _ in range(n)] for _ in range(m)]
    )


def ragged_instance(
    m: int,
    n_range: tuple[int, int],
    *,
    grid: int = 100,
    seed: int | None = None,
) -> Instance:
    """Uniform requirements with *different* queue lengths per
    processor (exercises the ``M_j`` machinery and unbalanced cases)."""
    lo, hi = n_range
    if lo < 1 or hi < lo:
        raise ValueError(f"invalid queue-length range {n_range}")
    rng = _rng(seed)
    return Instance.from_requirements(
        [
            [Fraction(rng.randint(1, grid), grid) for _ in range(rng.randint(lo, hi))]
            for _ in range(m)
        ]
    )


def heavy_tail_instance(
    m: int,
    n: int,
    *,
    grid: int = 1000,
    seed: int | None = None,
) -> Instance:
    """Pareto-flavoured requirements (many tiny, a few near 1):
    ``r = min(1, 0.01 / u)`` for uniform ``u``, snapped to the grid.
    Stresses schedulers with high variance between jobs."""
    rng = _rng(seed)

    def draw() -> Fraction:
        u = rng.random()
        r = min(1.0, 0.01 / max(u, 1e-9))
        return Fraction(max(1, round(r * grid)), grid)

    return Instance.from_requirements(
        [[draw() for _ in range(n)] for _ in range(m)]
    )


def general_size_instance(
    m: int,
    n: int,
    *,
    grid: int = 100,
    max_size: int = 4,
    seed: int | None = None,
) -> Instance:
    """Non-unit-size instance for the general model (Section 3.1):
    requirements on the grid, integer sizes in ``1..max_size``.
    Exact algorithms reject it; the simulator and policies accept it."""
    rng = _rng(seed)
    return Instance(
        [
            [
                Job(Fraction(rng.randint(1, grid), grid), rng.randint(1, max_size))
                for _ in range(n)
            ]
            for _ in range(m)
        ]
    )
