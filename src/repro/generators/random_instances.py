"""Seeded random CRSharing instance families.

All generators emit requirements on an exact rational grid
(``k / grid`` with integer ``k``), so downstream exact arithmetic stays
fast (common denominators; see :mod:`repro.core.numerics`) and every
experiment is reproducible from its seed.
"""

from __future__ import annotations

import random
from fractions import Fraction

from ..core.instance import Instance
from ..core.job import Job

__all__ = [
    "uniform_instance",
    "bag_instance",
    "bimodal_instance",
    "ragged_instance",
    "heavy_tail_instance",
    "general_size_instance",
    "sample_arrivals",
    "sample_job_bag",
    "poisson_arrivals",
    "with_arrivals",
    "with_poisson_arrivals",
    "sample_requirements",
    "multi_resource_instance",
    "with_resources",
    "with_weights",
    "with_deadlines",
    "RESOURCE_PROFILES",
    "WEIGHT_PROFILES",
    "DEADLINE_PROFILES",
]


def _rng(seed: int | None) -> random.Random:
    return random.Random(seed)


#: Recognized multi-resource requirement profiles (how the extra
#: resources relate to the first one).
RESOURCE_PROFILES = ("independent", "correlated", "anti-correlated")


def _profile_units(
    base: int,
    *,
    grid: int,
    low: int,
    high: int,
    profile: str,
    rng: random.Random,
) -> int:
    """Requirement grid units of one extra resource given the base draw.

    ``independent`` redraws uniformly; ``correlated`` jitters around
    the base draw by up to 10% of the grid (bus-heavy phases are also
    memory-heavy); ``anti-correlated`` mirrors the base around the
    range midpoint with the same jitter (compute phases that hammer
    one resource barely touch the other).
    """
    if profile == "independent":
        return rng.randint(low, high)
    jitter = rng.randint(-(grid // 10), grid // 10)
    if profile == "correlated":
        target = base + jitter
    elif profile == "anti-correlated":
        target = (low + high - base) + jitter
    else:
        raise ValueError(
            f"unknown resource profile {profile!r}; "
            f"available: {list(RESOURCE_PROFILES)}"
        )
    return min(high, max(low, target))


def sample_requirements(
    k: int,
    *,
    grid: int = 100,
    low: int = 1,
    high: int | None = None,
    profile: str = "independent",
    rng: random.Random | None = None,
    seed: int | None = None,
) -> tuple[Fraction, ...]:
    """Sample one job's requirement vector over ``k`` shared resources.

    Resource 0 is drawn uniformly on ``{low/grid, ..., high/grid}``;
    resources ``1..k-1`` follow *profile* (see
    :data:`RESOURCE_PROFILES`) relative to that base draw.  With
    ``k == 1`` the stream is identical to
    :func:`uniform_instance`'s per-job draw, so ``k = 1`` campaigns
    reproduce the single-resource families bit-for-bit.
    """
    if k < 1:
        raise ValueError(f"need at least one resource, got k={k}")
    if high is None:
        high = grid
    if not 0 <= low <= high <= grid:
        raise ValueError(f"need 0 <= low <= high <= grid, got {low}, {high}, {grid}")
    if rng is None:
        rng = _rng(seed)
    base = rng.randint(low, high)
    units = [base]
    for _ in range(1, k):
        units.append(
            _profile_units(
                base, grid=grid, low=low, high=high, profile=profile, rng=rng
            )
        )
    return tuple(Fraction(u, grid) for u in units)


def multi_resource_instance(
    m: int,
    n: int,
    k: int,
    *,
    profile: str = "independent",
    grid: int = 100,
    low: int = 1,
    high: int | None = None,
    seed: int | None = None,
) -> Instance:
    """``m`` processors x ``n`` unit jobs over ``k`` shared resources.

    Per-job requirement vectors come from :func:`sample_requirements`
    with the given *profile*.  ``k == 1`` reproduces
    :func:`uniform_instance` bit-for-bit (same seed, same stream), so
    the multi-resource axis nests the single-resource families.
    """
    rng = _rng(seed)
    return Instance(
        [
            [
                Job(
                    sample_requirements(
                        k, grid=grid, low=low, high=high, profile=profile, rng=rng
                    )
                )
                for _ in range(n)
            ]
            for _ in range(m)
        ]
    )


def with_resources(
    instance: Instance,
    k: int,
    *,
    profile: str = "independent",
    grid: int = 100,
    seed: int | None = None,
) -> Instance:
    """Lift a single-resource instance to ``k`` shared resources.

    Resource 0 keeps every job's original requirement exactly;
    resources ``1..k-1`` are sampled by *profile* relative to it (on
    the given grid).  Sizes and release times are preserved, and
    ``k == 1`` returns the instance unchanged -- the lift composes
    with every instance family the way :func:`with_arrivals` does for
    the arrival axis.
    """
    if k < 1:
        raise ValueError(f"need at least one resource, got k={k}")
    if k == 1:
        return instance
    instance.require_single_resource("with_resources (lift from k=1)")
    rng = _rng(seed)
    queues = []
    for queue in instance.queues:
        jobs = []
        for job in queue:
            base = min(grid, max(0, round(float(job.requirement) * grid)))
            reqs = [job.requirement]
            for _ in range(1, k):
                units = _profile_units(
                    base, grid=grid, low=0, high=grid, profile=profile, rng=rng
                )
                reqs.append(Fraction(units, grid))
            jobs.append(Job(reqs, job.size))
        queues.append(jobs)
    return Instance(queues, releases=instance.releases)


def sample_arrivals(
    m: int,
    *,
    max_release: int,
    seed: int | None = None,
    pin_first: bool = True,
) -> tuple[int, ...]:
    """Sample per-processor release times uniformly on ``0..max_release``.

    Args:
        m: number of processors.
        max_release: the arrival spread (0 yields the static model).
        seed: RNG seed.  The sampler owns its own
            :class:`random.Random`; to keep release times statistically
            independent of a requirement stream, pass a seed
            decorrelated from the one that generated the requirements
            (as :func:`repro.backends.batch.make_campaign_instances`
            does).
        pin_first: force at least one processor to release at step 0
            (default), so the schedule never starts with a dead window
            that every policy waits through identically.
    """
    if max_release < 0:
        raise ValueError(f"max_release must be >= 0, got {max_release}")
    if max_release == 0:
        return (0,) * m
    rng = _rng(seed)
    releases = [rng.randint(0, max_release) for _ in range(m)]
    if pin_first and min(releases) > 0:
        releases[rng.randrange(m)] = 0
    return tuple(releases)


def poisson_arrivals(
    m: int,
    *,
    rate: float,
    seed: int | None = None,
    pin_first: bool = True,
) -> tuple[int, ...]:
    """Sample release times from a Poisson arrival process.

    The stochastic counterpart of :func:`sample_arrivals`: processor
    arrival times are the first ``m`` points of a Poisson process with
    intensity *rate* (arrivals per step), i.e. cumulative sums of
    exponential inter-arrival gaps, floored to integer steps.  Higher
    rates pack the queue arrivals densely (a loaded system); low rates
    spread them out (near steady-state trickle).  The points are
    shuffled before assignment so processor index does not correlate
    with arrival order.

    Args:
        m: number of processors.
        rate: expected arrivals per time step (> 0).
        seed: RNG seed; pass a stream decorrelated from the
            requirement seed, as with :func:`sample_arrivals`.
        pin_first: shift all times so the earliest is step 0 (default),
            matching :func:`sample_arrivals`'s convention that no run
            starts with a dead window.

    Example:
        >>> poisson_arrivals(4, rate=0.5, seed=1)
        (0, 6, 4, 7)
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    rng = _rng(seed)
    t = 0.0
    times: list[int] = []
    for _ in range(m):
        t += rng.expovariate(rate)
        times.append(int(t))
    rng.shuffle(times)
    if pin_first and times and min(times) > 0:
        low = min(times)
        times = [x - low for x in times]
    return tuple(times)


def with_arrivals(
    instance: Instance,
    *,
    max_release: int,
    seed: int | None = None,
) -> Instance:
    """Attach sampled release times to an existing instance.

    The arrival axis composes with every instance family: requirements
    come from the family's own seeded stream, release times from
    :func:`sample_arrivals`.  ``max_release=0`` returns the instance
    unchanged (bit-identical static model).
    """
    if max_release == 0:
        return instance
    return instance.with_releases(
        sample_arrivals(
            instance.num_processors, max_release=max_release, seed=seed
        )
    )


def with_poisson_arrivals(
    instance: Instance,
    *,
    rate: float,
    seed: int | None = None,
) -> Instance:
    """Attach Poisson-process release times to an existing instance.

    The stochastic-arrival composition used by the FLOW experiment's
    utilization sweeps: requirements come from the family's own seeded
    stream, release times from :func:`poisson_arrivals` at the given
    intensity.
    """
    return instance.with_releases(
        poisson_arrivals(instance.num_processors, rate=rate, seed=seed)
    )


#: Recognized objective-weight profiles for :func:`with_weights`.
WEIGHT_PROFILES = ("unit", "uniform", "skewed")

#: Recognized deadline-tightness profiles for :func:`with_deadlines`.
DEADLINE_PROFILES = ("tight", "loose", "mixed")


def with_weights(
    instance: Instance,
    *,
    profile: str = "uniform",
    max_weight: int = 10,
    seed: int | None = None,
) -> Instance:
    """Attach sampled objective weights to an existing instance.

    Profiles (all integer weights in ``1..max_weight``):

    * ``unit`` -- every weight 1; returns the instance unchanged (the
      bit-identical no-op, like ``max_release=0`` for arrivals);
    * ``uniform`` -- weights uniform on ``1..max_weight``;
    * ``skewed`` -- mostly weight 1 with a 20% minority of
      ``max_weight`` "priority" jobs (the shape that separates
      weighted-flow-aware policies from weight-blind ones).
    """
    if profile not in WEIGHT_PROFILES:
        raise ValueError(
            f"unknown weight profile {profile!r}; "
            f"available: {list(WEIGHT_PROFILES)}"
        )
    if max_weight < 1:
        raise ValueError(f"max_weight must be >= 1, got {max_weight}")
    if profile == "unit":
        return instance
    rng = _rng(seed)

    def draw() -> int:
        if profile == "uniform":
            return rng.randint(1, max_weight)
        return max_weight if rng.random() < 0.2 else 1

    return instance.with_weights(
        [[draw() for _ in queue] for queue in instance.queues]
    )


def with_deadlines(
    instance: Instance,
    *,
    profile: str = "loose",
    seed: int | None = None,
) -> Instance:
    """Attach sampled due steps to an existing instance.

    Deadlines are drawn relative to each job's *earliest* possible
    completion time (release + in-order full-speed processing, see
    :meth:`~repro.core.instance.Instance.earliest_completion_times`),
    so tightness is meaningful across instance families:

    * ``tight`` -- ``d = earliest + U{0, 1}``: barely achievable even
      without contention, most schedules incur tardiness;
    * ``loose`` -- ``d = 2 * earliest + U{0, n}``: generous slack,
      good policies meet almost every deadline;
    * ``mixed`` -- each job flips a fair coin between the two (the
      profile that separates slack-aware orderings most clearly).
    """
    if profile not in DEADLINE_PROFILES:
        raise ValueError(
            f"unknown deadline profile {profile!r}; "
            f"available: {list(DEADLINE_PROFILES)}"
        )
    rng = _rng(seed)
    earliest = instance.earliest_completion_times()
    n = instance.max_jobs

    def draw(jid) -> int:
        base = earliest[jid]
        kind = profile
        if kind == "mixed":
            kind = "tight" if rng.random() < 0.5 else "loose"
        if kind == "tight":
            return max(1, base + rng.randint(0, 1))
        return max(1, 2 * base + rng.randint(0, n))

    return instance.with_deadlines(
        [
            [draw((i, j)) for j in range(len(queue))]
            for i, queue in enumerate(instance.queues)
        ]
    )


def uniform_instance(
    m: int,
    n: int,
    *,
    grid: int = 100,
    low: int = 1,
    high: int | None = None,
    seed: int | None = None,
) -> Instance:
    """``m`` processors x ``n`` unit jobs with requirements uniform on
    ``{low/grid, ..., high/grid}`` (defaults: 1%..100%)."""
    if high is None:
        high = grid
    if not 0 <= low <= high <= grid:
        raise ValueError(f"need 0 <= low <= high <= grid, got {low}, {high}, {grid}")
    rng = _rng(seed)
    return Instance.from_requirements(
        [
            [Fraction(rng.randint(low, high), grid) for _ in range(n)]
            for _ in range(m)
        ]
    )


def sample_job_bag(
    count: int,
    *,
    grid: int = 100,
    low: int = 1,
    high: int | None = None,
    max_size: int = 1,
    seed: int | None = None,
) -> list[Job]:
    """Sample a flat bag of jobs (no processor assignment, no order).

    The raw material of the sequencing layer
    (:mod:`repro.sequencing`): a bag is what a
    :class:`~repro.sequencing.Sequencer` places onto processors, so
    this sampler deliberately returns loose :class:`Job` objects
    instead of an :class:`~repro.core.instance.Instance`.
    Requirements are uniform on ``{low/grid, ..., high/grid}`` (the
    same marginal as :func:`uniform_instance`); sizes are uniform
    integers in ``1..max_size`` (``max_size=1`` keeps the paper's
    unit-size restriction).

    Example:
        >>> bag = sample_job_bag(4, grid=10, seed=0)
        >>> len(bag), all(job.is_unit for job in bag)
        (4, True)
    """
    if count < 1:
        raise ValueError(f"need at least one job, got count={count}")
    if high is None:
        high = grid
    if not 0 <= low <= high <= grid:
        raise ValueError(f"need 0 <= low <= high <= grid, got {low}, {high}, {grid}")
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    rng = _rng(seed)
    return [
        Job(
            Fraction(rng.randint(low, high), grid),
            1 if max_size == 1 else rng.randint(1, max_size),
        )
        for _ in range(count)
    ]


def bag_instance(
    m: int,
    n: int,
    *,
    grid: int = 100,
    max_size: int = 1,
    seed: int | None = None,
) -> Instance:
    """``m * n`` bag-sampled jobs dealt round-robin onto ``m`` processors.

    The campaign family of the sequencing experiments: the deal is the
    *identity* placement (:meth:`Instance.from_bag`), so a downstream
    sequencer axis -- ``BatchRunner(sequencer=...)``, the CLI's
    ``--sequencer`` -- measures its reordering gain against a neutral
    baseline rather than a hand-tuned one.
    """
    return Instance.from_bag(
        sample_job_bag(m * n, grid=grid, max_size=max_size, seed=seed), m
    )


def bimodal_instance(
    m: int,
    n: int,
    *,
    heavy_prob: float = 0.3,
    heavy_range: tuple[int, int] = (70, 100),
    light_range: tuple[int, int] = (1, 10),
    grid: int = 100,
    seed: int | None = None,
) -> Instance:
    """Hot/cold mixture: jobs are *heavy* (I/O-bound phases) with
    probability ``heavy_prob``, otherwise *light* (compute phases that
    barely touch the bus).  Mirrors the paper's motivating workloads
    where bandwidth-hungry phases alternate with compute."""
    rng = _rng(seed)

    def draw() -> Fraction:
        lo, hi = heavy_range if rng.random() < heavy_prob else light_range
        return Fraction(rng.randint(lo, hi), grid)

    return Instance.from_requirements(
        [[draw() for _ in range(n)] for _ in range(m)]
    )


def ragged_instance(
    m: int,
    n_range: tuple[int, int],
    *,
    grid: int = 100,
    seed: int | None = None,
) -> Instance:
    """Uniform requirements with *different* queue lengths per
    processor (exercises the ``M_j`` machinery and unbalanced cases)."""
    lo, hi = n_range
    if lo < 1 or hi < lo:
        raise ValueError(f"invalid queue-length range {n_range}")
    rng = _rng(seed)
    return Instance.from_requirements(
        [
            [Fraction(rng.randint(1, grid), grid) for _ in range(rng.randint(lo, hi))]
            for _ in range(m)
        ]
    )


def heavy_tail_instance(
    m: int,
    n: int,
    *,
    grid: int = 1000,
    seed: int | None = None,
) -> Instance:
    """Pareto-flavoured requirements (many tiny, a few near 1):
    ``r = min(1, 0.01 / u)`` for uniform ``u``, snapped to the grid.
    Stresses schedulers with high variance between jobs."""
    rng = _rng(seed)

    def draw() -> Fraction:
        u = rng.random()
        r = min(1.0, 0.01 / max(u, 1e-9))
        return Fraction(max(1, round(r * grid)), grid)

    return Instance.from_requirements(
        [[draw() for _ in range(n)] for _ in range(m)]
    )


def general_size_instance(
    m: int,
    n: int,
    *,
    grid: int = 100,
    max_size: int = 4,
    seed: int | None = None,
) -> Instance:
    """Non-unit-size instance for the general model (Section 3.1):
    requirements on the grid, integer sizes in ``1..max_size``.
    Exact algorithms reject it; the simulator and policies accept it."""
    rng = _rng(seed)
    return Instance(
        [
            [
                Job(Fraction(rng.randint(1, grid), grid), rng.randint(1, max_size))
                for _ in range(n)
            ]
            for _ in range(m)
        ]
    )
