"""repro -- reproduction of *Scheduling Shared Continuous Resources on
Many-Cores* (Althaus, Brinkmann, Kling, Meyer auf der Heide, Nagel,
Riechers, Sgall, Suess; SPAA 2014 / Journal of Scheduling).

The CRSharing problem: ``m`` processors share one continuously
divisible resource; each job needs a share ``r in [0,1]`` to run at
full speed and slows down proportionally below it; job order per
processor is fixed; minimize makespan.

Quickstart::

    from repro import Instance, GreedyBalance, opt_res_assignment

    inst = Instance.from_percent([[99, 7, 1], [98, 1, 1]])
    schedule = GreedyBalance().run(inst)
    optimal = opt_res_assignment(inst)
    print(schedule.makespan, optimal.makespan)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` -- instances, schedules, execution semantics,
  structural properties, hypergraphs, lower bounds;
* :mod:`repro.algorithms` -- RoundRobin (Thm 3), GreedyBalance
  (Thm 7/8), exact algorithms for m=2 (Thm 5) and fixed m (Thm 6),
  oracles;
* :mod:`repro.reductions` -- Partition and the Theorem 4 NP-hardness
  gadget;
* :mod:`repro.generators` -- figure examples, adversarial families,
  random families, synthetic many-core workloads;
* :mod:`repro.sequencing` -- queue order / placement as a decision
  variable (static orders, greedy placement, local search);
* :mod:`repro.simulation` -- the shared-bus many-core substrate;
* :mod:`repro.telemetry` -- structured tracing, metrics, and the
  hot-spot profiler (zero-cost unless a session is installed);
* :mod:`repro.experiments` -- one reproduction per figure/theorem;
* :mod:`repro.analysis`, :mod:`repro.viz`, :mod:`repro.io` -- metrics,
  rendering, serialization.
"""

from ._version import __version__
from .backends import (
    BatchRunner,
    ExactBackend,
    VectorBackend,
    available_backends,
    cross_validate,
    get_backend,
)
from .algorithms import (
    GreedyBalance,
    Policy,
    RoundRobin,
    available_policies,
    brute_force_makespan,
    get_policy,
    milp_makespan,
    opt_res_assignment,
    opt_res_assignment_general,
    opt_res_assignment_pq,
)
from .core import (
    Instance,
    Job,
    Schedule,
    SchedulingGraph,
    best_lower_bound,
    is_balanced,
    is_nested,
    is_non_wasting,
    is_progressive,
    make_nice,
    run_policy,
    simulate,
)
from .exceptions import (
    InfeasibleAssignmentError,
    InvalidInstanceError,
    InvalidScheduleError,
    ObserverError,
    ReproError,
    SequencingError,
    SimulationLimitError,
    SolverError,
    UnitSizeRequiredError,
    UnknownPolicyError,
)
from .sequencing import (
    Sequencer,
    available_sequencers,
    get_sequencer,
)
from .objectives import (
    Makespan,
    Objective,
    Tardiness,
    WeightedFlowTime,
    available_objectives,
    get_objective,
)
from .telemetry import (
    TelemetrySession,
    get_session,
    phase_report,
    set_session,
    use_session,
)

__all__ = [
    "BatchRunner",
    "ExactBackend",
    "GreedyBalance",
    "Instance",
    "InfeasibleAssignmentError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "Job",
    "Makespan",
    "Objective",
    "ObserverError",
    "Policy",
    "ReproError",
    "RoundRobin",
    "Schedule",
    "SchedulingGraph",
    "Sequencer",
    "SequencingError",
    "SimulationLimitError",
    "SolverError",
    "Tardiness",
    "TelemetrySession",
    "UnitSizeRequiredError",
    "UnknownPolicyError",
    "VectorBackend",
    "WeightedFlowTime",
    "__version__",
    "available_backends",
    "available_objectives",
    "available_policies",
    "available_sequencers",
    "get_objective",
    "get_sequencer",
    "cross_validate",
    "get_backend",
    "best_lower_bound",
    "brute_force_makespan",
    "get_policy",
    "get_session",
    "is_balanced",
    "is_nested",
    "is_non_wasting",
    "is_progressive",
    "make_nice",
    "milp_makespan",
    "opt_res_assignment",
    "opt_res_assignment_general",
    "opt_res_assignment_pq",
    "phase_report",
    "run_policy",
    "set_session",
    "simulate",
    "use_session",
]
