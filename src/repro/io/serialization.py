"""Exact JSON serialization for instances and schedules.

Rationals are serialized as ``"p/q"`` strings (integers stay bare), so
round-trips are lossless -- a requirement for reproducing experiments
byte-for-byte.  The schema carries a version tag for forward
compatibility.

Schema (instance)::

    {"format": "crsharing-instance", "version": 1,
     "processors": [[{"r": "1/2", "p": 1}, ...], ...],
     "releases": [0, 3, ...]}          # optional; omitted when all 0

Multi-resource instances (``k > 1`` shared resources) are emitted as
version 2 with one requirement *list* per job; single-resource
documents stay byte-identical to version 1, and the reader accepts
both::

    {"format": "crsharing-instance", "version": 2,
     "resources": 2,
     "processors": [[{"r": ["1/2", "1/4"], "p": 1}, ...], ...]}

Instances carrying objective annotations (non-unit job weights or
deadlines, see the pluggable objective layer :mod:`repro.objectives`)
are emitted as version 3 with optional per-job ``"w"`` (weight,
rational) and ``"d"`` (deadline, 1-based integer step) keys; jobs with
default annotations omit the keys, and documents without any
annotation keep their version-1/2 form byte-identical::

    {"format": "crsharing-instance", "version": 3,
     "processors": [[{"r": "1/2", "p": 1, "w": 3, "d": 4}, ...], ...]}

Schema (schedule; single-resource only, like the
:class:`~repro.core.schedule.Schedule` artifact itself)::

    {"format": "crsharing-schedule", "version": 1,
     "instance": {...}, "shares": [["1/2", "0", ...], ...]}
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import Any

from ..core.instance import Instance
from ..core.job import Job
from ..core.schedule import Schedule

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "job_to_dict",
    "job_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_instance",
    "load_instance",
    "save_schedule",
    "load_schedule",
]

_INSTANCE_FORMAT = "crsharing-instance"
_SCHEDULE_FORMAT = "crsharing-schedule"
_VERSION = 1
#: Version emitted for (and accepted from) multi-resource instances.
_VERSION_MULTI = 2
#: Version emitted for (and accepted from) instances with objective
#: annotations (per-job weights / deadlines).
_VERSION_OBJECTIVE = 3


def _frac_out(x: Fraction) -> str | int:
    if x.denominator == 1:
        return int(x)
    return f"{x.numerator}/{x.denominator}"


def _frac_in(x: str | int | float) -> Fraction:
    if isinstance(x, bool):
        raise ValueError("booleans are not valid rationals")
    if isinstance(x, int):
        return Fraction(x)
    if isinstance(x, str):
        return Fraction(x)
    raise ValueError(f"expected int or 'p/q' string, got {x!r}")


def _requirement_out(job: Job) -> Any:
    if job.num_resources == 1:
        return _frac_out(job.requirements[0])
    return [_frac_out(r) for r in job.requirements]


def _requirement_in(value: Any) -> Any:
    if isinstance(value, list):
        return [_frac_in(r) for r in value]
    return _frac_in(value)


def _job_out(job: Job) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "r": _requirement_out(job),
        "p": _frac_out(job.size),
    }
    if not job.is_unit_weight:
        doc["w"] = _frac_out(job.weight)
    if job.deadline is not None:
        doc["d"] = job.deadline
    return doc


def job_to_dict(job: Job) -> dict[str, Any]:
    """Lossless dict form of a single job (the per-job instance schema).

    Keys: ``r`` (requirement, ``"p/q"`` string or list for ``k > 1``),
    ``p`` (processing volume), and the optional objective annotations
    ``w`` (weight) / ``d`` (deadline), omitted at their defaults.  Used
    standalone by the service layer's streaming trace format
    (:mod:`repro.service.events`).
    """
    return _job_out(job)


def job_from_dict(doc: dict[str, Any]) -> Job:
    """Inverse of :func:`job_to_dict`.

    Raises:
        ValueError: on a malformed document (missing/invalid keys).
    """
    if not isinstance(doc, dict):
        raise ValueError(f"job document must be a dict, got {type(doc).__name__}")
    try:
        return _job_in(doc)
    except KeyError as exc:
        raise ValueError(f"job document missing key {exc}") from exc


def instance_to_dict(instance: Instance) -> dict[str, Any]:
    """Lossless dict form of an instance.

    The ``releases`` key is emitted only for arrival instances, the
    ``resources`` key (with version >= 2 and per-job requirement
    lists) only for multi-resource instances, and the per-job
    ``w``/``d`` objective keys (with version 3) only for annotated
    jobs -- so plain single-resource static documents stay
    byte-compatible with version-1 readers.
    """
    multi = instance.num_resources > 1
    annotated = instance.has_weights or instance.has_deadlines
    if annotated:
        version = _VERSION_OBJECTIVE
    elif multi:
        version = _VERSION_MULTI
    else:
        version = _VERSION
    data: dict[str, Any] = {
        "format": _INSTANCE_FORMAT,
        "version": version,
        "processors": [
            [_job_out(job) for job in queue] for queue in instance.queues
        ],
    }
    if multi:
        data["resources"] = instance.num_resources
    if instance.has_releases:
        data["releases"] = list(instance.releases)
    return data


def _job_in(doc: dict[str, Any]) -> Job:
    deadline = doc.get("d")
    if deadline is not None:
        deadline = int(deadline)
    return Job(
        _requirement_in(doc["r"]),
        _frac_in(doc["p"]),
        weight=_frac_in(doc.get("w", 1)),
        deadline=deadline,
    )


def instance_from_dict(data: dict[str, Any]) -> Instance:
    """Inverse of :func:`instance_to_dict` (accepts versions 1, 2, 3).

    Raises:
        ValueError: on schema mismatch, including a ``resources``
            count that contradicts the job requirement vectors.
    """
    if data.get("format") != _INSTANCE_FORMAT:
        raise ValueError(f"not a CRSharing instance document: {data.get('format')!r}")
    if data.get("version") not in (_VERSION, _VERSION_MULTI, _VERSION_OBJECTIVE):
        raise ValueError(f"unsupported version {data.get('version')!r}")
    instance = Instance(
        [[_job_in(job) for job in queue] for queue in data["processors"]],
        releases=data.get("releases"),
    )
    declared = data.get("resources")
    if declared is not None and declared != instance.num_resources:
        raise ValueError(
            f"document declares {declared} shared resources but jobs "
            f"carry {instance.num_resources}-entry requirement vectors"
        )
    return instance


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """Lossless dict form of a schedule (instance embedded)."""
    return {
        "format": _SCHEDULE_FORMAT,
        "version": _VERSION,
        "instance": instance_to_dict(schedule.instance),
        "shares": [
            [_frac_out(x) for x in step.shares] for step in schedule.steps
        ],
    }


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    """Inverse of :func:`schedule_to_dict` (re-validates on load)."""
    if data.get("format") != _SCHEDULE_FORMAT:
        raise ValueError(f"not a CRSharing schedule document: {data.get('format')!r}")
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    instance = instance_from_dict(data["instance"])
    rows = [[_frac_in(x) for x in row] for row in data["shares"]]
    return Schedule(instance, rows)


def save_instance(instance: Instance, path: str | Path) -> None:
    Path(path).write_text(json.dumps(instance_to_dict(instance), indent=2))


def load_instance(path: str | Path) -> Instance:
    return instance_from_dict(json.loads(Path(path).read_text()))


def save_schedule(schedule: Schedule, path: str | Path) -> None:
    Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=2))


def load_schedule(path: str | Path) -> Schedule:
    return schedule_from_dict(json.loads(Path(path).read_text()))
