"""Lossless (de)serialization of instances and schedules."""

from .serialization import (
    instance_from_dict,
    instance_to_dict,
    job_from_dict,
    job_to_dict,
    load_instance,
    load_schedule,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "instance_from_dict",
    "instance_to_dict",
    "job_from_dict",
    "job_to_dict",
    "load_instance",
    "load_schedule",
    "save_instance",
    "save_schedule",
    "schedule_from_dict",
    "schedule_to_dict",
]
