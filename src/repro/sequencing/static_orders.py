"""Static queue-ordering strategies (sort once, then run).

All strategies here keep the job-to-processor assignment and permute
each queue by a per-job sort key -- the classical single-machine
dispatch orders lifted to the CRSharing model:

* ``fixed`` -- the identity; pins the paper's fixed-order model
  bit-identically (the golden suite runs through it unchanged);
* ``spt`` / ``lpt`` -- shortest / longest processing time first,
  measured in work units :math:`\\tilde p = r \\cdot p` (Eq. 2's
  natural unit; for unit sizes this orders by requirement);
* ``requirement-desc`` -- bottleneck requirement descending: emit the
  resource-hungry jobs while the queue still has slack behind them;
* ``slack`` -- deadline-aware: earliest due step first, deadline-free
  jobs last (EDD within each queue), ties broken by work.

Sort stability: ties keep the original queue order, so every strategy
is deterministic and ``sequence`` is idempotent.
"""

from __future__ import annotations

from typing import Callable

from ..core.instance import Instance
from ..core.job import Job
from .base import Sequencer, register_sequencer

__all__ = [
    "FixedOrder",
    "StaticOrder",
    "SPTOrder",
    "LPTOrder",
    "RequirementDescending",
    "SlackOrder",
]


@register_sequencer
class FixedOrder(Sequencer):
    """The identity sequencer: keep the instance's a-priori order.

    This is the paper's model as a (trivial) member of the sequencing
    layer, so every ``sequencer=`` axis has an explicit "do nothing"
    setting whose behavior is bit-identical to not passing a sequencer
    at all.
    """

    name = "fixed"

    def sequence(self, instance: Instance) -> Instance:
        """Return *instance* unchanged (the same object)."""
        return instance


class StaticOrder(Sequencer):
    """Base for per-queue sort strategies (subclasses set the key).

    The sort is stable, so jobs with equal keys keep their original
    relative order and re-sequencing an already-sorted instance is the
    identity permutation.
    """

    #: Per-job sort key; smaller keys run earlier.
    key: Callable[[Job], object]

    def sequence(self, instance: Instance) -> Instance:
        """Permute every queue by the strategy's sort key."""
        orders = [
            sorted(range(len(queue)), key=lambda j: self.key(queue[j]))
            for queue in instance.queues
        ]
        return instance.with_order(orders)


@register_sequencer
class SPTOrder(StaticOrder):
    """Shortest processing time first (by work :math:`r \\cdot p`)."""

    name = "spt"

    @staticmethod
    def key(job: Job):
        """Work ascending."""
        return job.work


@register_sequencer
class LPTOrder(StaticOrder):
    """Longest processing time first (by work :math:`r \\cdot p`)."""

    name = "lpt"

    @staticmethod
    def key(job: Job):
        """Work descending."""
        return -job.work


@register_sequencer
class RequirementDescending(StaticOrder):
    """Bottleneck requirement descending (resource-hungry jobs first)."""

    name = "requirement-desc"

    @staticmethod
    def key(job: Job):
        """Bottleneck requirement descending, work descending on ties."""
        return (-job.requirement, -job.work)


@register_sequencer
class SlackOrder(StaticOrder):
    """Earliest due date first within each queue (deadline-aware).

    Jobs without a deadline have infinite slack and sort last; among
    equal deadlines the larger job goes first (it needs the head start).
    """

    name = "slack"

    @staticmethod
    def key(job: Job):
        """Due step ascending (None last), work descending on ties."""
        return (job.deadline is None, job.deadline or 0, -job.work)
