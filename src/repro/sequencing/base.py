"""The :class:`Sequencer` protocol and its registry.

The paper fixes each processor's job queue a priori -- the scheduler
only distributes the shared resource.  The Theorem 4 hardness gadget
(:mod:`repro.reductions`) shows that this fixed order is exactly where
the problem's difficulty lives: deciding the best order is NP-hard.
The sequencing layer relaxes that assumption and treats per-processor
queue order (and, for placement strategies, the job-to-processor
assignment itself, after Maack et al.'s placement variant) as a
first-class decision variable.

A *sequencer* maps a bag of jobs -- or an existing
:class:`~repro.core.instance.Instance` -- to concrete per-processor
ordered queues:

* :meth:`Sequencer.sequence` re-derives the queues of an existing
  instance (same multiset of jobs, possibly new orders/placement);
* :meth:`Sequencer.place` builds an instance from a flat bag of jobs
  on ``m`` processors (default: :meth:`Instance.from_bag` dealing,
  then :meth:`sequence`).

Every sequencer must preserve the job bag
(:meth:`Instance.same_bag`) and the per-processor release times; the
``fixed`` sequencer is the identity and pins today's fixed-order
behavior bit-identically.

Sequencers are registered by name (:func:`register_sequencer`) so the
CLI (``--sequencer``), :class:`~repro.backends.batch.BatchRunner`, and
the experiment harness select them the way they select policies,
backends, and objectives.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..core.instance import Instance
from ..exceptions import SequencingError

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..core.job import Job
    from ..core.numerics import Num

__all__ = [
    "Sequencer",
    "register_sequencer",
    "get_sequencer",
    "resolve_sequencer",
    "available_sequencers",
]


class Sequencer(ABC):
    """Abstract queue-order/placement strategy (see module docstring).

    Subclasses implement :meth:`sequence`; bag placement and the
    bag-preservation guard are shared.

    Example:
        >>> from repro.core import Instance
        >>> from repro.sequencing import get_sequencer
        >>> inst = Instance([["1/4", "3/4"], ["1/2", "1/2"]])
        >>> get_sequencer("requirement-desc").sequence(inst).queues[0]
        (Job(0.75), Job(0.25))
    """

    #: Registry / CLI identifier.
    name: str = "sequencer"

    @abstractmethod
    def sequence(self, instance: Instance) -> Instance:
        """Re-derive *instance*'s queues (same job bag, new order).

        Implementations must preserve the multiset of jobs and the
        per-processor release times; pure ordering strategies keep the
        job-to-processor assignment, placement strategies may move jobs
        between queues.
        """

    def place(
        self,
        jobs: "Iterable[Job | Num]",
        m: int,
        *,
        releases: Sequence[int] | None = None,
    ) -> Instance:
        """Build ordered queues for a flat bag of jobs on ``m`` processors.

        The default deals the bag round-robin
        (:meth:`~repro.core.instance.Instance.from_bag`) and hands the
        result to :meth:`sequence`; placement strategies override the
        whole pipeline.
        """
        return self.sequence(Instance.from_bag(jobs, m, releases=releases))

    def bind(self, *, policy=None, objective=None) -> "Sequencer":
        """Align unpinned evaluation options with the run's decisions.

        Entry points that thread a sequencer through a concrete run
        (``run_policy``, ``cross_validate``, the batch workers) call
        this with the policy/objective that will actually execute.
        Strategies that evaluate candidate orders under a policy
        (:class:`~repro.sequencing.local_search.LocalSearchSequencer`)
        override it to adopt the run's choices for any option the
        caller left unpinned; order-only strategies ignore it (the
        default no-op).
        """
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


# ----------------------------------------------------------------------
# Registry (CLI / batch / experiment harness lookup)
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Callable[..., Sequencer]] = {}


def register_sequencer(factory: Callable[..., Sequencer]) -> Callable[..., Sequencer]:
    """Register a sequencer factory under its ``name`` (decorator-friendly).

    The factory must be callable with no arguments (strategy options
    all carry defaults); :func:`get_sequencer` forwards keyword options
    to it.
    """
    probe = factory()
    _REGISTRY[probe.name] = factory
    return factory


def get_sequencer(name: str, **options) -> Sequencer:
    """Instantiate a registered sequencer by name.

    Keyword *options* are forwarded to the strategy's constructor
    (e.g. ``get_sequencer("local-search", budget=500)``); strategies
    without options reject unexpected keywords with a ``TypeError``.

    Raises:
        SequencingError: for unknown names (message lists the options).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise SequencingError(
            f"unknown sequencer {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**options)


def resolve_sequencer(sequencer: "Sequencer | str") -> Sequencer:
    """Resolve a sequencer given by registry name, passing objects through.

    The shared name-resolution step behind the ``sequencer=`` axis of
    ``run_policy`` / ``cross_validate`` / ``BatchRunner`` (mirroring
    :func:`repro.algorithms.resolve_policy` for policies).
    """
    if isinstance(sequencer, str):
        return get_sequencer(sequencer)
    return sequencer


def available_sequencers() -> list[str]:
    """Names of all registered sequencers."""
    return sorted(_REGISTRY)
