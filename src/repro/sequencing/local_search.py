"""Objective-driven local search over queue orders and placements.

Theorem 4 proves that choosing the best queue order is NP-hard, so the
sequencing layer's strongest strategy is a heuristic *improver*: start
from the instance's current order, repeatedly propose small
neighborhood moves -- pairwise swaps of two job positions and
insertion moves that relocate one job to another position (both may
cross queues) -- and keep a move iff it strictly improves the
evaluation objective.

Evaluation runs the full policy simulation through any registered
backend and objective: by default the vectorized float64 backend with
the makespan objective, because the evaluation loop is the hot path
(``benchmarks/bench_sequencing.py`` gates that the vector evaluation
loop stays well ahead of exact ``Fraction`` re-evaluation; the final
accepted order can always be re-audited exactly).

Determinism: the search is seeded, and *restarts* draw from
decorrelated seed streams (``seed + r * offset``), mirroring the
campaign generators' stream discipline -- each restart perturbs the
incumbent with a burst of random swaps and climbs again, so one
unlucky neighborhood does not pin the search.
"""

from __future__ import annotations

import copy
import random
from time import perf_counter

from ..core.checkpoint import KernelCheckpoint, checkpoint_run
from ..core.instance import Instance
from ..core.job import Job
from ..core.kernel import ObjectiveRecorder, StepObserver, run_kernel
from ..exceptions import SequencingError
from .base import Sequencer, register_sequencer

__all__ = ["LocalSearchSequencer"]

#: Reference checkpoints kept for prefix resume (older ones are the
#: least likely to be the deepest valid restore point).
_MAX_PREFIX_POINTS = 128


class _PrefixCapture(StepObserver):
    """Checkpoints the run at every completion boundary.

    A checkpoint is only consistent once *all* of a step's completions
    have been dispatched to the peer observers, so the capture waits
    for the last ``on_complete`` of the step (it must be ordered after
    the peers in the observer tuple).
    """

    def __init__(self, runtime, peers: tuple) -> None:
        self._runtime = runtime
        self._peers = peers
        self._pending = 0
        self.points: list[KernelCheckpoint] = []

    def on_step(self, event) -> None:
        """Arm the countdown with the step's completion count."""
        self._pending = len(event.completed)

    def on_complete(self, job, t) -> None:
        """Capture a checkpoint after the step's last completion."""
        self._pending -= 1
        if self._pending == 0:
            self.points.append(checkpoint_run(self._runtime, self._peers))


#: Decorrelates the per-restart seed streams (same constant family as
#: the campaign generators' arrival/resource/weight offsets).
_RESTART_SEED_OFFSET = 0x51ED2700

#: Cache-miss sentinel (objective values may legitimately be 0).
_MISSING = object()


@register_sequencer
class LocalSearchSequencer(Sequencer):
    """Budgeted hill-climbing over swap + insertion moves.

    Args:
        policy: policy evaluated on every candidate order (registry
            name or object; the name is resolved once, up front).
            ``None`` (the default) leaves the choice *unpinned*: entry
            points that thread the sequencer through a concrete run
            (``run_policy(..., sequencer=...)``, ``cross_validate``,
            the batch workers) align it with the policy that actually
            executes via :meth:`bind`; standalone use falls back to
            ``"greedy-balance"``.
        backend: backend running the evaluations (registry name;
            ``"vector"`` keeps the hot loop in float64).
        objective: objective being minimized (registry name or object;
            ``None`` is unpinned like *policy*, falling back to
            ``"makespan"``, the paper's objective).
        budget: candidate evaluations per restart (a restart's
            perturbation evaluation counts against its own budget; the
            initial order's single evaluation is charged to none).
            Budget left over when a restart exhausts its neighborhood
            early is *not* carried into later restarts.
        restarts: independent climbing passes; restart ``r`` draws its
            moves from the decorrelated stream ``seed + r * offset``
            and starts from a perturbed copy of the incumbent.
        seed: base seed of the move streams.
        max_steps: per-evaluation safety limit forwarded to the
            backend (``None`` = the backend's default).
        batch_lanes: candidate orders evaluated per batched kernel
            call.  The default ``1`` keeps the classic sequential
            hill-climb (evaluate one neighbor, accept if strictly
            better) bit-identical to earlier releases.  With
            ``batch_lanes > 1`` each iteration draws up to that many
            neighbors of the incumbent and evaluates the whole batch
            through one
            :class:`~repro.backends.batched.BatchVectorRuntime` array
            program (when the backend is ``"vector"``; other backends
            evaluate the batch lane by lane), accepting the best
            strictly-improving candidate -- a different (but equally
            deterministic) search trajectory that trades per-candidate
            acceptance sharpness for an order-of-magnitude higher
            evals/s (``benchmarks/bench_batched_evals.py`` gates the
            factor).
        compiled: compiled-tier mode for vector-backend evaluations
            (``"auto"``/``"on"``/``"off"`` or a boolean, see
            :mod:`repro.kernels`); ``None`` (the default) keeps the
            backend's own ``"auto"``.  Non-vector backends ignore it.
        prefix_cache: resume candidate evaluations from
            :class:`~repro.core.checkpoint.KernelCheckpoint` snapshots
            taken along the incumbent's run, at the deepest completion
            boundary whose per-queue progress stays strictly inside
            the candidate's common order prefix -- neighbors differ
            from the incumbent by one move, so most of their prefix
            simulation is shared work.  ``None`` (the default)
            auto-enables on the sequential vector path
            (``batch_lanes == 1``, vector backend, vector-capable
            policy, ``compiled != "on"``); ``True``/``False`` force
            it.  Resumed evaluations are bit-identical to fresh ones
            (the checkpoint layer's contract), so the search
            trajectory does not change -- only its cost.

    Attributes:
        last_stats: after each :meth:`sequence` call, a dict with the
            number of ``evaluations``, the ``initial`` and ``best``
            objective values, ``improved`` (their strict comparison),
            the move outcome counts (``accepted`` / ``rejected``
            neighborhood candidates, plus ``perturbations`` --
            restart-kickoff evaluations, charged to neither), the
            memoization figures (``cache_hits`` -- evaluations served
            from the per-call canonical-order cache -- ``prefix_hits``
            -- kernel runs resumed from a checkpoint at the longest
            common order prefix instead of simulated from ``t=0`` --
            and ``kernel_runs``, the candidate evaluations actually
            simulated, which with the prefix cache active excludes the
            per-promotion snapshot re-runs), the
            configured ``batch_lanes``, and the search throughput
            (``seconds`` wall time, ``evals_per_second``) -- the ORDER
            experiment and the benchmarks read these instead of
            re-deriving them.

    Example:
        >>> from repro.core import Instance
        >>> from repro.sequencing import get_sequencer
        >>> seq = get_sequencer("local-search", budget=40, seed=0)
        >>> inst = Instance.from_percent([[80, 20, 60], [40, 90, 10]])
        >>> better = seq.sequence(inst)
        >>> inst.same_bag(better)
        True
        >>> seq.last_stats["best"] <= seq.last_stats["initial"]
        True
    """

    name = "local-search"

    def __init__(
        self,
        *,
        policy=None,
        backend: str = "vector",
        objective=None,
        budget: int = 200,
        restarts: int = 2,
        seed: int = 0,
        max_steps: int | None = None,
        batch_lanes: int = 1,
        compiled: str | bool | None = None,
        prefix_cache: bool | None = None,
    ) -> None:
        from ..algorithms import resolve_policy  # local: avoid import cycle
        from ..backends import get_backend
        from ..kernels import normalize_compiled
        from ..objectives import get_objective

        if budget < 1:
            raise SequencingError(f"budget must be >= 1, got {budget}")
        if restarts < 1:
            raise SequencingError(f"restarts must be >= 1, got {restarts}")
        if batch_lanes < 1:
            raise SequencingError(
                f"batch_lanes must be >= 1, got {batch_lanes}"
            )
        # None = unpinned (bind may align it with the run); remember
        # which options were explicit so bind never overrides those.
        self._policy_pinned = policy is not None
        self._objective_pinned = objective is not None
        self.policy = resolve_policy(
            policy if policy is not None else "greedy-balance"
        )
        self.backend = get_backend(backend)
        if objective is None:
            objective = "makespan"
        self.objective = (
            get_objective(objective) if isinstance(objective, str) else objective
        )
        self.budget = int(budget)
        self.restarts = int(restarts)
        self.seed = int(seed)
        self.max_steps = max_steps
        self.batch_lanes = int(batch_lanes)
        self.compiled = (
            None if compiled is None else normalize_compiled(compiled)
        )
        self.prefix_cache = prefix_cache
        self.last_stats: dict[str, object] = {}
        # Per-sequence() evaluation cache and counters (reset each call).
        self._cache: dict[Instance, object] = {}
        self._counts: dict[str, int] = {}
        self._step_limit: int | None = None
        # Prefix-resume state: (incumbent queues, its checkpoints) and
        # the capture handoff slot of the latest promotion re-run.
        self._prefix_active = False
        self._ref: tuple[tuple, list[KernelCheckpoint]] | None = None
        self._promoted: tuple[tuple, list[KernelCheckpoint]] | None = None

    def bind(self, *, policy=None, objective=None) -> "LocalSearchSequencer":
        """Adopt the run's policy/objective for any unpinned option.

        Options given explicitly at construction always win; a bare
        ``get_sequencer("local-search")`` threaded through
        ``run_policy(inst, "round-robin", sequencer=...)`` evaluates
        its candidates under round-robin, not under the standalone
        fallback.  Returns a *bound copy* when anything is adopted
        (``self`` otherwise), so the caller's object keeps its
        unpinned standalone behavior.
        """
        from ..algorithms import resolve_policy  # local: avoid import cycle
        from ..objectives import get_objective

        adopt_policy = policy is not None and not self._policy_pinned
        adopt_objective = objective is not None and not self._objective_pinned
        if not (adopt_policy or adopt_objective):
            return self
        bound = copy.copy(self)
        bound.last_stats = {}
        if adopt_policy:
            bound.policy = resolve_policy(policy)
            bound._policy_pinned = True
        if adopt_objective:
            bound.objective = (
                get_objective(objective)
                if isinstance(objective, str)
                else objective
            )
            bound._objective_pinned = True
        return bound

    # ------------------------------------------------------------------
    # Evaluation (the hot path)
    # ------------------------------------------------------------------
    def evaluate(self, instance: Instance):
        """Objective value of running the policy on one candidate order."""
        extra = (
            {"compiled": self.compiled}
            if self.compiled is not None
            and getattr(self.backend, "name", None) == "vector"
            else {}
        )
        result = self.backend.run(
            instance,
            self.policy,
            record_shares=False,
            max_steps=self.max_steps,
            objectives=(self.objective,),
            **extra,
        )
        return result.objective_values[self.objective.name]

    def _evaluate_cached(self, instance: Instance):
        """Memoized :meth:`evaluate` (key = the canonical order).

        :class:`~repro.core.instance.Instance` hashes and compares by
        its queue contents and release times, so an instance *is* its
        canonical order key: restarts and revisited neighbors hit the
        cache instead of re-running the kernel.  The cache lives for
        one :meth:`sequence` call.  With the prefix cache active,
        misses run through :meth:`_evaluate_prefix` (same values,
        resumed mid-run when a checkpoint of the incumbent applies).
        """
        value = self._cache.get(instance, _MISSING)
        if value is not _MISSING:
            self._counts["cache_hits"] += 1
            return value
        if self._prefix_active:
            value = self._evaluate_prefix(instance)
        else:
            value = self.evaluate(instance)
        self._counts["kernel_runs"] += 1
        self._cache[instance] = value
        return value

    # ------------------------------------------------------------------
    # Prefix-resume evaluation (checkpoints along the incumbent's run)
    # ------------------------------------------------------------------
    def _resolve_prefix_active(self) -> bool:
        """Whether this :meth:`sequence` call resumes from checkpoints.

        The auto default (``prefix_cache=None``) requires the
        sequential vector path: vector backend, ``batch_lanes == 1``,
        a vector-capable policy, and not ``compiled == "on"`` (the
        fused driver has no mid-run observer boundaries).  An explicit
        ``True`` on an incompatible configuration raises instead of
        silently degrading.

        Raises:
            SequencingError: ``prefix_cache=True`` with a non-vector
                backend, ``batch_lanes > 1``, a policy without vector
                support, or ``compiled == "on"``.
        """
        vector = getattr(self.backend, "name", None) == "vector"
        capable = getattr(self.policy, "supports_vector", False)
        eligible = (
            vector
            and capable
            and self.batch_lanes == 1
            and self.compiled != "on"
        )
        if self.prefix_cache is None:
            return eligible
        if self.prefix_cache and not eligible:
            reason = (
                "a non-vector backend"
                if not vector
                else "a policy without vector support"
                if not capable
                else "batch_lanes > 1"
                if self.batch_lanes != 1
                else 'compiled == "on"'
            )
            raise SequencingError(
                f"prefix_cache=True is incompatible with {reason}"
            )
        return bool(self.prefix_cache)

    @staticmethod
    def _queues_key(queues) -> tuple:
        return tuple(tuple(q) for q in queues)

    @staticmethod
    def _prefix_bounds(ref_key: tuple, cand_key: tuple) -> list | None:
        """Per-queue resume bounds of *cand_key* against *ref_key*.

        ``None`` entries mark identical queues (no constraint); an
        integer ``d`` means a checkpoint may only be resumed while the
        queue has started strictly fewer than ``d`` jobs (the common
        order prefix -- positions ``>= d`` hold different jobs).
        Returns ``None`` overall when any queue length differs: the
        policies see per-queue backlog counts (``jobs_remaining``), so
        runs over different queue shapes diverge from step 0 and no
        checkpoint transfers.
        """
        bounds: list[int | None] = []
        for rq, cq in zip(ref_key, cand_key):
            if len(rq) != len(cq):
                return None
            if rq == cq:
                bounds.append(None)
                continue
            d = 0
            for a, b in zip(rq, cq):
                if a != b:
                    break
                d += 1
            bounds.append(d)
        return bounds

    def _best_resume_point(self, cand_key: tuple) -> KernelCheckpoint | None:
        """Deepest incumbent checkpoint valid for the candidate order.

        Valid means every queue's started jobs (done plus the one in
        progress) lie strictly inside the common order prefix, so the
        captured state is exactly what the candidate's own run from
        ``t=0`` would have produced at that boundary.
        """
        if self._ref is None:
            return None
        ref_key, points = self._ref
        bounds = self._prefix_bounds(ref_key, cand_key)
        if bounds is None:
            return None
        constrained = [
            (i, d) for i, d in enumerate(bounds) if d is not None
        ]
        for point in reversed(points):
            done = point.state["done"]
            if all(done[i] < d for i, d in constrained):
                return point
        return None

    def _kernel_eval(self, candidate: Instance, *, capture: bool):
        """One direct kernel run of *candidate*, resumed if possible.

        Bit-identical to :meth:`evaluate` on the vector backend: the
        restored state is on the candidate's own trajectory (see
        :meth:`_best_resume_point`), and the checkpoint layer pins
        resume bit-identity.  With *capture* the run also snapshots
        every completion boundary (for :meth:`_promote_ref`) --
        snapshots cost :math:`O(\\text{completions})` each, so plain
        candidate evaluations skip them.
        """
        from ..backends.vector import VectorRuntime  # local: builds on core
        from ..core.simulator import default_step_limit

        cand_key = self._queues_key(candidate.queues)
        rt = VectorRuntime(candidate, tol=getattr(self.backend, "tol", 1e-9))
        objrec = ObjectiveRecorder(self.objective, candidate)
        point = self._best_resume_point(cand_key)
        if point is not None:
            rt.restore(point.state)
            payload = point.observers[0] if point.observers else None
            if payload is not None:
                objrec.restore_state(payload)
            self._counts["prefix_hits"] += 1
        observers: tuple = (objrec,)
        cap = None
        if capture:
            cap = _PrefixCapture(rt, (objrec,))
            observers = (objrec, cap)
        if self._step_limit is None:
            self._step_limit = default_step_limit(candidate)
        max_steps = (
            self.max_steps if self.max_steps is not None else self._step_limit
        )
        run_kernel(
            rt, self.policy, observers,
            max_steps=max_steps, label="sequencer candidate",
        )
        if cap is not None:
            self._promoted = (cand_key, cap.points)
        return objrec.value

    def _evaluate_prefix(self, candidate: Instance):
        """Resumable (but snapshot-free) candidate evaluation."""
        return self._kernel_eval(candidate, capture=False)

    def _promote_ref(self, candidate: Instance) -> None:
        """Make *candidate* (the new climb incumbent) the resume reference.

        Re-runs the incumbent once with completion-boundary snapshots
        enabled -- itself resumed from the outgoing reference, so the
        re-run only simulates the suffix past their common prefix.
        Promotions are rare (one per accepted move / restart kickoff)
        while rejected neighbors dominate, so paying the snapshot cost
        here instead of on every evaluation keeps the hot path lean.
        Snapshots of the old reference still on the new incumbent's
        trajectory -- started jobs strictly inside their common
        prefix, same queue lengths -- are merged in, so the suffix-only
        re-run does not lose its early restore points; the merged list
        keeps the newest :data:`_MAX_PREFIX_POINTS`.
        """
        if not self._prefix_active:
            return
        key = self._queues_key(candidate.queues)
        old = self._ref
        if old is not None and old[0] == key:
            return
        self._promoted = None
        self._kernel_eval(candidate, capture=True)
        promoted_key, points = self._promoted
        assert promoted_key == key
        if old is not None:
            bounds = self._prefix_bounds(old[0], key)
            if bounds is not None:
                constrained = [
                    (i, d) for i, d in enumerate(bounds) if d is not None
                ]
                have = {p.t for p in points}
                carried = [
                    p
                    for p in old[1]
                    if p.t not in have
                    and all(p.state["done"][i] < d for i, d in constrained)
                ]
                if carried:
                    points = sorted(carried + points, key=lambda p: p.t)
        self._ref = (key, points[-_MAX_PREFIX_POINTS:])

    def _evaluate_many(self, candidates: list[Instance]) -> list:
        """Evaluate a candidate batch, cache-aware and deduplicated.

        Cache misses run through one batched kernel call
        (:func:`repro.backends.batched.run_batch`) when the backend is
        the vector engine; other backends evaluate them one by one
        (same values, no batching).
        """
        values: list = [None] * len(candidates)
        fresh: dict[Instance, list[int]] = {}
        for idx, inst in enumerate(candidates):
            hit = self._cache.get(inst, _MISSING)
            if hit is not _MISSING:
                self._counts["cache_hits"] += 1
                values[idx] = hit
            else:
                slots = fresh.setdefault(inst, [])
                if slots:  # duplicate within this batch: one run serves both
                    self._counts["cache_hits"] += 1
                slots.append(idx)
        if fresh:
            insts = list(fresh)
            results = self._run_fresh(insts)
            self._counts["kernel_runs"] += len(insts)
            for inst, value in zip(insts, results):
                self._cache[inst] = value
                for idx in fresh[inst]:
                    values[idx] = value
        return values

    def _run_fresh(self, insts: list[Instance]) -> list:
        """Kernel-evaluate uncached orders (batched when possible)."""
        policy = self.policy
        if getattr(self.backend, "name", None) == "vector" and (
            getattr(policy, "supports_batch", False)
            or getattr(policy, "supports_vector", False)
        ):
            from ..backends.batched import run_batch  # local: builds on core

            max_steps = self.max_steps
            if max_steps is None:
                # The default step limit depends only on the job bag
                # and the release times, both invariant under the
                # neighborhood moves -- compute it once per search
                # instead of once per candidate lane (the exact
                # Fraction sums dominate short batched evaluations
                # otherwise).
                if self._step_limit is None:
                    from ..core.simulator import default_step_limit

                    self._step_limit = default_step_limit(insts[0])
                max_steps = self._step_limit
            result = run_batch(
                insts,
                policy,
                objectives=(self.objective,),
                tol=getattr(self.backend, "tol", 1e-9),
                max_steps=max_steps,
                compiled="auto" if self.compiled is None else self.compiled,
            )
            return result.objective_values[self.objective.name]
        return [self.evaluate(inst) for inst in insts]

    # ------------------------------------------------------------------
    # Neighborhood moves (queues mutated in place; moves return False
    # when the drawn move is a no-op so the caller can redraw)
    # ------------------------------------------------------------------
    @staticmethod
    def _positions(queues: list[list[Job]]) -> list[tuple[int, int]]:
        return [(i, j) for i, q in enumerate(queues) for j in range(len(q))]

    @staticmethod
    def _swap(queues: list[list[Job]], rng: random.Random) -> bool:
        """Swap the jobs at two distinct positions (possibly cross-queue)."""
        pos = LocalSearchSequencer._positions(queues)
        if len(pos) < 2:
            return False
        (i1, j1), (i2, j2) = rng.sample(pos, 2)
        if queues[i1][j1] == queues[i2][j2]:
            return False  # identical jobs: the order is unchanged
        queues[i1][j1], queues[i2][j2] = queues[i2][j2], queues[i1][j1]
        return True

    @staticmethod
    def _insert(queues: list[list[Job]], rng: random.Random) -> bool:
        """Relocate one job to another position (never emptying a queue)."""
        donors = [i for i, q in enumerate(queues) if len(q) > 1]
        if not donors:
            return False
        i1 = rng.choice(donors)
        j1 = rng.randrange(len(queues[i1]))
        job = queues[i1].pop(j1)
        i2 = rng.randrange(len(queues))
        j2 = rng.randrange(len(queues[i2]) + 1)
        queues[i2].insert(j2, job)
        return (i1, j1) != (i2, j2)

    # ------------------------------------------------------------------
    # The search
    # ------------------------------------------------------------------
    def sequence(self, instance: Instance) -> Instance:
        """Improve *instance*'s queue orders under the evaluation triple.

        Under an installed telemetry session the search is wrapped in
        a ``sequencer.search`` span carrying the final
        :attr:`last_stats` figures; the stats themselves are always
        collected (two clock reads and a few counters per search).
        """
        from ..telemetry import get_session  # local: builds on core

        t0 = perf_counter()
        self._cache = {}
        self._step_limit = None
        self._ref = None
        self._promoted = None
        self._prefix_active = self._resolve_prefix_active()
        c = self._counts = {
            "evaluations": 0,
            "accepted": 0,
            "rejected": 0,
            "perturbations": 0,
            "cache_hits": 0,
            "prefix_hits": 0,
            "kernel_runs": 0,
        }
        best_queues = [list(q) for q in instance.queues]
        best_value = self._evaluate_cached(instance)
        self._promote_ref(instance)
        c["evaluations"] += 1
        initial_value = best_value
        for r in range(self.restarts):
            rng = random.Random(self.seed + r * _RESTART_SEED_OFFSET)
            current = [list(q) for q in best_queues]
            current_value = best_value
            spent = 0  # this restart's evaluations; never carried over
            if r > 0:
                # Perturb the incumbent so this restart explores a
                # different basin; the perturbed order is evaluated
                # like any other candidate below.
                for _ in range(len(instance.queues)):
                    self._swap(current, rng)
                candidate = instance.with_queues(current)
                current_value = self._evaluate_cached(candidate)
                self._promote_ref(candidate)
                c["evaluations"] += 1
                spent += 1
                c["perturbations"] += 1
                if current_value < best_value:
                    best_queues = [list(q) for q in current]
                    best_value = current_value
            climb = (
                self._climb_batched if self.batch_lanes > 1 else self._climb
            )
            best_queues, best_value = climb(
                instance, rng, current, current_value,
                best_queues, best_value, spent,
            )
        improved = best_value < initial_value
        result = instance.with_queues(best_queues) if improved else instance
        if not instance.same_bag(result):  # pragma: no cover - invariant
            raise SequencingError(
                "local search corrupted the job bag (internal error)"
            )
        self._cache = {}  # orders die with the call; keep no references
        self._ref = None
        self._promoted = None
        seconds = perf_counter() - t0
        evaluations = c["evaluations"]
        self.last_stats = {
            "evaluations": evaluations,
            "initial": initial_value,
            "best": best_value,
            "improved": improved,
            "accepted": c["accepted"],
            "rejected": c["rejected"],
            "perturbations": c["perturbations"],
            "cache_hits": c["cache_hits"],
            "prefix_hits": c["prefix_hits"],
            "kernel_runs": c["kernel_runs"],
            "batch_lanes": self.batch_lanes,
            "seconds": seconds,
            "evals_per_second": evaluations / seconds if seconds > 0 else None,
        }
        session = get_session()
        if session is not None:
            session.metrics.counter("sequencer.evaluations").inc(evaluations)
            session.metrics.counter("sequencer.accepted").inc(c["accepted"])
            session.metrics.counter("sequencer.rejected").inc(c["rejected"])
            session.metrics.counter("sequencer.cache_hits").inc(
                c["cache_hits"]
            )
            session.metrics.counter("sequencer.prefix_hits").inc(
                c["prefix_hits"]
            )
            session.tracer.complete(
                "sequencer.search",
                t0,
                seconds,
                sequencer=self.name,
                policy=str(getattr(self.policy, "name", "?")),
                objective=self.objective.name,
                budget=self.budget,
                restarts=self.restarts,
                evaluations=evaluations,
                accepted=c["accepted"],
                rejected=c["rejected"],
                cache_hits=c["cache_hits"],
                prefix_hits=c["prefix_hits"],
                kernel_runs=c["kernel_runs"],
                batch_lanes=self.batch_lanes,
                improved=improved,
            )
        return result

    def _climb(
        self, instance, rng, current, current_value,
        best_queues, best_value, spent,
    ):
        """One restart's sequential hill-climb (``batch_lanes == 1``).

        The classic loop: draw one move, evaluate, accept iff strictly
        better.  Bit-identical move stream and acceptance decisions to
        earlier releases (only the memoization cache is new, and values
        are deterministic, so cached hits cannot change the
        trajectory).
        """
        c = self._counts
        misdraws = 0
        while spent < self.budget:
            trial = [list(q) for q in current]
            move = rng.choice((self._swap, self._insert))
            if not move(trial, rng):
                # Degenerate instances (one single-job queue) have
                # no non-trivial neighborhood; stop redrawing after
                # a burst of no-op moves instead of spinning.
                misdraws += 1
                if misdraws >= 32:
                    break
                continue
            misdraws = 0
            candidate = instance.with_queues(trial)
            value = self._evaluate_cached(candidate)
            c["evaluations"] += 1
            spent += 1
            if value < current_value:
                c["accepted"] += 1
                current = trial
                current_value = value
                self._promote_ref(candidate)
                if value < best_value:
                    best_queues = [list(q) for q in trial]
                    best_value = value
            else:
                c["rejected"] += 1
        return best_queues, best_value

    def _climb_batched(
        self, instance, rng, current, current_value,
        best_queues, best_value, spent,
    ):
        """One restart's batched hill-climb (``batch_lanes > 1``).

        Each iteration draws up to ``batch_lanes`` neighbors of the
        incumbent from the same seeded move stream, evaluates the
        whole batch through one batched kernel call
        (:meth:`_evaluate_many`), and moves to the best candidate iff
        it strictly improves the incumbent (first index wins ties, so
        the trajectory is deterministic).
        """
        c = self._counts
        misdraws = 0
        while spent < self.budget:
            lanes = min(self.batch_lanes, self.budget - spent)
            trials: list[list[list[Job]]] = []
            while len(trials) < lanes:
                trial = [list(q) for q in current]
                move = rng.choice((self._swap, self._insert))
                if not move(trial, rng):
                    misdraws += 1
                    if misdraws >= 32:
                        break
                    continue
                misdraws = 0
                trials.append(trial)
            if not trials:
                break
            candidates = [instance.with_queues(t) for t in trials]
            values = self._evaluate_many(candidates)
            c["evaluations"] += len(candidates)
            spent += len(candidates)
            best_i = min(range(len(values)), key=values.__getitem__)
            if values[best_i] < current_value:
                c["accepted"] += 1
                c["rejected"] += len(candidates) - 1
                current = trials[best_i]
                current_value = values[best_i]
                if current_value < best_value:
                    best_queues = [list(q) for q in trials[best_i]]
                    best_value = current_value
            else:
                c["rejected"] += len(candidates)
            if misdraws >= 32:
                break
        return best_queues, best_value
