"""Greedy list placement: build queues job by job with a lookahead bound.

The placement variant of the sequencing layer (after Maack et al.'s
job-to-machine placement model): jobs are visited in a priority order
-- largest size first, the classical LPT list rule, with the
bottleneck requirement breaking ties -- and each job is appended to
the *least-loaded* queue, where load is measured by a lookahead bound
on that queue's schedule:

1. primarily the queue's completion-time lower bound
   ``release_i + sum_j ceil(p_ij)`` (a processor cannot finish its
   queue faster than its jobs' full-speed steps),
2. then the queue's accumulated work ``sum_j r_ij p_ij`` (local
   resource congestion -- the per-queue slice of Observation 1's
   bound),
3. then the queue index (deterministic tie-break).

(The job being placed contributes the same amount to every candidate
queue, so the argmin only needs the queues' current loads.)

For unit-size bags the first criterion degenerates to job counts and
the second spreads resource-hungry jobs evenly -- exactly the balance
heuristic that makes water-filling policies effective downstream.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.instance import Instance
from ..core.job import Job
from .base import Sequencer, register_sequencer

__all__ = ["GreedyPlacement"]


@register_sequencer
class GreedyPlacement(Sequencer):
    """LPT-style list placement onto the least-loaded queue.

    Unlike the static orders this strategy may move jobs *between*
    processors: :meth:`sequence` flattens the instance to its job bag
    and re-places everything (release times stay with their
    processors, as in the placement literature -- they describe when a
    machine becomes available, not a property of the jobs).
    """

    name = "greedy-placement"

    def sequence(self, instance: Instance) -> Instance:
        """Re-place *instance*'s whole job bag onto its processors."""
        return self.place(
            instance.job_bag(),
            instance.num_processors,
            releases=instance.releases,
        )

    def place(
        self,
        jobs: Iterable[Job | object],
        m: int,
        *,
        releases: Sequence[int] | None = None,
    ) -> Instance:
        """Greedy list placement of a bag of jobs on ``m`` queues."""
        bag = Instance.coerce_bag(jobs, m)
        # LPT visit order: big jobs first so late arrivals only fill
        # gaps; requirement breaks ties, original index keeps the sort
        # stable and the placement deterministic.
        visit = sorted(
            range(len(bag)),
            key=lambda b: (-bag[b].size, -bag[b].requirement, b),
        )
        rel = tuple(releases) if releases is not None else (0,) * m
        queues: list[list[Job]] = [[] for _ in range(m)]
        steps = [float(r) for r in rel]  # completion-time lower bounds
        work = [0.0] * m  # accumulated resource-time
        for b in visit:
            job = bag[b]
            i = min(range(m), key=lambda q: (steps[q], work[q], q))
            queues[i].append(job)
            steps[i] += job.steps_at_full_speed()
            work[i] += float(job.work)
        # A very late release can starve its queue entirely; the model
        # requires every processor to hold at least one job, so steal
        # the tail job of the fullest queue for each starved one.
        for q in range(m):
            if not queues[q]:
                donor = max(range(m), key=lambda d: len(queues[d]))
                queues[q].append(queues[donor].pop())
        return Instance(queues, releases=releases)
