"""Sequencing layer: per-processor queue order as a decision variable.

The paper's central modelling decision is that each processor's job
queue order is fixed a priori -- and its Theorem 4 hardness gadget
shows that this order is exactly where the problem's difficulty lives.
This subpackage relaxes the assumption: a
:class:`~repro.sequencing.base.Sequencer` maps a bag of jobs (or an
existing :class:`~repro.core.instance.Instance`) to concrete
per-processor ordered queues, and the axis is threaded through
``run_policy(..., sequencer=...)``,
:class:`~repro.backends.batch.BatchRunner`,
:func:`~repro.backends.crosscheck.cross_validate`, the ORDER
experiment, and the CLI's ``--sequencer`` flag -- exactly like
policies, backends, and objectives before it.

Registered strategies:

* ``fixed`` -- :class:`FixedOrder`, the identity (the paper's model,
  bit-identical);
* ``spt`` / ``lpt`` -- :class:`SPTOrder` / :class:`LPTOrder`,
  shortest/longest processing time first within each queue;
* ``requirement-desc`` -- :class:`RequirementDescending`,
  resource-hungry jobs first;
* ``slack`` -- :class:`SlackOrder`, earliest due date first
  (deadline-aware);
* ``greedy-placement`` -- :class:`GreedyPlacement`, LPT list placement
  onto the least-loaded queue (may move jobs between processors);
* ``local-search`` -- :class:`LocalSearchSequencer`, objective-driven
  swap/insertion hill-climbing with budgeted restarts on decorrelated
  seed streams;
* ``optimal`` -- :class:`OptimalSequencer`, certified-optimal orders
  via the :mod:`repro.analysis.certify` branch-and-bound (exact
  oracles when they apply, policy simulation otherwise; exponential,
  small instances only).

Select by name::

    from repro.sequencing import get_sequencer
    better = get_sequencer("local-search", budget=300).sequence(inst)
"""

from .base import (
    Sequencer,
    available_sequencers,
    get_sequencer,
    register_sequencer,
    resolve_sequencer,
)
from .local_search import LocalSearchSequencer
from .optimal import OptimalSequencer
from .placement import GreedyPlacement
from .static_orders import (
    FixedOrder,
    LPTOrder,
    RequirementDescending,
    SlackOrder,
    SPTOrder,
    StaticOrder,
)

__all__ = [
    "FixedOrder",
    "GreedyPlacement",
    "LPTOrder",
    "LocalSearchSequencer",
    "OptimalSequencer",
    "RequirementDescending",
    "SPTOrder",
    "Sequencer",
    "SlackOrder",
    "StaticOrder",
    "available_sequencers",
    "get_sequencer",
    "register_sequencer",
    "resolve_sequencer",
]
