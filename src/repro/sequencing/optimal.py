"""The certified-optimal sequencer: branch-and-bound, not hill-climbing.

Where :class:`~repro.sequencing.local_search.LocalSearchSequencer`
*searches* for a good queue order, :class:`OptimalSequencer` *proves*
one: it runs the :func:`repro.analysis.certify.certify_opt`
branch-and-bound over every per-queue permutation and returns the
certified witness order.  Exponential in the worst case -- meant for
small instances (certification studies, golden suites, gap
measurement), not production dispatch.

Two targets, chosen automatically:

* ``"opt"`` -- certify the offline optimum ``min_sigma OPT(I^sigma)``
  through the per-order exact oracles (requires the analyzed model:
  one resource, unit sizes, no arrivals, makespan objective);
* ``"policy"`` -- certify the best order *for the run's policy* by
  simulating every candidate order (any instance the backends accept;
  the epsilon-certified mode).

``target="auto"`` (the default) uses ``"opt"`` whenever the exact
oracles apply and falls back to ``"policy"`` otherwise, so the
sequencer honors the registry contract on arrival/multi-resource
instances instead of refusing them.
"""

from __future__ import annotations

import copy

from ..core.instance import Instance
from ..exceptions import SequencingError
from .base import Sequencer, register_sequencer

__all__ = ["OptimalSequencer"]

_TARGETS = ("auto", "opt", "policy")


@register_sequencer
class OptimalSequencer(Sequencer):
    """Certified-optimal queue orders via branch-and-bound.

    Args:
        target: ``"opt"`` (exact oracles; raises on instances outside
            their model), ``"policy"`` (simulate the policy on every
            candidate order), or ``"auto"`` (the default: ``"opt"``
            when the oracles apply and the objective is makespan,
            ``"policy"`` otherwise).
        oracle: per-order exact oracle for the ``"opt"`` target
            ("auto", "opt-two", "opt-general", "brute-force", "milp").
        policy: policy for the ``"policy"`` target (registry name or
            object).  ``None`` leaves it unpinned: :meth:`bind` adopts
            the run's policy, standalone use falls back to
            ``"greedy-balance"`` (the same discipline as local
            search).
        backend: simulation backend for the ``"policy"`` target.
        objective: objective name for the ``"policy"`` target
            (``None`` is unpinned, falling back to makespan).
        max_nodes: branch-and-bound node budget.  When exhausted, the
            best order found so far is returned and
            ``last_certificate.proved`` is False.

    Attributes:
        last_certificate: the
            :class:`~repro.analysis.certify.Certificate` of the most
            recent :meth:`sequence` call (``None`` before any call) --
            experiments read the certified value, node counts, and
            the ``proved`` flag from here.

    Example:
        >>> from repro.core import Instance
        >>> from repro.sequencing import get_sequencer
        >>> seq = get_sequencer("optimal")
        >>> inst = Instance([["1/2", 1, "1/2"], [1, "1/2", 1]])
        >>> best = seq.sequence(inst)
        >>> inst.same_bag(best), seq.last_certificate.value
        (True, 5)
        >>> seq.last_certificate.proved
        True
    """

    name = "optimal"

    def __init__(
        self,
        *,
        target: str = "auto",
        oracle: str = "auto",
        policy=None,
        backend: str = "vector",
        objective: str | None = None,
        max_nodes: int = 100_000,
    ) -> None:
        """Validate options; see the class docstring for their meaning."""
        if target not in _TARGETS:
            raise SequencingError(
                f"unknown target {target!r}; available: {list(_TARGETS)}"
            )
        if max_nodes < 1:
            raise SequencingError(f"max_nodes must be >= 1, got {max_nodes}")
        self.target = target
        self.oracle = oracle
        self._policy_pinned = policy is not None
        self._objective_pinned = objective is not None
        self.policy = policy
        self.backend = backend
        self.objective = objective
        self.max_nodes = int(max_nodes)
        self.last_certificate = None

    def bind(self, *, policy=None, objective=None) -> "OptimalSequencer":
        """Adopt the run's policy/objective for any unpinned option.

        Mirrors
        :meth:`~repro.sequencing.local_search.LocalSearchSequencer.bind`:
        explicit constructor options always win, adoption returns a
        bound copy so the caller's object stays unpinned.
        """
        adopt_policy = policy is not None and not self._policy_pinned
        adopt_objective = objective is not None and not self._objective_pinned
        if not (adopt_policy or adopt_objective):
            return self
        bound = copy.copy(self)
        bound.last_certificate = None
        if adopt_policy:
            bound.policy = policy
            bound._policy_pinned = True
        if adopt_objective:
            bound.objective = (
                objective if isinstance(objective, str) else objective.name
            )
            bound._objective_pinned = True
        return bound

    def _wants_exact(self, instance: Instance) -> bool:
        """Whether this call should certify the offline optimum."""
        applies = (
            instance.is_single_resource
            and instance.is_unit_size
            and not instance.has_releases
            and self.objective in (None, "makespan")
        )
        if self.target == "opt":
            if not applies:
                raise SequencingError(
                    "OptimalSequencer(target='opt') certifies the exact "
                    "oracles' model only (single resource, unit sizes, no "
                    "arrivals, makespan); use target='policy' (or 'auto') "
                    "for this instance"
                )
            return True
        return self.target == "auto" and applies

    def sequence(self, instance: Instance) -> Instance:
        """Reorder *instance*'s queues to the certified-best order.

        The certificate itself (value, node counts, ``proved``) is
        kept in :attr:`last_certificate`.  Job bag, job-to-processor
        assignment, and release times are always preserved -- this is
        a pure ordering strategy.
        """
        from ..analysis.certify import certify_opt  # local: builds on this

        if self._wants_exact(instance):
            cert = certify_opt(
                instance, oracle=self.oracle, max_nodes=self.max_nodes
            )
        else:
            policy = self.policy if self.policy is not None else "greedy-balance"
            objective = self.objective
            cert = certify_opt(
                instance,
                policy=policy,
                backend=self.backend,
                objective=(
                    None if objective in (None, "makespan") else objective
                ),
                max_nodes=self.max_nodes,
            )
        self.last_certificate = cert
        return cert.witness(instance)
