"""Deadline objectives: total tardiness, maximum lateness, miss count.

A job with due step :math:`d_{ij}` (1-based, see
:attr:`repro.core.job.Job.deadline`) completing at :math:`C_{ij}` has
*lateness* :math:`L_{ij} = C_{ij} - d_{ij}` and *tardiness*
:math:`T_{ij} = \\max(0, L_{ij})`.  One class serves the three classic
aggregates as modes (each registered under its own name):

``total`` (``"tardiness"``)
    :math:`\\sum_{i,j} w_{ij} T_{ij}` -- weighted total tardiness; 0
    iff every deadline is met.

``max-lateness`` (``"max-lateness"``)
    :math:`L_{max} = \\max_{i,j} L_{ij}` -- may be negative when all
    deadlines are met with slack; the feasibility question "are all
    deadlines met?" is exactly :math:`L_{max} \\le 0`.

``misses`` (``"deadline-misses"``)
    :math:`|\\{(i,j) : C_{ij} > d_{ij}\\}|` -- the feasibility-count
    mode; 0 iff the schedule meets every deadline.

Jobs without a deadline contribute nothing in any mode; instances with
no deadlines at all evaluate to 0 everywhere.  The deadline variants
of the discrete--continuous scheduling line (Józefowska & Węglarz,
cited as [10] by the paper) motivate the axis; the
:class:`~repro.algorithms.flowdeadline.EDFWaterfill` policy is tuned
for it.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.instance import Instance
from ..core.job import JobId
from ..core.lower_bounds import max_lateness_bound, tardiness_bound
from .base import Objective, ObjectiveAccumulator, register_objective

__all__ = ["Tardiness", "TARDINESS_MODES"]

#: Recognized aggregation modes (see the module docstring).
TARDINESS_MODES = ("total", "max-lateness", "misses")

_MODE_NAMES = {
    "total": "tardiness",
    "max-lateness": "max-lateness",
    "misses": "deadline-misses",
}


class _TardinessAccumulator(ObjectiveAccumulator):
    """Accumulate lateness statistics over the completion stream."""

    __slots__ = ("_jobs", "mode", "total", "max_lateness", "misses")

    def __init__(self, instance: Instance, mode: str) -> None:
        self._jobs = {
            jid: (job.deadline, job.weight) for jid, job in instance.jobs()
        }
        self.mode = mode
        self.total = Fraction(0)
        self.max_lateness: int | None = None
        self.misses = 0

    def complete(self, job: JobId, t: int) -> None:
        """Fold one completion into tardiness/lateness/miss totals."""
        deadline, weight = self._jobs[job]
        if deadline is None:
            return
        lateness = t + 1 - deadline
        if self.max_lateness is None or lateness > self.max_lateness:
            self.max_lateness = lateness
        if lateness > 0:
            self.total += weight * lateness
            self.misses += 1

    def finish(self, makespan: int):
        """The aggregate selected by the mode (0 without deadlines)."""
        if self.mode == "total":
            return self.total
        if self.mode == "max-lateness":
            return 0 if self.max_lateness is None else self.max_lateness
        return self.misses


class Tardiness(Objective):
    """Deadline objective with selectable aggregation mode.

    Args:
        mode: one of :data:`TARDINESS_MODES` (default ``"total"``).

    Example:
        >>> from repro.core import Instance
        >>> from repro.algorithms import GreedyBalance
        >>> inst = Instance.from_percent([[100], [100]]).with_deadlines(
        ...     [[1], [1]]
        ... )
        >>> schedule = GreedyBalance().run(inst)
        >>> Tardiness().value(schedule)          # one job finishes late
        Fraction(1, 1)
        >>> Tardiness("misses").value(schedule)
        1
    """

    def __init__(self, mode: str = "total") -> None:
        if mode not in TARDINESS_MODES:
            raise ValueError(
                f"unknown tardiness mode {mode!r}; "
                f"available: {list(TARDINESS_MODES)}"
            )
        self.mode = mode
        self.name = _MODE_NAMES[mode]

    def start(self, instance: Instance) -> _TardinessAccumulator:
        """A fresh accumulator bound to the instance's deadlines."""
        return _TardinessAccumulator(instance, self.mode)

    def lower_bound(self, instance: Instance):
        """Earliest-completion certificates, aggregated per mode.

        The miss-count mode reports 0 (a count certificate would need
        the per-job bounds to be tight, which contention breaks).
        """
        if self.mode == "total":
            return tardiness_bound(instance)
        if self.mode == "max-lateness":
            return max_lateness_bound(instance)
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tardiness({self.mode!r})"


register_objective(lambda: Tardiness("total"))
register_objective(lambda: Tardiness("max-lateness"))
register_objective(lambda: Tardiness("misses"))
