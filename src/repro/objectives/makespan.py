"""The paper's objective: makespan (number of time steps).

:class:`Makespan` is the default objective everywhere and is pinned
bit-identical to the pre-objective-layer behavior: its value *is*
``Schedule.makespan`` / ``BackendResult.makespan``, and its lower
bound *is* :meth:`repro.core.instance.Instance.makespan_lower_bound`
(Observation 1 plus the release-aware refinements).
"""

from __future__ import annotations

from ..core.instance import Instance
from ..core.job import JobId
from .base import Objective, ObjectiveAccumulator, register_objective

__all__ = ["Makespan"]


class _MakespanAccumulator(ObjectiveAccumulator):
    """Trivial accumulator: the value is the step count itself."""

    __slots__ = ()

    def complete(self, job: JobId, t: int) -> None:
        """Completions carry no extra information for the makespan."""

    def finish(self, makespan: int) -> int:
        """The makespan is the number of executed steps."""
        return makespan


@register_objective
class Makespan(Objective):
    """Number of steps until every job is finished (Sections 4-8).

    Example:
        >>> from repro.core import Instance
        >>> from repro.algorithms import GreedyBalance
        >>> inst = Instance.from_percent([[60, 40], [80, 20]])
        >>> schedule = GreedyBalance().run(inst)
        >>> Makespan().value(schedule) == schedule.makespan
        True
    """

    name = "makespan"

    def start(self, instance: Instance) -> _MakespanAccumulator:
        """A fresh (stateless) makespan accumulator."""
        return _MakespanAccumulator()

    def lower_bound(self, instance: Instance) -> int:
        """Observation 1 + release/length refinements (the paper's bound)."""
        return instance.makespan_lower_bound()
