"""The :class:`Objective` protocol and its registry.

The paper optimizes the makespan; the objective layer makes that choice
pluggable.  An *objective* bundles four things behind one contract:

* **value** -- evaluate a finished run, either from a validated
  :class:`~repro.core.schedule.Schedule` or from a backend's
  completion-step record (:meth:`Objective.value` /
  :meth:`Objective.value_from_completions`);
* **online accumulation** -- a per-run
  :class:`ObjectiveAccumulator` driven by the kernel's completion
  stream, so both the exact and the vector runtime compute the
  objective *during* the run with no second pass
  (:meth:`Objective.online_observer` wraps it in a
  :class:`~repro.core.kernel.ObjectiveRecorder` step observer);
* **lower bound** -- an instance-only certificate
  (:meth:`Objective.lower_bound`) generalizing Observation 1's role
  for the makespan;
* **comparison semantics** -- every objective here is *minimized*
  (:attr:`Objective.sense`), and :meth:`Objective.ratio` renders
  value/bound quality ratios with an explicit guard for bounds of 0
  (tardiness is frequently 0 at the optimum).

Concrete implementations: :class:`~repro.objectives.makespan.Makespan`
(the paper's objective, bit-identical to ``Schedule.makespan``),
:class:`~repro.objectives.flow.WeightedFlowTime` (:math:`F_w`, cf. the
mean response time literature), and
:class:`~repro.objectives.tardiness.Tardiness` (total tardiness,
maximum lateness :math:`L_{max}`, and deadline-miss counting, cf. the
deadline variants of the discrete--continuous line).

Objectives are registered by name (:func:`register_objective`) so the
CLI, :class:`~repro.backends.batch.BatchRunner`, and the experiment
harness can select them the way they select policies and backends.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Mapping

from ..core.instance import Instance
from ..core.job import JobId
from ..core.kernel import ObjectiveRecorder

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..backends.base import BackendResult
    from ..core.schedule import Schedule

__all__ = [
    "Objective",
    "ObjectiveAccumulator",
    "register_objective",
    "get_objective",
    "available_objectives",
]


class ObjectiveAccumulator:
    """Per-run mutable state fed by the kernel's completion stream.

    Created by :meth:`Objective.start`; :meth:`complete` is called once
    per finished job (in completion order), :meth:`finish` once at the
    end of the run and returns the objective value.  Accumulators are
    single-use: one accumulator per run.
    """

    def complete(self, job: JobId, t: int) -> None:
        """Record that *job* completed in (0-based) step *t*."""
        raise NotImplementedError

    def finish(self, makespan: int):
        """Close the run of *makespan* steps and return the value."""
        raise NotImplementedError


class Objective(ABC):
    """Abstract scheduling objective (see the module docstring).

    Subclasses implement :meth:`start` (the online accumulator) and
    :meth:`lower_bound`; evaluation and observer plumbing are shared.

    Example:
        >>> from repro.core import Instance
        >>> from repro.algorithms import GreedyBalance
        >>> from repro.objectives import get_objective
        >>> schedule = GreedyBalance().run(
        ...     Instance.from_percent([[50, 50], [50, 50]])
        ... )
        >>> get_objective("makespan").value(schedule)
        2
    """

    #: Registry / CLI identifier.
    name: str = "objective"
    #: All objectives in this layer are minimized.
    sense: str = "min"

    @abstractmethod
    def start(self, instance: Instance) -> ObjectiveAccumulator:
        """A fresh accumulator for one run on *instance*."""

    @abstractmethod
    def lower_bound(self, instance: Instance):
        """An instance-only lower bound on the optimal value."""

    def online_observer(self, instance: Instance) -> ObjectiveRecorder:
        """A kernel step observer computing this objective online.

        Attach it to any :func:`~repro.core.kernel.run_kernel` run
        (exact or vector runtime); the value is on
        :attr:`~repro.core.kernel.ObjectiveRecorder.value` after the
        run finishes.
        """
        return ObjectiveRecorder(self, instance)

    def value_from_completions(
        self,
        instance: Instance,
        completion_steps: Mapping[JobId, int],
        makespan: int | None = None,
    ):
        """Evaluate the objective from a completion-step record.

        *completion_steps* maps every job id to its 0-based completion
        step (the form both backends report).  *makespan* defaults to
        ``max(step) + 1`` -- exact for complete runs, which end in the
        step finishing the last job.
        """
        accumulator = self.start(instance)
        for job, t in completion_steps.items():
            accumulator.complete(job, t)
        if makespan is None:
            makespan = (
                max(completion_steps.values()) + 1 if completion_steps else 0
            )
        return accumulator.finish(makespan)

    def value(self, source: "Schedule | BackendResult", instance: Instance | None = None):
        """Evaluate the objective on a finished run.

        Accepts a validated :class:`~repro.core.schedule.Schedule` or a
        :class:`~repro.backends.base.BackendResult`; *instance* is only
        needed for backend results that do not carry one.
        """
        if instance is None:
            instance = getattr(source, "instance", None)
        if instance is None:
            raise ValueError(
                f"objective {self.name!r} needs the instance to evaluate "
                "this result; pass instance= explicitly"
            )
        makespan = getattr(source, "makespan", None)
        return self.value_from_completions(
            instance, source.completion_steps, makespan
        )

    def ratio(self, value, bound) -> float:
        """``value / lower_bound`` with a guard for zero bounds.

        For objectives whose optimum can be 0 (tardiness, misses) the
        bound is frequently 0: a value of 0 then scores a perfect 1.0
        and any positive value scores ``inf`` (the certificate cannot
        grade it).  Negative bounds (max lateness) fall back to the
        same guard.
        """
        if bound > 0:
            return float(Fraction(value) / Fraction(bound))
        return 1.0 if value <= bound else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


# ----------------------------------------------------------------------
# Registry (CLI / batch / experiment harness lookup)
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Callable[[], Objective]] = {}


def register_objective(factory: Callable[[], Objective]) -> Callable[[], Objective]:
    """Register an objective factory under its ``name`` (decorator-friendly)."""
    probe = factory()
    _REGISTRY[probe.name] = factory
    return factory


def get_objective(name: str) -> Objective:
    """Instantiate a registered objective by name.

    Raises:
        KeyError: with the list of known names.
    """
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown objective {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_objectives() -> list[str]:
    """Names of all registered objectives."""
    return sorted(_REGISTRY)
