"""Pluggable scheduling objectives (makespan, flow, deadlines).

The paper's analysis targets the makespan; this layer makes the
objective a first-class, swappable axis threaded through the kernel
(online :class:`~repro.core.kernel.ObjectiveRecorder` observers), the
backends (``run(..., objectives=...)`` /
:func:`~repro.backends.crosscheck.cross_validate`), the batch runner,
the experiment harness, and the CLI (``--objective``).

Registered objectives:

* ``makespan`` -- :class:`Makespan`, the paper's objective (default
  everywhere, bit-identical to ``Schedule.makespan``);
* ``weighted-flow`` -- :class:`WeightedFlowTime`,
  :math:`F_w = \\sum w (C - r)`;
* ``tardiness`` / ``max-lateness`` / ``deadline-misses`` --
  :class:`Tardiness` in its three aggregation modes.

Select by name::

    from repro.objectives import get_objective
    flow = get_objective("weighted-flow")
    value = flow.value(schedule)
    bound = flow.lower_bound(schedule.instance)
"""

from .base import (
    Objective,
    ObjectiveAccumulator,
    available_objectives,
    get_objective,
    register_objective,
)
from .flow import WeightedFlowTime
from .makespan import Makespan
from .tardiness import TARDINESS_MODES, Tardiness

__all__ = [
    "Makespan",
    "Objective",
    "ObjectiveAccumulator",
    "TARDINESS_MODES",
    "Tardiness",
    "WeightedFlowTime",
    "available_objectives",
    "get_objective",
    "register_objective",
]
