"""Weighted flow time :math:`F_w = \\sum_{i,j} w_{ij} (C_{ij} - r_i)`.

Flow (response) time measures how long work lingers in the system:
job ``(i, j)`` arrives with its processor at release ``r_i`` and
completes at the 1-based step :math:`C_{ij}`; its flow is the
difference, scaled by the job's weight.  With unit weights and the
static model (:math:`r_i = 0`) the objective degenerates to the total
completion time already exposed by
:func:`repro.analysis.metrics.total_completion_time` -- the property
tests pin that equality.

Centering the objective follows *Towards Optimality in Parallel
Scheduling* (Berg et al.) and the mean response/flow time tradition;
the :class:`~repro.algorithms.flowdeadline.WeightedSRPT` policy is
tuned for it.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.instance import Instance
from ..core.job import JobId
from ..core.lower_bounds import weighted_flow_bound
from .base import Objective, ObjectiveAccumulator, register_objective

__all__ = ["WeightedFlowTime"]


class _FlowAccumulator(ObjectiveAccumulator):
    """Sum ``w * (C - release)`` over the completion stream."""

    __slots__ = ("_weights", "_releases", "total")

    def __init__(self, instance: Instance) -> None:
        self._weights = {jid: job.weight for jid, job in instance.jobs()}
        self._releases = instance.releases
        self.total = Fraction(0)

    def complete(self, job: JobId, t: int) -> None:
        """Add the job's weighted flow (1-based completion - release)."""
        self.total += self._weights[job] * (t + 1 - self._releases[job[0]])

    def finish(self, makespan: int) -> Fraction:
        """The accumulated weighted flow time."""
        return self.total


@register_objective
class WeightedFlowTime(Objective):
    """Weighted flow time (see the module docstring).

    Example:
        >>> from repro.core import Instance
        >>> from repro.algorithms import GreedyBalance
        >>> inst = Instance.from_percent([[100], [100]])
        >>> WeightedFlowTime().value(GreedyBalance().run(inst))
        Fraction(3, 1)
    """

    name = "weighted-flow"

    def start(self, instance: Instance) -> _FlowAccumulator:
        """A fresh flow accumulator bound to the instance's weights."""
        return _FlowAccumulator(instance)

    def lower_bound(self, instance: Instance) -> Fraction:
        """Per-job earliest-completion certificates, weight-summed."""
        return weighted_flow_bound(instance)
