"""ASCII rendering of instances, schedules and hypergraphs.

Mirrors the paper's figure conventions: one row per processor, node
labels are resource requirements in percent, schedule time runs left
to right.  Useful in terminals, doctests and the CLI; the SVG module
produces the publication-style counterparts.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.hypergraph import SchedulingGraph
from ..core.instance import Instance
from ..core.numerics import ZERO, as_float, format_frac
from ..core.schedule import Schedule

__all__ = ["render_instance", "render_schedule", "render_components", "render_utilization"]


def _pct(x: Fraction) -> str:
    """A requirement as a compact percent label (the paper's style)."""
    value = x * 100  # exact
    if value.denominator == 1:
        return str(value.numerator)
    return f"{as_float(value):.1f}"


def render_instance(instance: Instance) -> str:
    """Job grid with percent labels, one line per processor.

    Example (Figure 1's instance)::

        p0 | 20 10 10 10
        p1 | 50 55 90 55 10
        p2 | 50 40 95

    Multi-resource jobs show one percent label per resource joined by
    ``/`` (e.g. ``20/55`` for a bus/memory requirement pair).
    """
    lines = []
    show_releases = instance.has_releases

    def label(job) -> str:
        text = "/".join(_pct(r) for r in job.requirements)
        if job.deadline is not None:
            text += f"(d{job.deadline})"
        return text

    for i, queue in enumerate(instance.queues):
        labels = " ".join(label(job) for job in queue)
        suffix = f"  (arrives t={instance.release(i)})" if show_releases else ""
        lines.append(f"p{i} | {labels}{suffix}")
    return "\n".join(lines)


def render_schedule(schedule: Schedule, *, max_width: int = 120) -> str:
    """Gantt-style chart: per step, which job each processor works on
    and the share it receives (percent).

    ``.`` marks an idle-but-active processor (zero share), blank marks
    a finished one.  Columns are time steps (0-based header).  On
    instances with deadlines, the completion cell of a late job is
    marked ``!`` and a lateness summary line is appended (the DEADLINE
    experiment's terminal view); deadline-free schedules render exactly
    as before.
    """
    inst = schedule.instance
    m = inst.num_processors
    t_end = schedule.makespan
    late = schedule.lateness_by_job()
    cells: list[list[str]] = [[] for _ in range(m)]
    for t in range(t_end):
        step = schedule.step(t)
        for i in range(m):
            j = step.active[i]
            if j is None:
                cells[i].append("")
            elif step.shares[i] == ZERO:
                cells[i].append(".")
            else:
                cell = f"j{j}:{_pct(step.shares[i])}"
                if (i, j) in late and schedule.completion_step(i, j) == t:
                    cell += "!"
                cells[i].append(cell)
    width = max(5, max((len(c) for row in cells for c in row), default=5)) + 1
    header = "t    " + "".join(f"{t:<{width}}" for t in range(t_end))
    lines = [header[:max_width]]
    for i in range(m):
        row = f"p{i}   " + "".join(f"{c:<{width}}" for c in cells[i])
        lines.append(row[:max_width])
    lines.append(f"makespan = {t_end}")
    if inst.has_deadlines:
        total = sum(late.values())
        lines.append(
            f"deadlines: {len(late)} late job(s), total tardiness = {total}"
            + (
                "  [" + ", ".join(
                    f"j({i},{j})+{amount}"
                    for (i, j), amount in sorted(late.items())
                ) + "]"
                if late
                else ""
            )
        )
    return "\n".join(lines)


def render_components(graph: SchedulingGraph) -> str:
    """Component summary in the paper's notation: per component its
    class ``q_k``, edge count ``#_k``, node count ``|C_k|`` and step
    range."""
    lines = [
        f"N = {graph.num_components} components, "
        f"#_avg = {format_frac(graph.mean_edges_per_component())}"
    ]
    for comp in graph.components:
        lines.append(
            f"C{comp.index + 1}: steps {comp.first_step}..{comp.last_step}  "
            f"q={comp.klass}  #edges={comp.num_edges}  |C|={comp.num_nodes}"
        )
    return "\n".join(lines)


def render_utilization(schedule: Schedule, *, width: int = 50) -> str:
    """A per-step utilization bar chart (useful work per step)."""
    lines = []
    for t in range(schedule.makespan):
        frac = as_float(schedule.step(t).useful)
        bar = "#" * round(frac * width)
        lines.append(f"t={t:<4d} |{bar:<{width}}| {frac * 100:5.1f}%")
    return "\n".join(lines)
