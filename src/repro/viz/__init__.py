"""Rendering: ASCII for terminals, hand-rolled SVG for figures."""

from .ascii_art import (
    render_components,
    render_instance,
    render_schedule,
    render_utilization,
)
from .svg import hypergraph_svg, schedule_svg, series_svg

__all__ = [
    "hypergraph_svg",
    "render_components",
    "render_instance",
    "render_schedule",
    "render_utilization",
    "schedule_svg",
    "series_svg",
]
