"""Dependency-free SVG rendering of schedules and hypergraphs.

matplotlib is not available in the offline environment, so the figure
reproductions write plain SVG (XML) directly.  Two renderers:

* :func:`schedule_svg` -- a Gantt chart: one lane per processor, one
  box per (job, step) with opacity proportional to the share granted;
  completed-job boundaries drawn as heavy ticks.
* :func:`hypergraph_svg` -- the paper's Figure 1 style: job nodes laid
  out in a processor x position grid with percent labels, hyperedge
  hulls drawn as rounded outlines per time step, components colored.

Both return the SVG document as a string; callers write it to disk.
"""

from __future__ import annotations

import html

from ..core.hypergraph import SchedulingGraph
from ..core.numerics import as_float
from ..core.schedule import Schedule

__all__ = ["schedule_svg", "hypergraph_svg", "series_svg"]

_COMPONENT_COLORS = [
    "#4e79a7",
    "#f28e2b",
    "#59a14f",
    "#e15759",
    "#b07aa1",
    "#76b7b2",
    "#edc948",
    "#ff9da7",
]


def _doc(width: int, height: int, body: list[str]) -> str:
    head = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="Helvetica, Arial, sans-serif">'
    )
    return "\n".join([head, *body, "</svg>"])


#: Accents for the deadline overlay (marker line / lateness shading).
_DEADLINE_COLOR = "#c0392b"


def schedule_svg(
    schedule: Schedule,
    *,
    cell: int = 46,
    lane: int = 34,
    title: str | None = None,
) -> str:
    """Render a schedule as a Gantt chart (one lane per processor).

    On instances with deadlines (the DEADLINE experiment's output) each
    due step is drawn as a dashed red marker in the job's lane, the
    steps a late job runs past its deadline are shaded red (opacity
    growing with lateness), and a tardiness summary joins the footer.
    Deadline-free schedules render exactly as before.
    """
    inst = schedule.instance
    m = inst.num_processors
    T = schedule.makespan
    top = 42 if title else 22
    width = 60 + T * cell + 10
    height = top + m * lane + 26
    late = schedule.lateness_by_job()
    body: list[str] = []
    if title:
        body.append(
            f'<text x="10" y="20" font-size="15" font-weight="bold">'
            f"{html.escape(title)}</text>"
        )
    for t in range(T):
        x = 60 + t * cell
        body.append(
            f'<text x="{x + cell / 2:.1f}" y="{top - 6}" font-size="10" '
            f'text-anchor="middle" fill="#666">{t}</text>'
        )
    for i in range(m):
        y = top + i * lane
        body.append(
            f'<text x="8" y="{y + lane / 2 + 4:.1f}" font-size="12">p{i}</text>'
        )
        for t in range(T):
            step = schedule.step(t)
            x = 60 + t * cell
            j = step.active[i]
            if j is None:
                continue
            share = as_float(step.shares[i])
            opacity = 0.15 + 0.85 * min(1.0, share)
            color = _COMPONENT_COLORS[j % len(_COMPONENT_COLORS)]
            body.append(
                f'<rect x="{x}" y="{y}" width="{cell - 2}" height="{lane - 4}" '
                f'rx="3" fill="{color}" fill-opacity="{opacity:.2f}" '
                f'stroke="#333" stroke-width="0.5"/>'
            )
            deadline = inst.job(i, j).deadline
            if (
                deadline is not None
                and (i, j) in late
                and t + 1 > deadline
            ):
                # Lateness shading: every step run past the due step
                # gets a red wash, deeper the later the job finishes.
                wash = min(0.45, 0.12 + 0.06 * late[(i, j)])
                body.append(
                    f'<rect x="{x}" y="{y}" width="{cell - 2}" '
                    f'height="{lane - 4}" rx="3" fill="{_DEADLINE_COLOR}" '
                    f'fill-opacity="{wash:.2f}"/>'
                )
            label = f"j{j}" if share == 0 else f"j{j}:{share * 100:.0f}"
            body.append(
                f'<text x="{x + (cell - 2) / 2:.1f}" y="{y + lane / 2 + 3:.1f}" '
                f'font-size="9" text-anchor="middle">{label}</text>'
            )
            if schedule.completion_step(i, j) == t:
                body.append(
                    f'<line x1="{x + cell - 2}" y1="{y - 1}" '
                    f'x2="{x + cell - 2}" y2="{y + lane - 3}" '
                    f'stroke="#000" stroke-width="2"/>'
                )
        # Deadline markers: one dashed line per due step in this lane
        # (drawn once per distinct step, on top of the job boxes).
        if inst.has_deadlines:
            marks = sorted(
                {
                    job.deadline
                    for job in inst.queues[i]
                    if job.deadline is not None and job.deadline <= T
                }
            )
            for deadline in marks:
                x = 60 + deadline * cell - 2
                body.append(
                    f'<line x1="{x}" y1="{y - 1}" x2="{x}" '
                    f'y2="{y + lane - 3}" stroke="{_DEADLINE_COLOR}" '
                    f'stroke-width="1.5" stroke-dasharray="5 3"/>'
                )
    footer = f"makespan = {T}"
    if inst.has_deadlines:
        footer += (
            f"; deadlines: {len(late)} late job(s), "
            f"total tardiness = {sum(late.values())}"
        )
    body.append(
        f'<text x="60" y="{height - 8}" font-size="11" fill="#444">'
        f"{footer}</text>"
    )
    return _doc(width, height, body)


def hypergraph_svg(graph: SchedulingGraph, *, cell: int = 56, lane: int = 48) -> str:
    """Render the scheduling hypergraph in the paper's Figure 1 style."""
    sched = graph.schedule
    inst = sched.instance
    m = inst.num_processors
    n = inst.max_jobs
    width = 40 + n * cell + 20
    height = 30 + m * lane + 30
    body: list[str] = []

    def center(i: int, j: int) -> tuple[float, float]:
        return 40 + j * cell + cell / 2, 30 + i * lane + lane / 2

    # Hyperedges first (under the nodes): a rounded outline spanning
    # the jobs active in each step.
    for t, edge in enumerate(graph.edges):
        color = "#999"
        xs, ys = zip(*(center(i, j) for i, j in edge))
        x0, x1 = min(xs) - 18, max(xs) + 18
        y0, y1 = min(ys) - 16, max(ys) + 16
        body.append(
            f'<rect x="{x0:.1f}" y="{y0:.1f}" width="{x1 - x0:.1f}" '
            f'height="{y1 - y0:.1f}" rx="16" fill="none" stroke="{color}" '
            f'stroke-dasharray="4 3" stroke-width="1"/>'
        )
        body.append(
            f'<text x="{x0 + 4:.1f}" y="{y0 + 11:.1f}" font-size="8" '
            f'fill="#777">e{t + 1}</text>'
        )
    for (i, j), job in inst.jobs():
        comp = graph.component_of((i, j))
        color = _COMPONENT_COLORS[comp.index % len(_COMPONENT_COLORS)]
        x, y = center(i, j)
        body.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="14" fill="{color}" '
            f'fill-opacity="0.85" stroke="#222" stroke-width="0.7"/>'
        )
        pct = as_float(job.requirement) * 100
        label = f"{pct:.0f}" if pct == round(pct) else f"{pct:.1f}"
        body.append(
            f'<text x="{x:.1f}" y="{y + 3:.1f}" font-size="9" fill="#fff" '
            f'text-anchor="middle">{label}</text>'
        )
    for i in range(m):
        _, y = center(i, 0)
        body.append(f'<text x="8" y="{y + 3:.1f}" font-size="11">p{i}</text>')
    body.append(
        f'<text x="40" y="{height - 8}" font-size="10" fill="#444">'
        f"{graph.num_components} components, {len(graph.edges)} edges</text>"
    )
    return _doc(width, height, body)


def series_svg(
    series: dict[str, list[tuple[float, float]]],
    *,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    width: int = 520,
    height: int = 320,
) -> str:
    """A minimal multi-series line plot (for the figure benchmarks).

    Args:
        series: name -> list of (x, y) points (sorted by x).
    """
    pad_l, pad_r, pad_t, pad_b = 56, 16, 34, 40
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    if not xs:
        raise ValueError("empty series")
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1
    # A little headroom.
    y_pad = (y1 - y0) * 0.08
    y0, y1 = y0 - y_pad, y1 + y_pad

    def px(x: float) -> float:
        return pad_l + (x - x0) / (x1 - x0) * (width - pad_l - pad_r)

    def py(y: float) -> float:
        return height - pad_b - (y - y0) / (y1 - y0) * (height - pad_t - pad_b)

    body = [
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="#fff"/>',
        f'<text x="{width / 2:.0f}" y="20" font-size="14" text-anchor="middle" '
        f'font-weight="bold">{html.escape(title)}</text>',
        f'<line x1="{pad_l}" y1="{height - pad_b}" x2="{width - pad_r}" '
        f'y2="{height - pad_b}" stroke="#000"/>',
        f'<line x1="{pad_l}" y1="{pad_t}" x2="{pad_l}" y2="{height - pad_b}" '
        f'stroke="#000"/>',
        f'<text x="{width / 2:.0f}" y="{height - 8}" font-size="11" '
        f'text-anchor="middle">{html.escape(xlabel)}</text>',
        f'<text x="14" y="{height / 2:.0f}" font-size="11" text-anchor="middle" '
        f'transform="rotate(-90 14 {height / 2:.0f})">{html.escape(ylabel)}</text>',
    ]
    # Axis ticks (4 each).
    for k in range(5):
        xv = x0 + (x1 - x0) * k / 4
        yv = y0 + (y1 - y0) * k / 4
        body.append(
            f'<text x="{px(xv):.1f}" y="{height - pad_b + 14}" font-size="9" '
            f'text-anchor="middle">{xv:g}</text>'
        )
        body.append(
            f'<text x="{pad_l - 6}" y="{py(yv) + 3:.1f}" font-size="9" '
            f'text-anchor="end">{yv:.3g}</text>'
        )
    for idx, (name, pts) in enumerate(series.items()):
        color = _COMPONENT_COLORS[idx % len(_COMPONENT_COLORS)]
        path = " ".join(
            f"{'M' if k == 0 else 'L'} {px(x):.1f} {py(y):.1f}"
            for k, (x, y) in enumerate(pts)
        )
        body.append(f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>')
        for x, y in pts:
            body.append(
                f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="2.5" fill="{color}"/>'
            )
        body.append(
            f'<text x="{width - pad_r - 4}" y="{pad_t + 14 + idx * 14}" '
            f'font-size="10" text-anchor="end" fill="{color}">'
            f"{html.escape(name)}</text>"
        )
    return _doc(width, height, body)
