"""Hot-spot attribution from the kernel's phase metrics.

The kernel's instrumented runtime times every step phase (policy
``query``, feasibility ``check``, state ``apply``, ``observers``
dispatch) into metrics histograms, and the auto-attached
:class:`~repro.core.kernel.TelemetryObserver` records total run wall
time.  :func:`phase_report` turns one session's metrics into the
per-phase hot-spot rows that ``crsharing profile`` prints: total
seconds, call counts, mean latency, and each phase's share of wall
time -- plus an explicit ``(unattributed)`` row for loop control and
timer overhead, so the table always sums to 100% and the attribution
quality is visible instead of hidden.
"""

from __future__ import annotations

from typing import Any

from .metrics import MetricsRegistry

__all__ = ["PHASES", "phase_report"]

#: The kernel step phases the instrumented runtime times, in loop
#: order.  ``observers`` covers on_step/on_complete/on_finish dispatch.
PHASES = ("query", "check", "apply", "observers")


def phase_report(metrics: MetricsRegistry) -> dict[str, Any]:
    """Aggregate one session's kernel phase timings into a report.

    Returns:
        A dict with ``rows`` (one per phase, plus ``(unattributed)``:
        ``phase`` / ``calls`` / ``total_s`` / ``mean_us`` / ``share``),
        ``wall_seconds`` (total instrumented kernel wall time),
        ``attributed`` (fraction of wall time covered by the measured
        phases -- the acceptance criterion wants this >= 0.95), and
        ``runs`` (kernel runs observed).

    Raises:
        ValueError: if the session recorded no kernel runs (nothing ran
            under telemetry, so there is nothing to attribute).
    """
    wall_hist = metrics.histogram("kernel.run_seconds")
    wall = wall_hist.total
    runs = wall_hist.count
    if runs == 0:
        raise ValueError(
            "no instrumented kernel runs in this session "
            "(run something under telemetry first)"
        )
    rows: list[dict[str, Any]] = []
    attributed_seconds = 0.0
    for phase in PHASES:
        calls = 0
        total = 0.0
        # Phase histograms may be split by label (e.g. query latency is
        # labelled per policy); aggregate every labelled series.
        for _name, _labels, hist in metrics.find(f"kernel.{phase}_seconds"):
            calls += hist.count
            total += hist.total
        attributed_seconds += total
        rows.append(
            {
                "phase": phase,
                "calls": calls,
                "total_s": round(total, 6),
                "mean_us": round(1e6 * total / calls, 3) if calls else 0.0,
                "share": f"{100.0 * total / wall:.1f}%" if wall else "-",
            }
        )
    other = max(0.0, wall - attributed_seconds)
    rows.append(
        {
            "phase": "(unattributed)",
            "calls": "-",
            "total_s": round(other, 6),
            "mean_us": "-",
            "share": f"{100.0 * other / wall:.1f}%" if wall else "-",
        }
    )
    rows.sort(
        key=lambda row: row["total_s"], reverse=True
    )
    return {
        "rows": rows,
        "wall_seconds": wall,
        "attributed": attributed_seconds / wall if wall else 1.0,
        "runs": runs,
    }
