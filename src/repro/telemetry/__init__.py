"""Telemetry: structured tracing, metrics, and profiling hooks.

The observability layer the rest of the repo instruments against.  One
process-global :class:`TelemetrySession` (a :class:`Tracer` plus a
:class:`MetricsRegistry`) is either installed or absent:

* **absent** (the default): instrumented code paths fall back to their
  uninstrumented form -- the kernel pays one global read per *run*,
  nothing per step, so telemetry is zero-cost when disabled (gated by
  ``benchmarks/bench_telemetry_overhead.py``);
* **installed** (via :func:`use_session` or the CLI's ``--trace`` /
  ``--metrics`` flags): the kernel times every step phase into metrics
  histograms and emits structured span/event records, backends and
  campaigns wrap themselves in spans, and the exporters
  (:mod:`repro.telemetry.export`) serialize everything as JSONL,
  Chrome ``trace_event`` JSON (loadable in Perfetto), or a
  Prometheus-style metrics dump.

Example:
    >>> from repro.telemetry import TelemetrySession, use_session
    >>> from repro.core import Instance, simulate
    >>> inst = Instance.from_percent([[50, 50], [50, 50]])
    >>> with use_session(TelemetrySession()) as session:
    ...     makespan = simulate(inst, "greedy-balance").makespan
    >>> session.metrics.counter("kernel.steps").value
    2
    >>> any(r.name == "kernel.run" for r in session.tracer.records)
    True
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .export import (
    chrome_trace,
    load_chrome_trace,
    read_jsonl,
    render_metrics,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import PHASES, phase_report
from .records import StepRecord, TraceRecord, run_trace_records
from .tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PHASES",
    "StepRecord",
    "TelemetrySession",
    "TraceRecord",
    "Tracer",
    "chrome_trace",
    "get_session",
    "load_chrome_trace",
    "phase_report",
    "read_jsonl",
    "render_metrics",
    "run_trace_records",
    "set_session",
    "use_session",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]


class TelemetrySession:
    """One tracer + one metrics registry, installable process-globally.

    Args:
        tracing: collect span/event records (True, the default).  A
            metrics-only session (``tracing=False``) shares the no-op
            :data:`NULL_TRACER`, so per-step span records are skipped
            while phase histograms still fill -- the ``--metrics``
            CLI mode.
    """

    __slots__ = ("tracer", "metrics")

    def __init__(self, *, tracing: bool = True) -> None:
        self.tracer: Tracer = Tracer() if tracing else NULL_TRACER
        self.metrics = MetricsRegistry()


#: The process-global session; None = telemetry disabled.
_SESSION: TelemetrySession | None = None


def get_session() -> TelemetrySession | None:
    """The installed session, or None when telemetry is disabled.

    Instrumented layers call this once per run (never per step) and
    skip all telemetry work on None -- the zero-cost-when-disabled
    contract.
    """
    return _SESSION


def set_session(session: TelemetrySession | None) -> TelemetrySession | None:
    """Install *session* process-globally; returns the previous one."""
    global _SESSION
    previous = _SESSION
    _SESSION = session
    return previous


@contextmanager
def use_session(session: TelemetrySession) -> Iterator[TelemetrySession]:
    """Install *session* for the duration of the ``with`` block.

    Restores whatever was installed before on exit (exception-safe),
    so nested scopes and tests compose.
    """
    previous = set_session(session)
    try:
        yield session
    finally:
        set_session(previous)
