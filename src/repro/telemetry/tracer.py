"""Structured span/event tracer (zero-cost when disabled).

A :class:`Tracer` collects :class:`~repro.telemetry.records.TraceRecord`
entries: *spans* (timed regions, nested via a ``contextvars`` current
span, so nesting survives generators and threads) and instant *events*.
Producers never check whether tracing is on -- they call
:meth:`Tracer.span` / :meth:`Tracer.event` / :meth:`Tracer.complete`
unconditionally, and the shared :data:`NULL_TRACER` turns every call
into a no-op.  Hot paths that want to skip even argument construction
can guard on :attr:`Tracer.enabled`.

Example:
    >>> tracer = Tracer()
    >>> with tracer.span("outer", label="x"):
    ...     tracer.event("ping")
    >>> [(r.kind, r.name) for r in tracer.records]
    [('event', 'ping'), ('span', 'outer')]
    >>> tracer.records[0].parent_id == tracer.records[1].span_id
    True
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import Any

from .records import TraceRecord

__all__ = ["Tracer", "NullTracer", "NULL_TRACER"]

#: The id of the innermost open span (None at top level).  A context
#: variable -- not a tracer attribute -- so nesting is correct per
#: logical context even when spans interleave across threads.
_CURRENT_SPAN: ContextVar[int | None] = ContextVar(
    "repro_current_span", default=None
)


class _SpanHandle:
    """Context manager recording one span on exit.

    Entering publishes the span id through the context variable (so
    records produced inside attach to it); exiting appends the
    finished :class:`TraceRecord`.  :meth:`note` merges additional
    attributes before the span closes (e.g. a result computed inside).
    """

    __slots__ = ("_tracer", "_name", "_attrs", "_id", "_parent", "_start", "_token")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def note(self, **attrs: Any) -> None:
        """Attach extra attributes to the span before it closes."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        self._id = tracer._next_id()
        self._parent = _CURRENT_SPAN.get()
        self._token = _CURRENT_SPAN.set(self._id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        _CURRENT_SPAN.reset(self._token)
        tracer = self._tracer
        if exc_type is not None:
            self._attrs.setdefault("error", exc_type.__name__)
        tracer._records.append(
            TraceRecord(
                kind="span",
                name=self._name,
                ts=self._start - tracer.epoch,
                dur=end - self._start,
                span_id=self._id,
                parent_id=self._parent,
                attrs=self._attrs,
            )
        )


class _NullSpan:
    """Shared no-op span handle for :class:`NullTracer`."""

    __slots__ = ()

    def note(self, **attrs: Any) -> None:
        """Ignore attributes (tracing is off)."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collect structured span/event records against one time epoch.

    Attributes:
        enabled: True -- hot paths may guard per-record work on it.
        epoch: ``time.perf_counter()`` at construction; every record's
            ``ts`` is relative to it.
        wall_epoch: ``time.time()`` at construction (carried into
            exports so trace files can be aligned with wall clocks).
        records: the accumulated :class:`TraceRecord` list, in
            completion order (a span is appended when it *closes*, so
            children precede their parent).
    """

    enabled = True

    __slots__ = ("epoch", "wall_epoch", "_records", "_ids")

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.wall_epoch = time.time()
        self._records: list[TraceRecord] = []
        self._ids = 0

    @property
    def records(self) -> list[TraceRecord]:
        """The accumulated records (completion order)."""
        return self._records

    def _next_id(self) -> int:
        self._ids += 1
        return self._ids

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """A context manager timing one named region.

        Records produced inside (spans, events, :meth:`complete` calls)
        carry this span's id as their ``parent_id``.
        """
        return _SpanHandle(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record one instant event under the current span."""
        self._records.append(
            TraceRecord(
                kind="event",
                name=name,
                ts=time.perf_counter() - self.epoch,
                dur=None,
                span_id=self._next_id(),
                parent_id=_CURRENT_SPAN.get(),
                attrs=attrs,
            )
        )

    def complete(self, name: str, start: float, duration: float, **attrs: Any) -> None:
        """Record an already-finished span (the hot-path form).

        *start* is an absolute ``time.perf_counter()`` reading;
        *duration* is in seconds.  Used by the kernel's per-phase
        hooks, which time with two raw counter reads instead of paying
        for a context-manager entry/exit per step.
        """
        self._records.append(
            TraceRecord(
                kind="span",
                name=name,
                ts=start - self.epoch,
                dur=duration,
                span_id=self._next_id(),
                parent_id=_CURRENT_SPAN.get(),
                attrs=attrs,
            )
        )


class NullTracer(Tracer):
    """The disabled tracer: every call is a no-op.

    A singleton (:data:`NULL_TRACER`) stands in wherever no tracing
    session is installed, so producers never need a None check.
    """

    enabled = False

    __slots__ = ()

    def span(self, name: str, **attrs: Any) -> _NullSpan:  # type: ignore[override]
        """Return the shared no-op span handle."""
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        """Ignore the event (tracing is off)."""

    def complete(self, name: str, start: float, duration: float, **attrs: Any) -> None:
        """Ignore the span (tracing is off)."""


NULL_TRACER = NullTracer()
