"""Trace and metrics exporters (JSONL, Chrome ``trace_event``, text).

Three output formats cover the consumption paths:

* **JSONL** -- one :meth:`TraceRecord.as_dict` object per line; easy
  to grep and stream, and :func:`read_jsonl` round-trips it back into
  records (the test suite pins this).
* **Chrome trace_event JSON** -- the ``{"traceEvents": [...]}`` format
  loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``: spans become complete (``"ph": "X"``) events
  with microsecond timestamps, instant records become ``"ph": "i"``.
* **Prometheus-style text** -- :meth:`MetricsRegistry.to_text`,
  re-exported here so the CLI imports one module for all output.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Sequence

from .metrics import MetricsRegistry
from .records import TraceRecord

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "render_metrics",
    "write_trace",
]


def _jsonable(value: Any) -> Any:
    """Coerce attribute values to JSON-ready types (floats for exotic
    numerics such as ``Fraction`` or NumPy scalars, lists for other
    sequences)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def _record_doc(record: TraceRecord) -> dict[str, Any]:
    doc = record.as_dict()
    doc["attrs"] = _jsonable(doc["attrs"])
    return doc


def write_jsonl(records: Iterable[TraceRecord], path: str | Path) -> int:
    """Write records as one-JSON-object-per-line; returns the count."""
    count = 0
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(_record_doc(record)) + "\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> list[TraceRecord]:
    """Parse a JSONL trace file back into :class:`TraceRecord` objects."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(TraceRecord.from_dict(json.loads(line)))
    return records


def chrome_trace(
    records: Sequence[TraceRecord], *, pid: int | None = None
) -> dict[str, Any]:
    """The records as a Chrome ``trace_event`` document.

    Spans map to complete events (``"ph": "X"``) and instant records
    to ``"ph": "i"`` with thread scope; timestamps and durations are
    microseconds, as the format requires.  Load the written file in
    Perfetto or ``chrome://tracing``.
    """
    pid = os.getpid() if pid is None else pid
    events: list[dict[str, Any]] = []
    for record in records:
        event: dict[str, Any] = {
            "name": record.name,
            "cat": record.name.split(".", 1)[0],
            "ts": record.ts * 1e6,
            "pid": pid,
            "tid": 1,
            "args": _jsonable(record.attrs),
        }
        if record.kind == "span":
            event["ph"] = "X"
            event["dur"] = (record.dur or 0.0) * 1e6
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    records: Sequence[TraceRecord], path: str | Path
) -> int:
    """Write a Chrome trace_event JSON file; returns the event count."""
    doc = chrome_trace(records)
    Path(path).write_text(json.dumps(doc) + "\n")
    return len(doc["traceEvents"])


def load_chrome_trace(path: str | Path) -> dict[str, Any]:
    """Load and structurally validate a Chrome trace_event JSON file.

    Raises:
        ValueError: if the document is not a trace_event container or
            an event is missing a required key (``name``/``ph``/``ts``).
    """
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        raise ValueError(f"{path}: not a Chrome trace_event document")
    for i, event in enumerate(doc["traceEvents"]):
        for key in ("name", "ph", "ts"):
            if key not in event:
                raise ValueError(f"{path}: traceEvents[{i}] missing {key!r}")
    return doc


def render_metrics(registry: MetricsRegistry, *, prefix: str = "repro") -> str:
    """Prometheus-style text dump of *registry* (see
    :meth:`MetricsRegistry.to_text`)."""
    return registry.to_text(prefix=prefix)


def write_trace(
    records: Sequence[TraceRecord], path: str | Path, *, format: str = "jsonl"
) -> int:
    """Write *records* to *path* in the named format.

    Args:
        records: the trace records to serialize.
        path: output file path.
        format: ``"jsonl"`` or ``"chrome"``.

    Returns:
        The number of records/events written.

    Raises:
        ValueError: for an unknown format name.
    """
    if format == "jsonl":
        return write_jsonl(records, path)
    if format == "chrome":
        return write_chrome_trace(records, path)
    raise ValueError(f"unknown trace format {format!r} (jsonl or chrome)")
