"""Structured telemetry records (the one trace schema in the codebase).

Every telemetry producer -- the kernel's span hooks, backend and
campaign instrumentation, the legacy many-core engine traces -- reduces
to one record type, :class:`TraceRecord`, so a single set of exporters
(:mod:`repro.telemetry.export`) can serialize any of them.  Before this
module existed the repo had two competing notions of "trace": the
engine's :class:`StepRecord` rows and ad-hoc benchmark timings.  The
step record now lives here (it *is* a structured per-step telemetry
record); :mod:`repro.simulation.traces` re-exports it for backwards
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..simulation.traces import RunTrace

__all__ = ["TraceRecord", "StepRecord", "run_trace_records"]

#: ``kind`` values a :class:`TraceRecord` may carry.
KINDS = ("span", "event")


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One structured telemetry record (a timed span or instant event).

    Attributes:
        kind: ``"span"`` (has a duration) or ``"event"`` (instant).
        name: dotted record name (``"kernel.step.query"``,
            ``"backend.run"``, ``"kernel.heartbeat"``, ...).
        ts: start time in seconds since the tracer's epoch.
        dur: span duration in seconds (``None`` for instant events).
        span_id: unique id of this record within its tracer.
        parent_id: id of the enclosing span (``None`` at top level).
        attrs: structured attributes (JSON-serializable values).
    """

    kind: str
    name: str
    ts: float
    dur: float | None
    span_id: int
    parent_id: int | None
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """The record as one flat JSON-ready dict (the JSONL schema)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "ts": self.ts,
            "dur": self.dur,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "TraceRecord":
        """Rebuild a record from its :meth:`as_dict` form."""
        return cls(
            kind=doc["kind"],
            name=doc["name"],
            ts=float(doc["ts"]),
            dur=None if doc.get("dur") is None else float(doc["dur"]),
            span_id=int(doc["span_id"]),
            parent_id=(
                None if doc.get("parent_id") is None else int(doc["parent_id"])
            ),
            attrs=dict(doc.get("attrs") or {}),
        )


@dataclass(frozen=True, slots=True)
class StepRecord:
    """One engine tick (the legacy per-step simulation record).

    Historically defined in :mod:`repro.simulation.traces`; it now
    lives with the rest of the telemetry schema and is re-exported
    from there.

    Attributes:
        t: step index.
        grants: bandwidth share granted per core.
        progress: work processed per core.
        completed: task phases finishing this step, as
            ``(core, phase_index)``.
    """

    t: int
    grants: tuple[Fraction, ...]
    progress: tuple[Fraction, ...]
    completed: tuple[tuple[int, int], ...]


def run_trace_records(trace: "RunTrace") -> list[TraceRecord]:
    """Convert a legacy :class:`~repro.simulation.traces.RunTrace` into
    telemetry records.

    One unit-duration ``engine.step`` span per executed step (so the
    Chrome exporter renders the run as a timeline) under a single
    ``engine.run`` root span, with grants/progress/completions carried
    as float attributes -- the bridge that lets the legacy engine
    traces flow through the same JSONL/Chrome exporters as everything
    else.
    """
    makespan = trace.makespan
    records = [
        TraceRecord(
            kind="span",
            name="engine.run",
            ts=0.0,
            dur=float(makespan),
            span_id=1,
            parent_id=None,
            attrs={
                "policy": trace.policy,
                "makespan": makespan,
                "bus_utilization": float(trace.bus_utilization),
            },
        )
    ]
    for step in trace.steps:
        records.append(
            TraceRecord(
                kind="span",
                name="engine.step",
                ts=float(step.t),
                dur=1.0,
                span_id=step.t + 2,
                parent_id=1,
                attrs={
                    "t": step.t,
                    "grants": [float(g) for g in step.grants],
                    "progress": [float(p) for p in step.progress],
                    "completed": [list(c) for c in step.completed],
                },
            )
        )
    return records
