"""Counters, gauges, and quantile histograms (the metrics facility).

A :class:`MetricsRegistry` is a flat name -> metric store with optional
labels (``registry.histogram("kernel.query_seconds",
policy="round-robin")``).  Producers get-or-create metrics on every
call, so instrument sites stay one-liners; consumers read
:meth:`MetricsRegistry.snapshot` (structured) or
:meth:`MetricsRegistry.to_text` (a Prometheus-style exposition dump).

Example:
    >>> registry = MetricsRegistry()
    >>> registry.counter("kernel.steps").inc(3)
    >>> registry.counter("kernel.steps").value
    3
    >>> h = registry.histogram("latency_seconds")
    >>> for x in [1.0, 2.0, 3.0, 4.0]:
    ...     h.observe(x)
    >>> h.quantile(0.5)
    2.0
"""

from __future__ import annotations

import math
from typing import Any, Iterator

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: A metric key: (name, sorted (label, value) pairs).
_Key = tuple[str, tuple[tuple[str, str], ...]]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        """Add *n* (must be non-negative) to the counter."""
        if n < 0:
            raise ValueError(f"counters only increase (got {n})")
        self.value += n

    def summary(self) -> dict[str, Any]:
        """The counter's snapshot form."""
        return {"value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value

    def summary(self) -> dict[str, Any]:
        """The gauge's snapshot form."""
        return {"value": self.value}


class Histogram:
    """A sample distribution with nearest-rank quantiles.

    Samples are kept verbatim (runs in this repo are bounded, and exact
    quantiles make the round-trip tests deterministic); ``quantile``
    uses the nearest-rank definition, so ``quantile(0.5)`` of
    ``[1, 2, 3, 4]`` is ``2.0`` and every reported quantile is an
    observed sample.
    """

    __slots__ = ("values",)

    kind = "histogram"

    def __init__(self) -> None:
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.values.append(value)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self.values)

    @property
    def total(self) -> float:
        """Sum of all recorded samples."""
        return sum(self.values)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self.total / len(self.values) if self.values else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile of the samples (0.0 when empty).

        Raises:
            ValueError: if *q* is outside ``[0, 1]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        # Nearest-rank: ceil(q * n), with a nudge so float artifacts
        # like 0.5 * 4 -> 2.0000000000000004 do not shift the rank.
        rank = max(1, math.ceil(q * len(ordered) - 1e-12))
        return ordered[rank - 1]

    def summary(self) -> dict[str, Any]:
        """Count, sum, extremes and the p50/p90/p99 quantiles."""
        if not self.values:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": min(self.values),
            "max": max(self.values),
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Flat, label-aware store of counters, gauges, and histograms.

    One metric name must keep one kind: asking for
    ``counter("x")`` after ``gauge("x")`` raises -- mixed kinds under
    one name would make the exposition dump ambiguous.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[_Key, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, labels: dict[str, Any]):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls()
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create the counter *name* with *labels*."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create the gauge *name* with *labels*."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """Get or create the histogram *name* with *labels*."""
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def items(
        self,
    ) -> Iterator[tuple[str, dict[str, str], Counter | Gauge | Histogram]]:
        """Iterate ``(name, labels, metric)`` in sorted key order."""
        for (name, labels), metric in sorted(self._metrics.items()):
            yield name, dict(labels), metric

    def find(
        self, prefix: str
    ) -> list[tuple[str, dict[str, str], Counter | Gauge | Histogram]]:
        """All metrics whose name starts with *prefix* (sorted)."""
        return [
            (name, labels, metric)
            for name, labels, metric in self.items()
            if name.startswith(prefix)
        ]

    def snapshot(self) -> list[dict[str, Any]]:
        """JSON-ready list of every metric's kind, labels and summary."""
        return [
            {
                "name": name,
                "kind": metric.kind,
                "labels": labels,
                **metric.summary(),
            }
            for name, labels, metric in self.items()
        ]

    def to_text(self, prefix: str = "repro") -> str:
        """Prometheus-style exposition dump of every metric.

        Histograms render as summaries (quantile-labelled sample
        lines plus ``_count``/``_sum``); metric names are sanitized to
        the ``[a-zA-Z0-9_]`` exposition alphabet.
        """
        lines: list[str] = []
        seen_types: set[str] = set()
        for name, labels, metric in self.items():
            flat = f"{prefix}_{name}".replace(".", "_").replace("-", "_")
            if flat not in seen_types:
                kind = "summary" if metric.kind == "histogram" else metric.kind
                lines.append(f"# TYPE {flat} {kind}")
                seen_types.add(flat)
            if isinstance(metric, Histogram):
                for q in (0.5, 0.9, 0.99):
                    q_labels = {**labels, "quantile": f"{q:g}"}
                    lines.append(
                        f"{flat}{_render_labels(q_labels)} "
                        f"{metric.quantile(q):.9g}"
                    )
                lines.append(
                    f"{flat}_count{_render_labels(labels)} {metric.count}"
                )
                lines.append(
                    f"{flat}_sum{_render_labels(labels)} {metric.total:.9g}"
                )
            else:
                value = metric.value
                text = f"{value:.9g}" if isinstance(value, float) else str(value)
                lines.append(f"{flat}{_render_labels(labels)} {text}")
        return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(labels: dict[str, str]) -> str:
    """Render a ``{label="value",...}`` suffix ("" when unlabelled)."""
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"
