"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers
can catch everything from this package with one clause while standard
errors (``TypeError``/``ValueError`` raised for plain misuse of the
API) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "InfeasibleAssignmentError",
    "UnitSizeRequiredError",
    "SimulationLimitError",
    "ObserverError",
    "SolverError",
    "BackendError",
    "VectorizationUnsupportedError",
    "CompiledUnsupportedError",
    "UnknownPolicyError",
    "SequencingError",
    "CheckpointError",
    "ServiceError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidInstanceError(ReproError):
    """An :class:`~repro.core.instance.Instance` violates the model.

    Examples: a resource requirement outside ``[0, 1]``, a non-positive
    processing volume, or an empty system (no processors).
    """


class InvalidScheduleError(ReproError):
    """A :class:`~repro.core.schedule.Schedule` is malformed or does not
    match the instance it is validated against (wrong processor count,
    shares outside ``[0,1]``, resource overuse, or jobs left unfinished).
    """


class InfeasibleAssignmentError(ReproError):
    """A policy produced a per-step resource assignment that overuses
    the shared resource or assigns a negative share."""


class UnitSizeRequiredError(ReproError):
    """An algorithm analyzed only for unit-size jobs (Sections 4-8 of
    the paper) was given an instance with non-unit processing volumes."""


class SimulationLimitError(ReproError):
    """The step simulator exceeded its ``max_steps`` safety limit,
    which indicates a non-terminating policy (e.g. one that assigns
    zero resource forever)."""


class ObserverError(ReproError):
    """A kernel step observer raised during dispatch.

    Observers are telemetry: they must never break a run silently, and
    the kernel must not let their failures masquerade as simulation
    errors.  :func:`repro.core.kernel.run_kernel` therefore wraps any
    exception escaping an observer callback in this type (the original
    exception is chained as ``__cause__``), after the step itself has
    fully applied -- the runtime state stays consistent.
    """


class SolverError(ReproError):
    """An exact solver (DP / configuration search / MILP) failed to
    produce a certified-optimal solution."""


class BackendError(ReproError):
    """A simulation backend (:mod:`repro.backends`) was misused:
    unknown backend name, or a backend-specific precondition failed."""


class VectorizationUnsupportedError(BackendError):
    """A policy without a vectorized ``shares_array`` path was handed
    to :class:`~repro.backends.VectorBackend`.  Implement
    :meth:`repro.algorithms.base.Policy.shares_array` or run the policy
    on the exact backend."""


class CompiledUnsupportedError(BackendError):
    """``compiled="on"`` was forced for a run the compiled tier cannot
    serve: the policy has no fused-driver code path (only the built-in
    water-filling policies do -- see
    :func:`repro.kernels.dispatch.compiled_policy_code`), or the run
    needs per-step Python callbacks (``record_shares=True``).  Use
    ``compiled="auto"`` to fall back transparently instead."""


class SequencingError(ReproError):
    """The sequencing layer (:mod:`repro.sequencing`) was misused:
    unknown sequencer name, or a strategy produced queues that do not
    preserve the instance's job bag."""


class CheckpointError(ReproError):
    """A :class:`~repro.core.checkpoint.KernelCheckpoint` cannot be used.

    Raised when a serialized checkpoint document is corrupted (digest
    mismatch, missing keys, malformed values), carries an unsupported
    format/version tag, or does not fit the runtime it is being
    restored into (wrong backend kind, shape mismatch against the
    instance, or an instance that is not a valid extension of the
    checkpointed one).
    """


class ServiceError(ReproError):
    """The scheduling service layer (:mod:`repro.service`) was misused:
    unknown admission policy, malformed trace/event-log documents, or
    events submitted against a closed engine."""


class UnknownPolicyError(ReproError, KeyError):
    """A policy name has no entry in the policy registry.

    Raised by :func:`repro.algorithms.get_policy` (and therefore by
    every public entry point that resolves policy names --
    ``run_policy``, ``simulate``, ``cross_validate``, ``BatchRunner``,
    ``ManyCoreEngine.run``).  The message lists
    :func:`repro.algorithms.available_policies`.  Subclasses
    ``KeyError`` for backwards compatibility with callers that catch
    the registry's historical exception type.
    """

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its single argument, which would
        # wrap the human-readable message in quotes.
        return self.args[0] if len(self.args) == 1 else super().__str__()
