"""SIM: the Section 1 motivating scenario on the many-core substrate.

Runs a mixed synthetic I/O workload (streaming / bursty / compute
tasks behind one shared bus) under every registered policy and
compares makespans, bus utilization and core stall time.  This is the
paper's introduction turned into an experiment: bandwidth assignment
-- not core count -- decides completion time, and the balanced greedy
policy dominates naive arbitration."""

from __future__ import annotations

from ..algorithms.greedy_balance import GreedyBalance
from ..algorithms.heuristics import (
    FewestRemainingJobsFirst,
    GreedyFinishJobs,
    LargestRequirementFirst,
)
from ..algorithms.round_robin import RoundRobin
from ..core.numerics import as_float
from ..generators.workloads import make_io_workload
from ..simulation.engine import run_workload
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    num_cores: int = 8,
    seeds: tuple[int, ...] = (0, 1, 2),
    unit_split: bool = True,
    backend: str = "exact",
) -> ExperimentResult:
    policies = [
        GreedyBalance(),
        RoundRobin(),
        GreedyFinishJobs(),
        LargestRequirementFirst(),
        FewestRemainingJobsFirst(),
    ]
    totals: dict[str, list] = {p.name: [] for p in policies}
    for seed in seeds:
        tasks = make_io_workload(num_cores, seed=seed)
        for policy in policies:
            trace = run_workload(tasks, policy, unit_split=unit_split, backend=backend)
            stalls = sum(cs.stall_steps for cs in trace.core_summaries)
            totals[policy.name].append(
                (trace.makespan, as_float(trace.bus_utilization), stalls)
            )
    rows = []
    for policy in policies:
        data = totals[policy.name]
        rows.append(
            {
                "policy": policy.name,
                "mean_makespan": round(sum(d[0] for d in data) / len(data), 2),
                "mean_bus_util": round(sum(d[1] for d in data) / len(data), 3),
                "mean_core_stalls": round(sum(d[2] for d in data) / len(data), 1),
            }
        )
    gb = next(r for r in rows if r["policy"] == "greedy-balance")
    verdict = all(gb["mean_makespan"] <= r["mean_makespan"] + 1e-9 for r in rows)
    return ExperimentResult(
        experiment="SIM",
        title="Many-core shared-bus workload: policy comparison",
        paper_claim=(
            "bandwidth distribution is the decisive scheduling factor "
            "for I/O-bound many-core workloads (Section 1)"
        ),
        params={
            "num_cores": num_cores,
            "seeds": list(seeds),
            "unit_split": unit_split,
            "backend": backend,
        },
        columns=["policy", "mean_makespan", "mean_bus_util", "mean_core_stalls"],
        rows=rows,
        verdict=verdict,
        notes=[
            "verdict checks GreedyBalance is never beaten on mean makespan "
            "(its 2-1/m guarantee is the only provable one in the set)"
        ],
    )
