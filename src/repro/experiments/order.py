"""ORDER: how much makespan the fixed queue order leaves on the table.

The paper fixes each processor's job order a priori, and its Theorem 4
reduction proves that choosing the best order is NP-hard: on the
partition gadget a YES-instance admits a 4-step schedule, but any
wrong order forces 5 or more.  This experiment treats the order as a
decision variable (the :mod:`repro.sequencing` layer) and measures the
*order gap* -- fixed-order makespan minus optimized-order makespan
under the same policy -- on two families:

* seeded uniform random instances (the generic campaign family), and
* planted YES hardness gadgets, where the gap provably exists: the
  optimum is exactly 4, while policies on the as-built order need 5+.

Machine check (the verdict):

* the ``fixed`` sequencer is the identity: bit-identical makespans to
  running without a sequencer on every instance;
* every sequencer preserves the job bag and every makespan respects
  the (order-invariant) work lower bound;
* on the YES gadgets, local search achieves a strictly positive mean
  gap -- it closes a measurable fraction of the gap the partition
  gadget proves exists (and never beats the proven optimum of 4).
"""

from __future__ import annotations

from ..core.simulator import run_policy
from ..generators.random_instances import uniform_instance
from ..reductions.partition import random_yes_instance
from ..reductions.reduction import reduction_instance
from ..sequencing import get_sequencer
from .runner import ExperimentResult

__all__ = ["run"]

#: Sequencers compared against the fixed-order baseline.
_SEQUENCERS = ("spt", "requirement-desc", "greedy-placement", "local-search")

#: Makespan the gadget proves optimal for YES partition instances.
_GADGET_OPT = 4


def run(
    m: int = 5,
    n: int = 5,
    gadget_size: int = 6,
    seeds: tuple[int, ...] = (0, 1, 2, 3),
    policy: str = "greedy-balance",
    budget: int = 150,
    restarts: int = 2,
    grid: int = 100,
    backend: str = "vector",
) -> ExperimentResult:
    """Run the fixed-vs-optimized order comparison and check its claims."""
    families = {
        "uniform": [
            uniform_instance(m, n, grid=grid, seed=seed) for seed in seeds
        ],
        "gadget-yes": [
            reduction_instance(
                random_yes_instance(gadget_size, seed=seed)[0]
            )
            for seed in seeds
        ],
    }
    rows = []
    ok = True
    gadget_gap_total = 0
    for family, instances in families.items():
        fixed_spans = [
            run_policy(
                inst, policy, backend=backend, record_shares=False
            ).makespan
            for inst in instances
        ]
        # The identity sequencer must reproduce the no-sequencer run
        # bit-identically (same makespan on every instance).
        for inst, span in zip(instances, fixed_spans):
            identity = run_policy(
                inst,
                policy,
                backend=backend,
                record_shares=False,
                sequencer="fixed",
            )
            if identity.makespan != span:
                ok = False
        for name in _SEQUENCERS:
            tuned_spans = []
            for seed, inst in zip(seeds, instances):
                if name == "local-search":
                    sequencer = get_sequencer(
                        name,
                        policy=policy,
                        backend=backend,
                        budget=budget,
                        restarts=restarts,
                        seed=seed,
                    )
                else:
                    sequencer = get_sequencer(name)
                tuned = sequencer.sequence(inst)
                if not inst.same_bag(tuned):
                    ok = False
                result = run_policy(
                    tuned, policy, backend=backend, record_shares=False
                )
                if result.makespan < inst.work_lower_bound():
                    ok = False
                if family == "gadget-yes" and result.makespan < _GADGET_OPT:
                    ok = False  # nothing beats the proven optimum
                tuned_spans.append(result.makespan)
            count = len(instances)
            mean_fixed = sum(fixed_spans) / count
            mean_tuned = sum(tuned_spans) / count
            gaps = [f - t for f, t in zip(fixed_spans, tuned_spans)]
            if family == "gadget-yes" and name == "local-search":
                gadget_gap_total = sum(gaps)
            rows.append(
                {
                    "family": family,
                    "sequencer": name,
                    "mean_fixed": round(mean_fixed, 2),
                    "mean_optimized": round(mean_tuned, 2),
                    "mean_gap": round(sum(gaps) / count, 2),
                    "improved": sum(1 for g in gaps if g > 0),
                }
            )
    if gadget_gap_total <= 0:
        ok = False  # the gadget gap must be strictly positive
    return ExperimentResult(
        experiment="ORDER",
        title="Queue-order gap: fixed vs optimized sequencing",
        paper_claim=(
            "beyond the paper: Theorem 4 proves job order is where the "
            "hardness lives -- on planted YES gadgets the optimum is 4 "
            "but fixed-order policies need 5+, and budgeted local "
            "search over orders recovers a strictly positive share of "
            "that provable gap (identity sequencing stays bit-identical)"
        ),
        params={
            "m": m,
            "n": n,
            "gadget_size": gadget_size,
            "seeds": list(seeds),
            "policy": policy,
            "budget": budget,
            "restarts": restarts,
            "grid": grid,
            "backend": backend,
        },
        columns=[
            "family",
            "sequencer",
            "mean_fixed",
            "mean_optimized",
            "mean_gap",
            "improved",
        ],
        rows=rows,
        verdict=ok,
        notes=[
            "mean_gap = mean(fixed-order makespan - optimized-order "
            "makespan) under the same policy; improved = instances "
            "with a strictly positive gap",
            f"gadget-yes family: planted Partition YES gadgets "
            f"(optimal makespan provably {_GADGET_OPT})",
        ],
    )
