"""THM3 (upper bound): RoundRobin is a 2-approximation everywhere.

Random-instance sweep: on small instances the ratio is measured
against the exact optimum (m=2 DP / fixed-m search); on larger ones
against the strongest certificate lower bound (which can only
*overstate* the ratio).  Theorem 3 says the true ratio never exceeds
2; the bench asserts the measured upper bounds respect the phase-level
inequality ``RR <= n + total_work`` as well."""

from __future__ import annotations

from fractions import Fraction

from ..algorithms.opt_general import opt_res_assignment_general
from ..algorithms.opt_two import opt_res_assignment
from ..algorithms.round_robin import RoundRobin
from ..core.numerics import as_float, frac_ceil
from ..generators.random_instances import uniform_instance
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    configs: tuple[tuple[int, int], ...] = ((2, 4), (2, 8), (3, 3), (4, 2)),
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
) -> ExperimentResult:
    rows = []
    ok = True
    policy = RoundRobin()
    for m, n in configs:
        worst = Fraction(0)
        for seed in seeds:
            instance = uniform_instance(m, n, seed=seed)
            rr = policy.run(instance)
            if m == 2:
                opt = opt_res_assignment(instance).makespan
            else:
                opt = opt_res_assignment_general(instance).makespan
            ratio = Fraction(rr.makespan, opt)
            worst = max(worst, ratio)
            # The Theorem 3 upper-bound chain: RR <= n + sum work and
            # ratio <= 2 (both must hold exactly).
            bound = instance.max_jobs + frac_ceil(instance.total_work())
            ok = ok and rr.makespan <= bound and ratio <= 2
        rows.append(
            {
                "m": m,
                "n": n,
                "instances": len(seeds),
                "worst_ratio_vs_opt": round(as_float(worst), 4),
                "bound": 2.0,
            }
        )
    return ExperimentResult(
        experiment="THM3",
        title="RoundRobin <= 2 OPT on random instances",
        paper_claim="worst-case approximation ratio of RoundRobin is exactly 2",
        params={"configs": list(configs), "seeds": list(seeds)},
        columns=["m", "n", "instances", "worst_ratio_vs_opt", "bound"],
        rows=rows,
        verdict=ok,
    )
