"""ARR: online policies under staggered arrivals (beyond the paper).

The paper analyzes the static model: every processor's queue is
present from step 0.  Real many-core workloads arrive online -- cores
pick up tasks at different times -- which is exactly the dynamic
generalization studied in follow-up work (*Scheduling with Many Shared
Resources*, Maack et al.).  This experiment runs every vectorizable
policy over seeded uniform instances at increasing arrival spreads
(``max_release``) and reports mean makespan, the release-aware lower
bound, and their ratio.

Machine check (the verdict):

* every makespan respects :meth:`Instance.makespan_lower_bound`;
* spread 0 reproduces the static makespans bit-for-bit (instances
  with explicit all-zero releases execute identically to plain ones);
* the selected backend agrees with the exact reference on a sample of
  arrival instances (skipped when the experiment already runs exact).
"""

from __future__ import annotations

from ..algorithms import available_policies, get_policy
from ..core.simulator import run_policy
from ..generators.random_instances import uniform_instance, with_arrivals
from .runner import ExperimentResult

__all__ = ["run"]

#: Policies compared; proportional-share is excluded from the exact
#: backend (its denominators explode) but included on vector.
_POLICIES = (
    "greedy-balance",
    "round-robin",
    "greedy-finish-jobs",
    "largest-requirement-first",
    "fewest-remaining-jobs-first",
)


def run(
    m: int = 6,
    n: int = 6,
    spreads: tuple[int, ...] = (0, 4, 12),
    seeds: tuple[int, ...] = (0, 1, 2, 3),
    grid: int = 100,
    backend: str = "exact",
) -> ExperimentResult:
    policies = [get_policy(name) for name in _POLICIES if name in available_policies()]
    rows = []
    ok = True
    static_makespans: dict[tuple[str, int], int] = {}
    for spread in spreads:
        for policy in policies:
            makespans: list[int] = []
            bounds: list[int] = []
            for seed in seeds:
                base = uniform_instance(m, n, grid=grid, seed=seed)
                if spread == 0:
                    # Explicit all-zero releases must be bit-identical
                    # to the plain static instance.
                    instance = base.with_releases((0,) * m)
                    static = run_policy(
                        base, policy, backend=backend, record_shares=False
                    )
                    static_makespans[(policy.name, seed)] = static.makespan
                else:
                    instance = with_arrivals(
                        base, max_release=spread, seed=1000 + seed
                    )
                result = run_policy(
                    instance, policy, backend=backend, record_shares=False
                )
                lower = instance.makespan_lower_bound()
                if result.makespan < lower:
                    ok = False
                if spread == 0 and result.makespan != static_makespans[
                    (policy.name, seed)
                ]:
                    ok = False
                makespans.append(result.makespan)
                bounds.append(lower)
            mean_makespan = sum(makespans) / len(makespans)
            mean_bound = sum(bounds) / len(bounds)
            rows.append(
                {
                    "spread": spread,
                    "policy": policy.name,
                    "mean_makespan": round(mean_makespan, 2),
                    "mean_lower_bound": round(mean_bound, 2),
                    "mean_ratio": round(mean_makespan / mean_bound, 3),
                }
            )
    notes = [
        "spread = max_release of the sampled arrival times; spread 0 is "
        "the paper's static model (checked bit-identical to instances "
        "without explicit releases)"
    ]
    if backend != "exact":
        from ..backends import cross_validate

        worst = 0.0
        for seed in seeds:
            instance = with_arrivals(
                uniform_instance(m, n, grid=grid, seed=seed),
                max_release=max(spreads),
                seed=1000 + seed,
            )
            check = cross_validate(instance, get_policy("greedy-balance"))
            worst = max(worst, check.makespan_rel_error)
            if not check.ok:
                ok = False
        notes.append(
            f"exact-vs-vector makespan agreement on arrival instances: "
            f"max rel error {worst:.3g}"
        )
    return ExperimentResult(
        experiment="ARR",
        title="Online arrivals: policy comparison under staggered releases",
        paper_claim=(
            "beyond the paper: the kernel's release-time extension keeps "
            "every policy feasible and lower-bound-respecting under "
            "online arrivals, and spread 0 reproduces the static model"
        ),
        params={
            "m": m,
            "n": n,
            "spreads": list(spreads),
            "seeds": list(seeds),
            "grid": grid,
            "backend": backend,
        },
        columns=[
            "spread",
            "policy",
            "mean_makespan",
            "mean_lower_bound",
            "mean_ratio",
        ],
        rows=rows,
        verdict=ok,
        notes=notes,
    )
