"""MULTIRES: policy ratios as the number of shared resources grows.

The paper's model has one continuously divisible resource; *Scheduling
with Many Shared Resources* (Maack et al.) generalizes it to ``k``
renewable resources with per-job requirement vectors.  This experiment
runs every vectorizable policy over seeded random instances at
``k = 1, 2, 3`` (per-resource requirements drawn by a configurable
profile) and reports mean makespan, the per-resource congestion lower
bound (``max_l ceil(W_l)``), and their ratio -- how much harder the
policies find the workload as resources multiply.

Machine check (the verdict):

* every makespan respects the per-resource congestion bound;
* ``k = 1`` reproduces the single-resource uniform family bit-for-bit
  (the multi-resource sampler nests the paper's model);
* the selected backend agrees with the exact reference on a sample of
  ``k = 2, 3`` instances (skipped when the experiment already runs
  exact).
"""

from __future__ import annotations

from ..algorithms import available_policies, get_policy
from ..core.simulator import run_policy
from ..generators.random_instances import multi_resource_instance, uniform_instance
from .runner import ExperimentResult

__all__ = ["run"]

#: Policies compared (all six registered policies vectorize, so the
#: default vector backend covers the full roster).
_POLICIES = (
    "greedy-balance",
    "round-robin",
    "greedy-finish-jobs",
    "largest-requirement-first",
    "fewest-remaining-jobs-first",
    "proportional-share",
)


def run(
    m: int = 5,
    n: int = 5,
    resources: tuple[int, ...] = (1, 2, 3),
    seeds: tuple[int, ...] = (0, 1, 2, 3),
    profile: str = "independent",
    grid: int = 100,
    backend: str = "vector",
) -> ExperimentResult:
    """Run the multi-resource policy comparison and check its claims."""
    policies = [
        get_policy(name) for name in _POLICIES if name in available_policies()
    ]
    rows = []
    ok = True
    for k in resources:
        for policy in policies:
            makespans: list[int] = []
            bounds: list[int] = []
            for seed in seeds:
                instance = multi_resource_instance(
                    m, n, k, profile=profile, grid=grid, seed=seed
                )
                if k == 1:
                    # The sampler must nest the paper's family exactly.
                    if instance != uniform_instance(m, n, grid=grid, seed=seed):
                        ok = False
                result = run_policy(
                    instance, policy, backend=backend, record_shares=False
                )
                lower = instance.makespan_lower_bound()
                if result.makespan < lower:
                    ok = False
                makespans.append(result.makespan)
                bounds.append(lower)
            mean_makespan = sum(makespans) / len(makespans)
            mean_bound = sum(bounds) / len(bounds)
            rows.append(
                {
                    "k": k,
                    "policy": policy.name,
                    "mean_makespan": round(mean_makespan, 2),
                    "mean_lower_bound": round(mean_bound, 2),
                    "mean_ratio": round(mean_makespan / mean_bound, 3),
                }
            )
    notes = [
        "k = number of shared resources; the lower bound is the "
        "per-resource congestion maximum max_l ceil(W_l) (Observation 1 "
        "applied to every resource)",
        f"profile = {profile} (how resources 1..k-1 relate to resource 0)",
    ]
    if backend != "exact":
        from ..backends import cross_validate

        worst = 0.0
        for k in resources:
            if k == 1:
                continue
            for seed in seeds[:2]:
                instance = multi_resource_instance(
                    m, n, k, profile=profile, grid=grid, seed=seed
                )
                check = cross_validate(instance, get_policy("greedy-balance"))
                worst = max(worst, check.makespan_rel_error)
                if not check.ok:
                    ok = False
        notes.append(
            f"exact-vs-vector makespan agreement on k>1 instances: "
            f"max rel error {worst:.3g}"
        )
    return ExperimentResult(
        experiment="MULTIRES",
        title="Multiple shared resources: policy comparison as k grows",
        paper_claim=(
            "beyond the paper: bottleneck water-filling generalizes every "
            "policy to k shared resources (Maack et al.), k=1 reproduces "
            "the paper's model bit-for-bit, and makespans respect the "
            "per-resource congestion bound"
        ),
        params={
            "m": m,
            "n": n,
            "resources": list(resources),
            "seeds": list(seeds),
            "profile": profile,
            "grid": grid,
            "backend": backend,
        },
        columns=[
            "k",
            "policy",
            "mean_makespan",
            "mean_lower_bound",
            "mean_ratio",
        ],
        rows=rows,
        verdict=ok,
        notes=notes,
    )
