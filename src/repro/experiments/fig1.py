"""FIG1: the scheduling hypergraph of Figure 1.

Runs the greedy finish-as-many-jobs policy on the paper's 3-processor
example and reports the hypergraph structure: the paper's Figure 1b
shows 6 edges forming 3 connected components ordered left to right
with classes (3, 3, 1)."""

from __future__ import annotations

from ..algorithms.heuristics import GreedyFinishJobs
from ..core.hypergraph import SchedulingGraph
from ..generators.worst_case import fig1_instance
from .runner import ExperimentResult

__all__ = ["run"]

#: Figure 1b: three components ordered left to right; (class, #edges,
#: |C_k|) per component as read off the figure.
EXPECTED_NUM_EDGES = 6
EXPECTED_COMPONENTS = [(3, 2, 5), (3, 3, 6), (1, 1, 1)]


def run() -> ExperimentResult:
    instance = fig1_instance()
    schedule = GreedyFinishJobs().run(instance)
    graph = SchedulingGraph(schedule)

    rows = []
    for comp in graph.components:
        rows.append(
            {
                "component": f"C{comp.index + 1}",
                "steps": f"{comp.first_step + 1}..{comp.last_step + 1}",
                "class_q": comp.klass,
                "edges": comp.num_edges,
                "nodes": comp.num_nodes,
            }
        )
    shape = [(c.klass, c.num_edges, c.num_nodes) for c in graph.components]
    verdict = (
        len(graph.edges) == EXPECTED_NUM_EDGES
        and shape == EXPECTED_COMPONENTS
        and graph.check_observation_2()
    )
    return ExperimentResult(
        experiment="FIG1",
        title="Scheduling hypergraph of the Figure 1 example",
        paper_claim=(
            "greedy finish-as-many-jobs yields 6 edges forming 3 "
            "left-to-right components (Figure 1b)"
        ),
        params={"instance": "fig1", "policy": "greedy-finish-jobs"},
        columns=["component", "steps", "class_q", "edges", "nodes"],
        rows=rows,
        verdict=verdict,
        notes=[f"makespan={schedule.makespan}"],
    )
