"""FIG3 / THM3 (lower bound): RoundRobin's worst-case family.

Sweeps the Figure 3 adversarial family: RoundRobin needs ``2n`` steps,
the optimum ``n + 1``, so the ratio ``2n/(n+1)`` approaches 2 from
below -- Theorem 3's lower bound.  The optimal makespans come from the
m=2 exact algorithm; the explicit Figure 3a schedule is checked as an
upper-bound witness."""

from __future__ import annotations

from fractions import Fraction

from ..algorithms.opt_two import opt_res_assignment
from ..algorithms.round_robin import RoundRobin, round_robin_makespan_formula
from ..core.numerics import as_float
from ..generators.worst_case import round_robin_adversarial, round_robin_optimal_schedule
from .runner import ExperimentResult

__all__ = ["run"]


def run(sizes: tuple[int, ...] = (5, 10, 25, 50, 100, 200, 400)) -> ExperimentResult:
    rows = []
    ok = True
    policy = RoundRobin()
    for n in sizes:
        instance = round_robin_adversarial(n)
        rr = policy.run(instance)
        # The exact DP is O(n^2); the explicit Fig 3a schedule is the
        # witness that OPT <= n+1, and the DP confirms equality.
        witness = round_robin_optimal_schedule(n)
        opt = opt_res_assignment(instance).makespan
        ratio = Fraction(rr.makespan, opt)
        rows.append(
            {
                "n": n,
                "round_robin": rr.makespan,
                "formula": round_robin_makespan_formula(instance),
                "opt": opt,
                "witness": witness.makespan,
                "ratio": round(as_float(ratio), 4),
            }
        )
        ok = ok and rr.makespan == 2 * n and opt == n + 1 == witness.makespan
    return ExperimentResult(
        experiment="FIG3",
        title="RoundRobin worst case (Figure 3): ratio -> 2",
        paper_claim="RoundRobin = 2n vs OPT = n+1 on the adversarial family",
        params={"sizes": list(sizes)},
        columns=["n", "round_robin", "formula", "opt", "witness", "ratio"],
        rows=rows,
        verdict=ok,
    )
