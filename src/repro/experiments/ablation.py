"""ABL: which ingredient of GreedyBalance earns the guarantee?

DESIGN.md calls out GreedyBalance's two priority ingredients -- the
*balance direction* (more remaining jobs first) and the *tie-break*
(larger remaining requirement first).  This ablation runs four variants
on the Theorem 8 adversarial family and on random instances:

* ``gb``           -- the paper's rule (balanced => (2-1/m)-guarantee);
* ``gb-small-tie`` -- balance kept, tie-break inverted (still balanced,
  so Theorem 7 still applies: the guarantee must survive);
* ``anti-balance`` -- balance inverted (fewest remaining jobs first):
  the Theorem 7 hypothesis is gone;
* ``no-balance``   -- no queue-length term at all (largest remaining
  requirement first).

Verdict checks the theory-backed expectations: both *balanced* variants
respect ``(2 - 1/m) * max(LB5, LB6+1, n)`` everywhere (Theorem 7 needs
balance, not the tie-break), while the unbalanced variants lose the
balancedness property itself -- the ingredient, not greediness, is
load-bearing."""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..algorithms.base import Policy, water_fill
from ..algorithms.greedy_balance import GreedyBalance
from ..algorithms.heuristics import FewestRemainingJobsFirst, LargestRequirementFirst
from ..core.hypergraph import SchedulingGraph
from ..core.lower_bounds import theorem7_reference
from ..core.numerics import as_float
from ..core.properties import is_balanced
from ..core.state import ExecState
from ..generators.random_instances import uniform_instance
from ..generators.worst_case import greedy_balance_adversarial
from .runner import ExperimentResult

__all__ = ["run", "GreedyBalanceSmallTie"]


class GreedyBalanceSmallTie(Policy):
    """GreedyBalance with the tie-break inverted: among processors with
    equally many remaining jobs, serve the *smallest* remaining
    requirement first.  Still balanced (the queue-length priority is
    untouched), so Theorem 7 still applies."""

    name = "gb-small-tie"

    def shares(self, state: ExecState) -> Sequence[Fraction]:
        order = sorted(
            state.active_processors(),
            key=lambda i: (-state.jobs_remaining(i), state.remaining_work(i), i),
        )
        return water_fill(state, order)


def run(
    ms: tuple[int, ...] = (2, 3, 4),
    blocks: int = 6,
    seeds: tuple[int, ...] = (0, 1, 2, 3),
    n: int = 5,
) -> ExperimentResult:
    variants = [
        GreedyBalance(),
        GreedyBalanceSmallTie(),
        FewestRemainingJobsFirst(),  # anti-balance
        LargestRequirementFirst(),  # no balance term
    ]
    balanced_variants = {"greedy-balance", "gb-small-tie"}
    rows = []
    ok = True
    for m in ms:
        guarantee = 2 - Fraction(1, m)
        adversarial = greedy_balance_adversarial(m, blocks)
        for policy in variants:
            adv = policy.run(adversarial)
            balanced_everywhere = True
            worst = Fraction(0)
            bound_ok = True
            for seed in seeds:
                instance = uniform_instance(m, n, seed=seed)
                sched = policy.run(instance)
                balanced_everywhere = balanced_everywhere and is_balanced(sched)
                graph = SchedulingGraph(sched)
                reference = theorem7_reference(graph)
                ratio = Fraction(sched.makespan) / reference
                worst = max(worst, ratio)
                bound_ok = bound_ok and sched.makespan <= guarantee * reference
            rows.append(
                {
                    "m": m,
                    "policy": policy.name,
                    "adversarial_makespan": adv.makespan,
                    "always_balanced": balanced_everywhere,
                    "worst_ratio_vs_thm7_ref": round(as_float(worst), 4),
                    "guarantee": round(as_float(guarantee), 4),
                    "within_guarantee": bound_ok,
                }
            )
            if policy.name in balanced_variants:
                # Theorem 7 hinges on balance: both balanced variants
                # must be balanced everywhere and within the bound.
                ok = ok and balanced_everywhere and bound_ok
        # The unbalanced variants must actually lose balancedness on
        # the adversarial family (otherwise the ablation shows nothing).
        anti = [r for r in rows if r["m"] == m and r["policy"] not in balanced_variants]
        ok = ok and not all(r["always_balanced"] for r in anti)
    return ExperimentResult(
        experiment="ABL",
        title="GreedyBalance ablation: balance direction vs tie-break",
        paper_claim=(
            "Theorem 7 needs the balance property, not the tie-break: "
            "any balanced water-fill variant keeps the (2-1/m) bound"
        ),
        params={"ms": list(ms), "blocks": blocks, "seeds": list(seeds), "n": n},
        columns=[
            "m",
            "policy",
            "adversarial_makespan",
            "always_balanced",
            "worst_ratio_vs_thm7_ref",
            "guarantee",
            "within_guarantee",
        ],
        rows=rows,
        verdict=ok,
    )
