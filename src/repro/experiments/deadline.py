"""DEADLINE: tardiness and lateness under per-job deadlines.

The deadline variants of the discrete--continuous scheduling line
(Józefowska & Węglarz, the paper's [10]) ask for schedules meeting due
dates rather than minimizing the horizon.  This experiment attaches
seeded deadline profiles of increasing slack (``tight``/``mixed``/
``loose``, drawn relative to per-job earliest completion times) to
uniform instances and compares policies under the ``tardiness``,
``max-lateness`` and ``deadline-misses`` objectives.

Machine check (the verdict):

* ``edf-waterfill`` (the slack-priority policy) achieves a strictly
  smaller mean total tardiness than ``round-robin`` on every profile
  -- the acceptance bar for the policy;
* per instance, the objective layer's consistency triple holds:
  tardiness is 0 exactly when no deadline is missed, and a positive
  miss count implies positive max lateness;
* the selected backend agrees with the exact reference on a sample of
  deadline instances (skipped when already exact).
"""

from __future__ import annotations

from ..algorithms import available_policies, get_policy
from ..backends.batch import BatchRunner, make_campaign_instances
from .runner import ExperimentResult

__all__ = ["run"]

#: Policies compared under the deadline objectives; edf-waterfill is
#: the slack-tuned one.
_POLICIES = (
    "edf-waterfill",
    "greedy-finish-jobs",
    "greedy-balance",
    "round-robin",
)

_OBJECTIVES = ("tardiness", "max-lateness", "deadline-misses")


def run(
    m: int = 5,
    n: int = 5,
    profiles: tuple[str, ...] = ("tight", "mixed", "loose"),
    count: int = 8,
    grid: int = 100,
    seed: int = 0,
    backend: str = "vector",
) -> ExperimentResult:
    """Run the deadline policy comparison and check its claims."""
    policies = [name for name in _POLICIES if name in available_policies()]
    rows = []
    ok = True
    mean_tardiness: dict[tuple[str, str], float] = {}
    for profile in profiles:
        instances = make_campaign_instances(
            count, m, n, grid=grid, seed=seed, deadline_profile=profile
        )
        for name in policies:
            result = BatchRunner(
                policy=name,
                backend=backend,
                workers=1,
                objectives=_OBJECTIVES,
            ).run(instances)
            for row in result.rows:
                report = row["objectives"]
                tardy = report["tardiness"]["value"]
                misses = report["deadline-misses"]["value"]
                lateness = report["max-lateness"]["value"]
                # Consistency triple: tardiness == 0 <=> no misses, and
                # any miss forces a positive max lateness.
                if (tardy == 0) != (misses == 0):
                    ok = False
                if misses > 0 and lateness <= 0:
                    ok = False
            summary = result.summary()["objectives"]
            mean_tardiness[(profile, name)] = summary["tardiness"]["mean_value"]
            rows.append(
                {
                    "profile": profile,
                    "policy": name,
                    "mean_tardiness": round(summary["tardiness"]["mean_value"], 2),
                    "mean_misses": round(
                        summary["deadline-misses"]["mean_value"], 2
                    ),
                    "mean_max_lateness": round(
                        summary["max-lateness"]["mean_value"], 2
                    ),
                }
            )
    for profile in profiles:
        if not (
            mean_tardiness[(profile, "edf-waterfill")]
            < mean_tardiness[(profile, "round-robin")]
        ):
            ok = False
    notes = [
        "profile = deadline tightness relative to per-job earliest "
        "completion times (tight: barely achievable, loose: 2x slack, "
        "mixed: coin flip per job)",
    ]
    if backend != "exact":
        from ..backends import cross_validate

        worst = 0.0
        sample = make_campaign_instances(
            3, m, n, grid=grid, seed=seed, deadline_profile="mixed"
        )
        for instance in sample:
            check = cross_validate(
                instance, get_policy("edf-waterfill"), objectives=_OBJECTIVES
            )
            worst = max(worst, check.max_objective_error or 0.0)
            if not check.ok:
                ok = False
        notes.append(
            f"exact-vs-vector tardiness agreement on sampled deadline "
            f"instances: max rel error {worst:.3g}"
        )
    return ExperimentResult(
        experiment="DEADLINE",
        title="Deadlines: tardiness/lateness policy comparison",
        paper_claim=(
            "beyond the paper: the slack-priority edf-waterfill policy "
            "beats round-robin on mean total tardiness at every deadline "
            "tightness, and the tardiness/misses/lateness objectives are "
            "mutually consistent on every run"
        ),
        params={
            "m": m,
            "n": n,
            "profiles": list(profiles),
            "count": count,
            "grid": grid,
            "seed": seed,
            "backend": backend,
        },
        columns=[
            "profile",
            "policy",
            "mean_tardiness",
            "mean_misses",
            "mean_max_lateness",
        ],
        rows=rows,
        verdict=ok,
        notes=notes,
    )
