"""FIG5 / THM8: GreedyBalance's tight worst case.

Sweeps the Theorem 8 block construction over ``m`` and block counts:
GreedyBalance spends ``2m - 1`` steps per block while the explicit
diagonal witness schedule finishes in ``n + m - 1`` steps (``n = m *
blocks`` columns), so the ratio approaches ``2 - 1/m`` as the number
of blocks grows."""

from __future__ import annotations

from fractions import Fraction

from ..algorithms.greedy_balance import GreedyBalance
from ..core.numerics import as_float
from ..generators.worst_case import (
    greedy_balance_adversarial,
    greedy_balance_witness_schedule,
)
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    ms: tuple[int, ...] = (2, 3, 4, 5),
    block_counts: tuple[int, ...] = (2, 5, 10, 20, 40),
) -> ExperimentResult:
    rows = []
    ok = True
    policy = GreedyBalance()
    for m in ms:
        target = Fraction(2 * m - 1, m)
        ratios = []
        for blocks in block_counts:
            instance = greedy_balance_adversarial(m, blocks)
            gb = policy.run(instance)
            witness = greedy_balance_witness_schedule(instance, m)
            ratio = Fraction(gb.makespan, witness.makespan)
            ratios.append(ratio)
            rows.append(
                {
                    "m": m,
                    "blocks": blocks,
                    "columns": instance.max_jobs,
                    "greedy_balance": gb.makespan,
                    "witness_opt": witness.makespan,
                    "ratio": round(as_float(ratio), 4),
                    "limit_2_minus_1_over_m": round(as_float(target), 4),
                }
            )
            # Shape: GB uses exactly (2m-1) steps per block; the
            # witness exactly n + m - 1 -- hence the exact finite-size
            # ratio (2m-1)B / (mB + m - 1), whose limit is 2 - 1/m.
            ok = ok and gb.makespan == (2 * m - 1) * blocks
            ok = ok and witness.makespan == instance.max_jobs + m - 1
            ok = ok and ratio == Fraction((2 * m - 1) * blocks, m * blocks + m - 1)
            ok = ok and ratio <= target
        # The ratio climbs monotonically toward the bound.
        ok = ok and all(a < b for a, b in zip(ratios, ratios[1:]))
    return ExperimentResult(
        experiment="FIG5",
        title="GreedyBalance worst case (Figure 5): ratio -> 2 - 1/m",
        paper_claim=(
            "GreedyBalance needs 2m-1 steps per block vs ~m for OPT; "
            "worst-case ratio exactly 2 - 1/m (Theorem 8)"
        ),
        params={"ms": list(ms), "block_counts": list(block_counts)},
        columns=[
            "m",
            "blocks",
            "columns",
            "greedy_balance",
            "witness_opt",
            "ratio",
            "limit_2_minus_1_over_m",
        ],
        rows=rows,
        verdict=ok,
    )
