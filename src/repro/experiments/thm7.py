"""THM7: balanced schedules are (2 - 1/m)-approximations.

Random sweep over m: GreedyBalance's schedules are verified balanced /
non-wasting / progressive, and the exact inequality

    makespan(GB)  <=  (2 - 1/m) * max(LB_lemma5, LB_lemma6, n, work)

is checked -- this is precisely the bound chain the Theorem 7 proof
establishes (its two cases bound S against Lemma 5's and Lemma 6's
certificates).  Against the true optimum (computed exactly for small
instances) the ratio is also <= 2 - 1/m."""

from __future__ import annotations

from fractions import Fraction

from ..algorithms.greedy_balance import GreedyBalance
from ..algorithms.opt_general import opt_res_assignment_general
from ..algorithms.opt_two import opt_res_assignment
from ..core.hypergraph import SchedulingGraph
from ..core.lower_bounds import (
    lemma5_bound,
    lemma6_bound,
    length_bound,
    theorem7_reference,
    work_bound,
)
from ..core.numerics import as_float, frac_ceil
from ..core.properties import is_balanced, is_non_wasting, is_progressive
from ..generators.random_instances import ragged_instance, uniform_instance
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    ms: tuple[int, ...] = (2, 3, 4, 5),
    n: int = 6,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6, 7),
    exact_upto_m: int = 3,
    exact_n: int = 3,
) -> ExperimentResult:
    rows = []
    ok = True
    policy = GreedyBalance()
    for m in ms:
        guarantee = 2 - Fraction(1, m)
        worst_cert = Fraction(0)
        balanced_all = True
        for seed in seeds:
            instance = uniform_instance(m, n, seed=seed)
            gb = policy.run(instance)
            balanced_all = balanced_all and (
                is_balanced(gb) and is_non_wasting(gb) and is_progressive(gb)
            )
            graph = SchedulingGraph(gb)
            certificate = max(
                lemma5_bound(graph),
                frac_ceil(lemma6_bound(graph)),
                length_bound(instance),
                work_bound(instance),
            )
            # Reported: ratio against a true lower-bound certificate.
            worst_cert = max(worst_cert, Fraction(gb.makespan, certificate))
            # Asserted: the exact inequality the Theorem 7 proof gives
            # (against max(LB5, LB6+1, n), which covers both its cases).
            ok = ok and gb.makespan <= guarantee * theorem7_reference(graph)
            # Also stress unbalanced queue lengths.
            rag = ragged_instance(m, (1, n), seed=seed)
            gbr = policy.run(rag)
            graph_r = SchedulingGraph(gbr)
            ok = ok and gbr.makespan <= guarantee * theorem7_reference(graph_r)

        worst_opt = Fraction(0)
        if m <= exact_upto_m:
            for seed in seeds[:4]:
                instance = uniform_instance(m, exact_n, seed=seed)
                gb = policy.run(instance)
                if m == 2:
                    opt = opt_res_assignment(instance).makespan
                else:
                    opt = opt_res_assignment_general(instance).makespan
                r = Fraction(gb.makespan, opt)
                worst_opt = max(worst_opt, r)
                ok = ok and r <= guarantee
        ok = ok and balanced_all
        rows.append(
            {
                "m": m,
                "guarantee": round(as_float(guarantee), 4),
                "worst_ratio_vs_certificate": round(as_float(worst_cert), 4),
                "worst_ratio_vs_opt": (
                    round(as_float(worst_opt), 4) if worst_opt else "-"
                ),
                "balanced": balanced_all,
            }
        )
    return ExperimentResult(
        experiment="THM7",
        title="Balanced schedules are (2 - 1/m)-approximations",
        paper_claim=(
            "every non-wasting, progressive, balanced schedule has "
            "makespan <= (2 - 1/m) OPT, provable from the Lemma 5/6 "
            "certificates"
        ),
        params={"ms": list(ms), "n": n, "seeds": list(seeds)},
        columns=[
            "m",
            "guarantee",
            "worst_ratio_vs_certificate",
            "worst_ratio_vs_opt",
            "balanced",
        ],
        rows=rows,
        verdict=ok,
    )
