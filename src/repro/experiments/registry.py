"""Registry of all experiments (the DESIGN.md per-experiment index)."""

from __future__ import annotations

from . import (
    ablation,
    arrivals,
    cont,
    deadline,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    flow,
    gen,
    lemmas,
    multires,
    optgap,
    order,
    sim,
    thm3,
    thm5,
    thm6,
    thm7,
)
from .runner import Experiment, ExperimentResult

__all__ = ["EXPERIMENTS", "get_experiment", "run_all"]

EXPERIMENTS: dict[str, Experiment] = {
    exp.id: exp
    for exp in [
        Experiment("FIG1", "Scheduling hypergraph of Figure 1", fig1.run),
        Experiment("FIG2", "Nested schedules and Lemma 1 (Figure 2)", fig2.run),
        Experiment("FIG3", "RoundRobin worst case (Figure 3 / Thm 3)", fig3.run),
        Experiment("FIG4", "Partition reduction (Figure 4 / Thm 4)", fig4.run),
        Experiment("FIG5", "GreedyBalance worst case (Figure 5 / Thm 8)", fig5.run),
        Experiment("THM3", "RoundRobin 2-approximation on random instances", thm3.run),
        Experiment("THM5", "m=2 exact DP optimality and scaling", thm5.run),
        Experiment("THM6", "Fixed-m exact search optimality and states", thm6.run),
        Experiment("THM7", "Balanced schedules are (2-1/m)-approximations", thm7.run),
        Experiment("LEM", "Structural lemmas (Obs 2, Lem 2, Prop 1/2, Lem 5/6)", lemmas.run),
        Experiment("SIM", "Many-core shared-bus policy comparison", sim.run),
        Experiment("GEN", "Arbitrary job sizes (Section 9 conjecture)", gen.run),
        Experiment("ABL", "GreedyBalance ablation: balance vs tie-break", ablation.run),
        Experiment("CONT", "Continuous-time variant (Section 9 outlook)", cont.run),
        Experiment("ARR", "Online arrivals: policies under staggered releases", arrivals.run),
        Experiment("MULTIRES", "Multiple shared resources: policy ratios as k grows", multires.run),
        Experiment("FLOW", "Weighted flow time under Poisson arrivals", flow.run),
        Experiment("DEADLINE", "Deadlines: tardiness/lateness policy comparison", deadline.run),
        Experiment("ORDER", "Queue-order gap: fixed vs optimized sequencing", order.run),
        Experiment("OPTGAP", "Certified optimality gaps: policy vs proved OPT", optgap.run),
    ]
}


def get_experiment(exp_id: str) -> Experiment:
    """Look up an experiment by id (case-insensitive).

    Raises:
        KeyError: listing the available ids.
    """
    key = exp_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key]


def run_all(**kwargs) -> list[ExperimentResult]:
    """Run every registered experiment with default parameters."""
    return [exp.run() for exp in EXPERIMENTS.values()]
