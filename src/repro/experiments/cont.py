"""CONT: the continuous-time variant (Section 9 outlook).

The paper closes with: "it seems an intriguing question to consider
this problem in a more sophisticated, continuous setting where the
scheduler can act at arbitrary times."  This experiment runs the
event-driven fluid GreedyBalance next to its discrete twin:

* both respect the continuous lower bound
  ``max(total work, longest chain)`` (no step rounding);
* the continuous relaxation is *not* uniformly better for the greedy
  rule -- the discrete grid can synchronize completions in its favor --
  and the forced-idle chain example shows the continuous optimum can
  sit strictly above the fluid lower bound: the problem stays hard in
  continuous time, which is precisely why the paper flags it as open."""

from __future__ import annotations

from fractions import Fraction

from ..algorithms.greedy_balance import GreedyBalance
from ..core.continuous import continuous_greedy_balance, continuous_lower_bound
from ..core.instance import Instance
from ..core.numerics import as_float
from ..generators.random_instances import uniform_instance
from ..generators.worst_case import round_robin_adversarial
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    configs: tuple[tuple[int, int], ...] = ((2, 4), (3, 4), (4, 3)),
    seeds: tuple[int, ...] = (0, 1, 2, 3),
) -> ExperimentResult:
    rows = []
    ok = True
    policy = GreedyBalance()

    cont_better = cont_worse = 0
    for m, n in configs:
        for seed in seeds:
            instance = uniform_instance(m, n, seed=seed)
            fluid = continuous_greedy_balance(instance)
            fluid.validate()
            disc = policy.run(instance)
            lb = continuous_lower_bound(instance)
            ok = ok and fluid.makespan >= lb and disc.makespan >= lb
            if fluid.makespan < disc.makespan:
                cont_better += 1
            elif fluid.makespan > disc.makespan:
                cont_worse += 1
            rows.append(
                {
                    "family": f"uniform {m}x{n}",
                    "seed": seed,
                    "fluid_GB": round(as_float(fluid.makespan), 4),
                    "discrete_GB": disc.makespan,
                    "cont_LB": round(as_float(lb), 4),
                }
            )

    # The Figure 3 family: continuous GreedyBalance meets the bound.
    fig3 = round_robin_adversarial(8)
    fluid = continuous_greedy_balance(fig3)
    fluid.validate()
    lb = continuous_lower_bound(fig3)
    rows.append(
        {
            "family": "fig3 n=8",
            "seed": "-",
            "fluid_GB": round(as_float(fluid.makespan), 4),
            "discrete_GB": GreedyBalance().run(fig3).makespan,
            "cont_LB": round(as_float(lb), 4),
        }
    )
    ok = ok and fluid.makespan == lb

    # The forced-idle chain: continuous optimum strictly above the LB.
    hard = Instance.from_requirements([["1/10", "1"], ["1/10", "1"]])
    fluid = continuous_greedy_balance(hard)
    fluid.validate()
    rows.append(
        {
            "family": "forced-idle chains",
            "seed": "-",
            "fluid_GB": round(as_float(fluid.makespan), 4),
            "discrete_GB": GreedyBalance().run(hard).makespan,
            "cont_LB": round(as_float(continuous_lower_bound(hard)), 4),
        }
    )
    ok = ok and fluid.makespan == 3 and continuous_lower_bound(hard) == Fraction(11, 5)

    return ExperimentResult(
        experiment="CONT",
        title="Continuous-time CRSharing (Section 9 outlook)",
        paper_claim=(
            "the continuous-time variant is flagged as an open question; "
            "lower bounds transfer without rounding, but cap-constrained "
            "chains still force idle capacity"
        ),
        params={"configs": list(configs), "seeds": list(seeds)},
        columns=["family", "seed", "fluid_GB", "discrete_GB", "cont_LB"],
        rows=rows,
        verdict=ok,
        notes=[
            f"fluid better on {cont_better}, worse on {cont_worse} of the "
            f"random instances: the relaxation does not uniformly help the "
            f"greedy rule"
        ],
    )
