"""FIG4 / THM4 / COR1: the Partition reduction gadget.

For random planted YES and guaranteed NO Partition instances, builds
the Theorem 4 gadget and checks the biconditional exactly:

* YES  =>  the Figure 4a witness schedule achieves makespan 4, and two
  independent exact solvers (the fixed-m configuration search and the
  HiGHS MILP) confirm OPT = 4;
* NO   =>  both solvers report OPT >= 5.

The 5/4 gap between the two cases is Corollary 1's inapproximability
bound."""

from __future__ import annotations

from ..algorithms.milp import milp_makespan
from ..algorithms.opt_general import opt_res_assignment_general
from ..reductions.partition import (
    random_no_instance,
    random_yes_instance,
    solve_partition_dp,
)
from ..reductions.reduction import (
    reduction_instance,
    verify_reduction,
    yes_witness_schedule,
)
from .runner import ExperimentResult

__all__ = ["run"]


def _exact(instance) -> int:
    """Exact optimum via the configuration search, cross-checked by MILP."""
    search = opt_res_assignment_general(instance).makespan
    milp = milp_makespan(instance, upper=search + 1)
    if search != milp:  # pragma: no cover - would indicate a solver bug
        raise AssertionError(f"oracle disagreement: search={search} milp={milp}")
    return search


def run(
    sizes: tuple[int, ...] = (3, 4, 5),
    seeds: tuple[int, ...] = (0, 1, 2),
) -> ExperimentResult:
    rows = []
    ok = True
    for n in sizes:
        for seed in seeds:
            yes, witness_subset = random_yes_instance(n, seed=seed)
            result = verify_reduction(yes, optimal_makespan=_exact)
            witness = yes_witness_schedule(yes, witness_subset)
            rows.append(
                {
                    "n": len(yes.values),
                    "seed": seed,
                    "kind": "YES",
                    "partition": solve_partition_dp(yes) is not None,
                    "witness_makespan": witness.makespan,
                    "opt": result["opt"],
                    "consistent": result["consistent"],
                }
            )
            ok = ok and result["consistent"] and witness.makespan == 4

            no = random_no_instance(n, seed=seed)
            result = verify_reduction(no, optimal_makespan=_exact)
            rows.append(
                {
                    "n": len(no.values),
                    "seed": seed,
                    "kind": "NO",
                    "partition": solve_partition_dp(no) is not None,
                    "witness_makespan": "-",
                    "opt": result["opt"],
                    "consistent": result["consistent"],
                }
            )
            ok = ok and result["consistent"] and result["opt"] >= 5
    return ExperimentResult(
        experiment="FIG4",
        title="Theorem 4 reduction: Partition <=> makespan-4 gadget",
        paper_claim=(
            "YES-instances admit makespan exactly 4 (Figure 4a); "
            "NO-instances force makespan >= 5 (Corollary 1: 5/4 gap)"
        ),
        params={"sizes": list(sizes), "seeds": list(seeds)},
        columns=[
            "n",
            "seed",
            "kind",
            "partition",
            "witness_makespan",
            "opt",
            "consistent",
        ],
        rows=rows,
        verdict=ok,
    )
