"""GEN: arbitrary job sizes (the Section 9 conjecture).

The paper analyzes unit-size jobs and *conjectures* "almost all results
should be transferable" to arbitrary sizes.  This experiment probes the
conjecture empirically: on random general-size instances (sizes 1..3),
compare GreedyBalance and RoundRobin against the exact optimum from the
time-indexed MILP oracle (the only exact solver whose formulation never
assumes unit sizes) and check that the unit-size guarantees still hold:

* ``GB <= (2 - 1/m) * OPT``   (Theorem 7's bound), and
* ``RR <= 2 * OPT``           (Theorem 3's bound).

A recorded pass is evidence *for* the conjecture on the sampled family;
any counterexample would print its seed."""

from __future__ import annotations

from fractions import Fraction

from ..algorithms.greedy_balance import GreedyBalance
from ..algorithms.milp import milp_makespan
from ..algorithms.round_robin import RoundRobin
from ..core.numerics import as_float
from ..generators.random_instances import general_size_instance
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    configs: tuple[tuple[int, int], ...] = ((2, 2), (2, 3), (3, 2)),
    seeds: tuple[int, ...] = (0, 1, 2, 3),
    max_size: int = 3,
) -> ExperimentResult:
    rows = []
    ok = True
    gb_policy = GreedyBalance()
    rr_policy = RoundRobin()
    for m, n in configs:
        guarantee = 2 - Fraction(1, m)
        worst_gb = Fraction(0)
        worst_rr = Fraction(0)
        for seed in seeds:
            instance = general_size_instance(
                m, n, grid=10, max_size=max_size, seed=seed
            )
            gb = gb_policy.run(instance)
            rr = rr_policy.run(instance)
            opt = milp_makespan(instance, upper=max(gb.makespan, rr.makespan))
            worst_gb = max(worst_gb, Fraction(gb.makespan, opt))
            worst_rr = max(worst_rr, Fraction(rr.makespan, opt))
            ok = ok and gb.makespan >= opt and rr.makespan >= opt
        ok = ok and worst_gb <= guarantee and worst_rr <= 2
        rows.append(
            {
                "m": m,
                "n": n,
                "max_size": max_size,
                "instances": len(seeds),
                "worst_GB/OPT": round(as_float(worst_gb), 4),
                "GB_guarantee": round(as_float(guarantee), 4),
                "worst_RR/OPT": round(as_float(worst_rr), 4),
                "RR_guarantee": 2.0,
            }
        )
    return ExperimentResult(
        experiment="GEN",
        title="Arbitrary job sizes: do the unit-size guarantees transfer?",
        paper_claim=(
            "Section 9 conjectures 'almost all results should be "
            "transferable' to arbitrary job sizes"
        ),
        params={"configs": list(configs), "seeds": list(seeds), "max_size": max_size},
        columns=[
            "m",
            "n",
            "max_size",
            "instances",
            "worst_GB/OPT",
            "GB_guarantee",
            "worst_RR/OPT",
            "RR_guarantee",
        ],
        rows=rows,
        verdict=ok,
        notes=[
            "exact optima from the time-indexed MILP (never assumes unit "
            "sizes); a pass supports the conjecture on the sampled family"
        ],
    )
