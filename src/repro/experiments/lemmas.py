"""LEM2/5/6: structural lemmas on balanced schedules.

Random sweep verifying, for every GreedyBalance schedule:

* Observation 2 -- components cover consecutive time steps;
* the note after Definition 1 -- component classes are non-increasing
  left to right and bound their edges' sizes;
* Lemma 2 -- ``|C_k| >= #_k + q_k - 1`` (non-final) / ``|C_N| >= #_N``;
* Lemmas 5/6 -- the certificates they produce never exceed the true
  optimum (checked exactly on small instances);
* Propositions 1 and 2 -- the balancedness consequences.
"""

from __future__ import annotations

from ..algorithms.greedy_balance import GreedyBalance
from ..algorithms.opt_general import opt_res_assignment_general
from ..algorithms.opt_two import opt_res_assignment
from ..core.hypergraph import SchedulingGraph
from ..core.lower_bounds import lemma5_bound, lemma6_bound
from ..core.numerics import frac_ceil
from ..core.properties import check_proposition_1, check_proposition_2, is_balanced
from ..generators.random_instances import ragged_instance, uniform_instance
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    configs: tuple[tuple[int, int], ...] = ((2, 4), (3, 3), (4, 4), (5, 3)),
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
) -> ExperimentResult:
    rows = []
    ok = True
    policy = GreedyBalance()
    for m, n in configs:
        counts = {
            "obs2": 0,
            "classes": 0,
            "lemma2": 0,
            "prop1": 0,
            "prop2": 0,
            "bounds_valid": 0,
            "exact_checked": 0,
        }
        for seed in seeds:
            for instance in (
                uniform_instance(m, n, seed=seed),
                ragged_instance(m, (1, n), seed=seed + 1000),
            ):
                gb = policy.run(instance)
                assert is_balanced(gb)
                graph = SchedulingGraph(gb)
                counts["obs2"] += graph.check_observation_2()
                counts["classes"] += graph.check_classes_decreasing()
                counts["lemma2"] += graph.check_lemma_2()
                counts["prop1"] += check_proposition_1(gb)
                counts["prop2"] += check_proposition_2(gb)
                if m == 2 or (m <= 3 and n <= 3):
                    if m == 2:
                        opt = opt_res_assignment(instance).makespan
                    else:
                        opt = opt_res_assignment_general(instance).makespan
                    counts["exact_checked"] += 1
                    if (
                        lemma5_bound(graph) <= opt
                        and frac_ceil(lemma6_bound(graph)) <= opt
                    ):
                        counts["bounds_valid"] += 1
        total = 2 * len(seeds)
        row_ok = all(
            counts[key] == total for key in ("obs2", "classes", "lemma2", "prop1", "prop2")
        ) and counts["bounds_valid"] == counts["exact_checked"]
        ok = ok and row_ok
        rows.append(
            {
                "m": m,
                "n": n,
                "schedules": total,
                "obs2": counts["obs2"],
                "classes_monotone": counts["classes"],
                "lemma2": counts["lemma2"],
                "prop1": counts["prop1"],
                "prop2": counts["prop2"],
                "bounds<=OPT": f"{counts['bounds_valid']}/{counts['exact_checked']}",
            }
        )
    return ExperimentResult(
        experiment="LEM",
        title="Structural lemmas on balanced schedules",
        paper_claim=(
            "Observation 2, Lemma 2, Propositions 1-2 hold for balanced "
            "schedules; Lemma 5/6 certificates never exceed OPT"
        ),
        params={"configs": list(configs), "seeds": list(seeds)},
        columns=[
            "m",
            "n",
            "schedules",
            "obs2",
            "classes_monotone",
            "lemma2",
            "prop1",
            "prop2",
            "bounds<=OPT",
        ],
        rows=rows,
        verdict=ok,
    )
