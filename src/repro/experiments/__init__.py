"""Experiment reproductions, one module per paper figure/theorem.

See DESIGN.md section 3 for the experiment index.  Run via the CLI
(``crsharing experiment FIG3``) or programmatically::

    from repro.experiments import get_experiment
    print(get_experiment("FIG3").run().to_text())
"""

from .registry import EXPERIMENTS, get_experiment, run_all
from .runner import Experiment, ExperimentResult, format_table

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "format_table",
    "get_experiment",
    "run_all",
]
