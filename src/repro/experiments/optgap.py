"""OPTGAP: certified optimality gaps -- policy vs *proved* OPT.

Every other experiment compares policies against lower bounds (work
bound, queue bound) or against per-order optima.  This one compares
them against the **certified order-aware optimum**
``OPT* = min_sigma OPT(I^sigma)`` computed by the
:mod:`repro.analysis.certify` branch-and-bound, so the reported gaps
are real optimality gaps, not bound slack:

* the **gap table**: for each sequencer (the fixed order, the static
  dispatch orders, budgeted local search), the mean gap between the
  policy's makespan on the sequenced instance and certified OPT* --
  measuring how much of the sequencing headroom each strategy
  actually recovers;
* the **ratio table**: empirical Theorem 5/6 checks with OPT computed
  by the exact oracles on the *same* fixed order the policy ran --
  RoundRobin must stay within ratio 2 (Theorem 3 via the Theorem 5/6
  oracles) and GreedyBalance within ``2 - 1/m``, in exact rational
  arithmetic;
* the **gadget family**: planted Partition YES gadgets whose optimum
  the certifier must *prove* equal to 4 (upgrading the ORDER
  experiment's heuristic 5 -> 4 observation to a certificate).

Machine check (the verdict): every certificate is proved; certified
OPT* lower-bounds every policy x sequencer makespan; mean
gap(local-search) <= mean gap(fixed); both Theorem ratios hold on
every instance; and every gadget certificate proves exactly 4.
"""

from __future__ import annotations

from fractions import Fraction

from ..algorithms.opt_order import exact_order_makespan
from ..analysis.certify import certify_opt
from ..core.simulator import run_policy
from ..generators.random_instances import uniform_instance
from ..reductions.partition import random_yes_instance
from ..reductions.reduction import reduction_instance
from ..sequencing import get_sequencer
from .runner import ExperimentResult

__all__ = ["run"]

#: Sequencers whose certified gap is measured (vs the fixed baseline).
_SEQUENCERS = ("fixed", "spt", "lpt", "requirement-desc", "local-search")

#: (policy, worst-case ratio as a function of m) for the ratio table.
_RATIO_POLICIES = ("round-robin", "greedy-balance")

#: Makespan the Theorem 4 gadget proves optimal for YES instances.
_GADGET_OPT = 4


def _ratio_bound(policy: str, m: int) -> Fraction:
    """The paper's worst-case ratio guarantee for *policy* at ``m``."""
    if policy == "round-robin":
        return Fraction(2)
    return 2 - Fraction(1, m)


def run(
    m: int = 2,
    n: int = 4,
    gadget_size: int = 4,
    seeds: tuple[int, ...] = (0, 1, 2, 3),
    policy: str = "greedy-balance",
    budget: int = 120,
    restarts: int = 2,
    grid: int = 100,
    backend: str = "vector",
    max_nodes: int = 200_000,
) -> ExperimentResult:
    """Measure certified optimality gaps and Theorem 5/6 ratios."""
    families = {
        "uniform": [
            uniform_instance(m, n, grid=grid, seed=seed) for seed in seeds
        ],
        "gadget-yes": [
            reduction_instance(random_yes_instance(gadget_size, seed=seed)[0])
            for seed in seeds
        ],
    }
    rows = []
    ok = True
    mean_gap_by_sequencer: dict[tuple[str, str], float] = {}
    for family, instances in families.items():
        # Certify OPT* once per instance (exact mode, proved or bust).
        certs = [certify_opt(inst, max_nodes=max_nodes) for inst in instances]
        for cert in certs:
            if not cert.proved:
                ok = False
        if family == "gadget-yes":
            for cert in certs:
                if not (cert.proved and cert.value == _GADGET_OPT):
                    ok = False  # the gadget optimum must be *proved* 4
        count = len(instances)
        for name in _SEQUENCERS:
            spans = []
            for seed, inst in zip(seeds, instances):
                if name == "local-search":
                    sequencer = get_sequencer(
                        name,
                        policy=policy,
                        backend=backend,
                        budget=budget,
                        restarts=restarts,
                        seed=seed,
                    )
                else:
                    sequencer = get_sequencer(name)
                span = run_policy(
                    sequencer.sequence(inst),
                    policy,
                    backend=backend,
                    record_shares=False,
                ).makespan
                spans.append(span)
            gaps = [
                cert.gap(span) if cert.proved else float("nan")
                for cert, span in zip(certs, spans)
            ]
            for cert, span in zip(certs, spans):
                if cert.proved and span < cert.value:
                    ok = False  # nothing beats a proved optimum
            mean_gap = sum(gaps) / count
            mean_gap_by_sequencer[(family, name)] = mean_gap
            rows.append(
                {
                    "family": family,
                    "measure": f"gap:{name}",
                    "mean_policy": round(sum(spans) / count, 2),
                    "mean_opt": round(
                        sum(c.value for c in certs) / count, 2
                    ),
                    "mean_gap_pct": round(100 * mean_gap, 1),
                    "worst_ratio": round(
                        max(
                            span / cert.value
                            for cert, span in zip(certs, spans)
                        ),
                        3,
                    ),
                    "proved": sum(1 for c in certs if c.proved),
                }
            )
        # Theorem 5/6 ratio checks: the policy on the *fixed* order vs
        # the exact per-order oracles on that same order (the sound
        # comparison the paper's guarantees are stated for).
        for ratio_policy in _RATIO_POLICIES:
            bound = _ratio_bound(ratio_policy, instances[0].m)
            worst = Fraction(0)
            spans = []
            opts = []
            for inst in instances:
                span = run_policy(
                    inst, ratio_policy, backend=backend, record_shares=False
                ).makespan
                opt = exact_order_makespan(inst)
                ratio = Fraction(span, opt)
                worst = max(worst, ratio)
                if ratio > bound:
                    ok = False
                spans.append(span)
                opts.append(opt)
            rows.append(
                {
                    "family": family,
                    "measure": f"ratio:{ratio_policy}",
                    "mean_policy": round(sum(spans) / count, 2),
                    "mean_opt": round(sum(opts) / count, 2),
                    "mean_gap_pct": "",
                    "worst_ratio": round(float(worst), 3),
                    "proved": count,
                }
            )
        ls = mean_gap_by_sequencer[(family, "local-search")]
        fixed = mean_gap_by_sequencer[(family, "fixed")]
        if ls > fixed:
            ok = False  # local search starts from fixed, only improves
    return ExperimentResult(
        experiment="OPTGAP",
        title="Certified optimality gaps: policy vs proved OPT",
        paper_claim=(
            "beyond the paper: with OPT* certified by branch-and-bound "
            "over queue orders, policy gaps become real optimality gaps "
            "-- local search recovers at least the fixed-order gap, "
            "RoundRobin stays within ratio 2 and GreedyBalance within "
            "2-1/m of the per-order exact optimum (Theorems 3/5/6/8), "
            "and the Theorem 4 gadget optimum of 4 is proved, not found"
        ),
        params={
            "m": m,
            "n": n,
            "gadget_size": gadget_size,
            "seeds": list(seeds),
            "policy": policy,
            "budget": budget,
            "restarts": restarts,
            "grid": grid,
            "backend": backend,
            "max_nodes": max_nodes,
        },
        columns=[
            "family",
            "measure",
            "mean_policy",
            "mean_opt",
            "mean_gap_pct",
            "worst_ratio",
            "proved",
        ],
        rows=rows,
        verdict=ok,
        notes=[
            "gap rows: policy makespan on the sequenced instance vs "
            "certified OPT* = min over all queue orders of the exact "
            "per-order optimum; proved counts closed certificates",
            "ratio rows: policy on the fixed order vs the exact oracle "
            "on the same order, in exact rational arithmetic",
            f"gadget-yes family: planted Partition YES gadgets whose "
            f"optimum the certifier proves equal to {_GADGET_OPT}",
        ],
    )
