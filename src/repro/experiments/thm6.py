"""THM6: OptResAssignment2 is optimal for fixed m with bounded states.

Cross-validates the configuration search against the brute-force
oracle on random instances for m in {2, 3} and reports the per-round
configuration counts after domination pruning -- the quantity
Theorem 6 bounds polynomially (our search skips the nestedness
restriction, see opt_general's docstring, so counts are an upper bound
on the paper's)."""

from __future__ import annotations

from ..algorithms.brute_force import brute_force_makespan
from ..algorithms.opt_general import opt_res_assignment_general
from ..generators.random_instances import uniform_instance
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    configs: tuple[tuple[int, int], ...] = ((2, 3), (2, 5), (3, 2), (3, 3), (3, 4)),
    seeds: tuple[int, ...] = (0, 1, 2),
) -> ExperimentResult:
    rows = []
    ok = True
    for m, n in configs:
        max_round = 0
        total = 0
        agreed = 0
        for seed in seeds:
            instance = uniform_instance(m, n, seed=seed)
            result = opt_res_assignment_general(instance)
            bf = brute_force_makespan(instance)
            if result.makespan == bf:
                agreed += 1
            max_round = max(max_round, max(result.stats))
            total += result.total_configurations
        ok = ok and agreed == len(seeds)
        rows.append(
            {
                "m": m,
                "n": n,
                "instances": len(seeds),
                "optimal_agreement": f"{agreed}/{len(seeds)}",
                "max_configs_per_round": max_round,
                "total_configs": total,
            }
        )
    return ExperimentResult(
        experiment="THM6",
        title="Fixed-m exact search: optimality and state growth",
        paper_claim=(
            "OptResAssignment2 computes an optimal schedule in time "
            "polynomial in n for fixed m"
        ),
        params={"configs": list(configs), "seeds": list(seeds)},
        columns=[
            "m",
            "n",
            "instances",
            "optimal_agreement",
            "max_configs_per_round",
            "total_configs",
        ],
        rows=rows,
        verdict=ok,
    )
