"""THM5: OptResAssignment is optimal for m=2 and runs in O(n^2).

Two parts:

* **optimality**: on random m=2 instances the DP's makespan equals the
  independent brute-force oracle's (and the PQ variant's);
* **scaling**: wall-clock times over an ``n`` sweep fitted to a power
  law; the exponent should be ~2 (the table has n^2 cells and O(1)
  work per cell).
"""

from __future__ import annotations

import math
import time

from ..algorithms.brute_force import brute_force_makespan
from ..algorithms.opt_two import opt_res_assignment, opt_res_assignment_pq
from ..generators.random_instances import uniform_instance
from .runner import ExperimentResult

__all__ = ["run", "fit_exponent"]


def fit_exponent(points: list[tuple[int, float]]) -> float:
    """Least-squares slope of log(time) vs log(n)."""
    xs = [math.log(n) for n, _ in points]
    ys = [math.log(max(t, 1e-9)) for _, t in points]
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    num = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    den = sum((x - mx) ** 2 for x in xs)
    return num / den if den else float("nan")


def run(
    check_sizes: tuple[int, ...] = (2, 3, 4, 5),
    scale_sizes: tuple[int, ...] = (50, 100, 200, 400, 800),
    seeds: tuple[int, ...] = (0, 1, 2),
    repeats: int = 3,
) -> ExperimentResult:
    rows = []
    ok = True

    # Part 1: optimality cross-validation on small instances.
    checked = agreed = 0
    for n in check_sizes:
        for seed in seeds:
            instance = uniform_instance(2, n, seed=seed)
            dp = opt_res_assignment(instance)
            pq = opt_res_assignment_pq(instance)
            bf = brute_force_makespan(instance)
            checked += 1
            if dp.makespan == pq.makespan == bf:
                agreed += 1
    ok = ok and checked == agreed

    # Part 2: runtime scaling.
    points = []
    for n in scale_sizes:
        instance = uniform_instance(2, n, seed=42)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = opt_res_assignment(instance)
            best = min(best, time.perf_counter() - t0)
        points.append((n, best))
        rows.append(
            {
                "n": n,
                "time_s": round(best, 4),
                "cells": result.cells_expanded,
                "makespan": result.makespan,
            }
        )
    exponent = fit_exponent(points)
    # Quadratic table fill: allow slack for constant factors and the
    # Fraction arithmetic, but the growth must be clearly polynomial
    # of low degree (not cubic, not exponential).
    ok = ok and 1.5 <= exponent <= 2.6
    rows.append({"n": "fit", "time_s": f"n^{exponent:.2f}", "cells": "", "makespan": ""})
    return ExperimentResult(
        experiment="THM5",
        title="m=2 exact DP: optimality and O(n^2) scaling",
        paper_claim=(
            "OptResAssignment computes an optimal solution in O(n^2) time"
        ),
        params={
            "check_sizes": list(check_sizes),
            "scale_sizes": list(scale_sizes),
            "seeds": list(seeds),
        },
        columns=["n", "time_s", "cells", "makespan"],
        rows=rows,
        verdict=ok,
        notes=[f"optimality: {agreed}/{checked} instances agree with brute force"],
    )
