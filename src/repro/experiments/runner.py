"""Experiment harness: result containers, table rendering, CSV output.

Every experiment module in this package exposes a ``run(**params)``
returning an :class:`ExperimentResult`: the rows/series the paper's
corresponding figure or theorem reports, plus the paper's claim and
a machine-checkable verdict.  The CLI and the benchmark suite both
consume these.
"""

from __future__ import annotations

import csv
import inspect
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..telemetry import get_session

__all__ = ["ExperimentResult", "Experiment", "format_table", "run_experiment"]


def format_table(columns: list[str], rows: list[dict[str, Any]]) -> str:
    """Render rows as a fixed-width text table."""
    widths = {c: len(c) for c in columns}
    rendered: list[dict[str, str]] = []
    for row in rows:
        out = {}
        for c in columns:
            text = str(row.get(c, ""))
            out[c] = text
            widths[c] = max(widths[c], len(text))
        rendered.append(out)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    sep = "  ".join("-" * widths[c] for c in columns)
    lines = [header, sep]
    for row in rendered:
        lines.append("  ".join(row[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines)


@dataclass(slots=True)
class ExperimentResult:
    """Output of one experiment run.

    Attributes:
        experiment: the DESIGN.md experiment id (e.g. ``"FIG3"``).
        title: human-readable title.
        paper_claim: what the paper asserts (the expected shape).
        params: parameters the run used.
        columns: ordered column names for the table.
        rows: the data rows.
        verdict: True when the measured shape matches the claim (each
            experiment defines its own machine check), None when the
            experiment is purely descriptive.
        notes: free-form remarks (deviations, context).
    """

    experiment: str
    title: str
    paper_claim: str
    params: dict[str, Any]
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    verdict: bool | None = None
    notes: list[str] = field(default_factory=list)

    def to_text(self) -> str:
        head = [
            f"== {self.experiment}: {self.title} ==",
            f"paper claim: {self.paper_claim}",
            f"params: {self.params}",
            "",
            format_table(self.columns, self.rows),
        ]
        if self.verdict is not None:
            head.append("")
            head.append(f"verdict: {'REPRODUCED' if self.verdict else 'MISMATCH'}")
        for note in self.notes:
            head.append(f"note: {note}")
        return "\n".join(head)

    def to_csv(self, path: str | Path) -> None:
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=self.columns, extrasaction="ignore")
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)

    def series(self, x: str, y: str) -> list[tuple[float, float]]:
        """Extract an ``(x, y)`` float series from the rows (for SVG)."""
        return [(float(r[x]), float(r[y])) for r in self.rows if x in r and y in r]


@dataclass(frozen=True, slots=True)
class Experiment:
    """Registry entry: id, description and runner."""

    id: str
    title: str
    run: Callable[..., ExperimentResult]


def run_experiment(
    experiment: Experiment,
    *,
    backend: str | None = None,
    objective: str | None = None,
    **params: Any,
) -> ExperimentResult:
    """Invoke an experiment, forwarding the backend and objective
    choices when the experiment supports them.

    Paper-figure experiments verify exact makespan claims and ignore
    both flags; simulation-scale experiments (e.g. ``SIM``) declare a
    ``backend`` parameter and are dispatched onto the selected engine,
    and objective-parametric experiments declare an ``objective``
    parameter.  Requesting a non-exact backend -- or a non-makespan
    objective -- for an experiment that cannot honor it is an error:
    silently running the default would misreport what was measured.
    """
    signature = inspect.signature(experiment.run).parameters
    accepts = "backend" in signature
    if backend is not None and backend != "exact" and not accepts:
        raise ValueError(
            f"experiment {experiment.id} runs exact arithmetic only and "
            f"does not accept backend={backend!r}"
        )
    if backend is not None and accepts:
        params["backend"] = backend
    accepts_objective = "objective" in signature
    if objective is not None and objective != "makespan" and not accepts_objective:
        raise ValueError(
            f"experiment {experiment.id} verifies makespan claims only "
            f"and does not accept objective={objective!r}"
        )
    if objective is not None and accepts_objective:
        params["objective"] = objective
    session = get_session()
    if session is None:
        return experiment.run(**params)
    with session.tracer.span(
        "experiment.run",
        id=experiment.id,
        backend=backend or "exact",
        objective=objective or "makespan",
    ) as span:
        result = experiment.run(**params)
        span.note(verdict=result.verdict, rows=len(result.rows))
    return result
