"""FIG2: nested vs unnested schedules (Figure 2) and Lemma 1.

Reproduces the two hand-built schedules of Figure 2 and checks their
properties exactly as the caption states: both are non-wasting and
progressive, only 2b is nested.  Then applies the constructive Lemma 1
transformation to the unnested one and reports that nestedness is
restored without losing makespan."""

from __future__ import annotations

from ..core.properties import is_nested, is_non_wasting, is_progressive
from ..core.transforms import make_nice
from ..generators.worst_case import (
    fig2_instance,
    fig2_nested_schedule,
    fig2_unnested_schedule,
)
from .runner import ExperimentResult

__all__ = ["run"]


def run() -> ExperimentResult:
    nested = fig2_nested_schedule()
    unnested = fig2_unnested_schedule()
    repaired = make_nice(unnested)

    def props(s) -> dict:
        return {
            "non_wasting": is_non_wasting(s),
            "progressive": is_progressive(s),
            "nested": is_nested(s),
            "makespan": s.makespan,
        }

    rows = [
        {"schedule": "fig2b (nested)", **props(nested)},
        {"schedule": "fig2c (unnested)", **props(unnested)},
        {"schedule": "fig2c after Lemma 1", **props(repaired)},
    ]
    verdict = (
        rows[0]["non_wasting"] and rows[0]["progressive"] and rows[0]["nested"]
        and rows[1]["non_wasting"] and rows[1]["progressive"] and not rows[1]["nested"]
        and rows[2]["nested"] and rows[2]["makespan"] <= unnested.makespan
    )
    return ExperimentResult(
        experiment="FIG2",
        title="Nested vs unnested schedules and the Lemma 1 repair",
        paper_claim=(
            "both Figure 2 schedules are non-wasting and progressive; "
            "only 2b is nested; Lemma 1 transforms any schedule into a "
            "nested one without increasing the makespan"
        ),
        params={"instance": "fig2"},
        columns=["schedule", "non_wasting", "progressive", "nested", "makespan"],
        rows=rows,
        verdict=verdict,
    )
