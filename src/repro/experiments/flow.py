"""FLOW: weighted flow time under Poisson arrivals (beyond the paper).

The paper optimizes the makespan; *Towards Optimality in Parallel
Scheduling* (Berg et al.) centers mean response/flow time instead.
This experiment sweeps the pluggable objective layer's
``weighted-flow`` objective over steady-state-style workloads: seeded
uniform instances with skewed job weights and Poisson arrival streams
at increasing intensity (the utilization axis), run as
:class:`~repro.backends.batch.BatchRunner` campaigns per policy.

Machine check (the verdict):

* every weighted flow value respects the per-job earliest-completion
  lower bound (``objectives`` ratios >= 1 row by row);
* ``weighted-srpt`` (the flow-tuned policy) achieves a strictly
  smaller mean weighted flow than ``round-robin`` at every arrival
  rate -- the acceptance bar for the policy;
* the selected backend agrees with the exact reference on a sample of
  weighted arrival instances (skipped when already exact).
"""

from __future__ import annotations

from ..algorithms import available_policies, get_policy
from ..backends.batch import BatchRunner, make_campaign_instances
from .runner import ExperimentResult

__all__ = ["run"]

#: Policies compared under the flow objective; weighted-srpt is the
#: tuned one, greedy-finish-jobs its unweighted ancestor.
_POLICIES = (
    "weighted-srpt",
    "greedy-finish-jobs",
    "greedy-balance",
    "round-robin",
)


def run(
    m: int = 5,
    n: int = 5,
    rates: tuple[float, ...] = (0.3, 1.0, 3.0),
    count: int = 8,
    grid: int = 100,
    weights_profile: str = "skewed",
    seed: int = 0,
    backend: str = "vector",
) -> ExperimentResult:
    """Run the weighted-flow policy comparison and check its claims."""
    policies = [
        name for name in _POLICIES if name in available_policies()
    ]
    rows = []
    ok = True
    mean_flow: dict[tuple[float, str], float] = {}
    for rate in rates:
        instances = make_campaign_instances(
            count,
            m,
            n,
            grid=grid,
            seed=seed,
            weights_profile=weights_profile,
            arrival_rate=rate,
        )
        for name in policies:
            result = BatchRunner(
                policy=name,
                backend=backend,
                workers=1,
                objectives=("weighted-flow",),
            ).run(instances)
            summary = result.summary()["objectives"]["weighted-flow"]
            if any(
                row["objectives"]["weighted-flow"]["value"]
                < row["objectives"]["weighted-flow"]["lower_bound"]
                for row in result.rows
            ):
                ok = False
            mean_flow[(rate, name)] = summary["mean_value"]
            rows.append(
                {
                    "rate": rate,
                    "policy": name,
                    "mean_flow": round(summary["mean_value"], 2),
                    "mean_ratio": round(summary["mean_ratio"], 3),
                    "max_ratio": round(summary["max_ratio"], 3),
                }
            )
    for rate in rates:
        if not mean_flow[(rate, "weighted-srpt")] < mean_flow[(rate, "round-robin")]:
            ok = False
    notes = [
        "rate = Poisson arrival intensity (expected queue arrivals per "
        "step); weights follow the "
        f"'{weights_profile}' profile, flow = sum w (C - release)",
    ]
    if backend != "exact":
        from ..backends import cross_validate

        worst = 0.0
        sample = make_campaign_instances(
            3,
            m,
            n,
            grid=grid,
            seed=seed,
            weights_profile=weights_profile,
            arrival_rate=max(rates),
        )
        for instance in sample:
            check = cross_validate(
                instance,
                get_policy("weighted-srpt"),
                objectives=("weighted-flow",),
            )
            worst = max(worst, check.max_objective_error or 0.0)
            if not check.ok:
                ok = False
        notes.append(
            f"exact-vs-vector weighted-flow agreement on sampled arrival "
            f"instances: max rel error {worst:.3g}"
        )
    return ExperimentResult(
        experiment="FLOW",
        title="Weighted flow time under Poisson arrivals",
        paper_claim=(
            "beyond the paper: with the objective layer in place, the "
            "flow-tuned weighted-srpt policy beats round-robin on mean "
            "weighted flow at every arrival rate, and all values respect "
            "the earliest-completion lower bound"
        ),
        params={
            "m": m,
            "n": n,
            "rates": list(rates),
            "count": count,
            "grid": grid,
            "weights_profile": weights_profile,
            "seed": seed,
            "backend": backend,
        },
        columns=["rate", "policy", "mean_flow", "mean_ratio", "max_ratio"],
        rows=rows,
        verdict=ok,
        notes=notes,
    )
