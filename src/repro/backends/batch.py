"""Batch campaign runner: many instances, many workers, one result store.

Related work evaluates bandwidth-contention schedulers over thousands
of randomized instances; :class:`BatchRunner` is that harness.  It
shards a list of instances across ``multiprocessing`` workers (each
worker re-instantiates the policy and backend from their registry
names, so only plain instance data crosses process boundaries),
runs each instance through the selected backend, and aggregates the
per-instance makespans and lower-bound ratios into a
:class:`BatchResult`.

Determinism: results are keyed to the input order (``Pool.map``
preserves it) and every backend is deterministic, so a campaign over
seeded instances produces identical results for any worker count --
the test-suite pins this down.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from ..core.instance import Instance
from ..exceptions import BackendError

__all__ = ["BatchResult", "BatchRunner", "make_campaign_instances"]


def _run_one(payload: tuple) -> dict[str, Any]:
    """Worker entry point (module-level so it pickles under fork/spawn)."""
    from ..algorithms import get_policy
    from ..objectives import get_objective
    from . import get_backend

    (
        instance,
        policy_name,
        backend_name,
        max_steps,
        objective_names,
        sequencer_name,
        sequencer_options,
        compiled,
    ) = payload
    policy = get_policy(policy_name)
    backend = get_backend(backend_name)
    objectives = [get_objective(name) for name in objective_names]
    # The timer starts before sequencing: for local-search the order
    # optimization dominates the row's cost, and "seconds" reports the
    # full price of producing this row.
    t0 = time.perf_counter()
    if sequencer_name is not None:
        from ..sequencing import get_sequencer  # local: builds on core

        instance = (
            get_sequencer(sequencer_name, **sequencer_options)
            .bind(
                policy=policy,
                objective=objectives[0] if len(objectives) == 1 else None,
            )
            .sequence(instance)
        )
    # Only the vector backend knows the compiled tier; other backends
    # keep their exact signature (the runner validates the pairing).
    extra = {"compiled": compiled} if backend_name == "vector" else {}
    result = backend.run(
        instance,
        policy,
        max_steps=max_steps,
        record_shares=False,
        objectives=objectives,
        **extra,
    )
    elapsed = time.perf_counter() - t0
    # Release-aware bound; identical to Observation 1's work bound for
    # static instances (and the per-resource congestion maximum for
    # multi-resource ones), so static campaign rows are unchanged.
    lower = instance.makespan_lower_bound()
    row = {
        "m": instance.num_processors,
        "total_jobs": instance.total_jobs,
        "max_release": instance.max_release,
        "resources": instance.num_resources,
        "makespan": result.makespan,
        "lower_bound": lower,
        "ratio": result.makespan / lower if lower else 1.0,
        "seconds": elapsed,
        "worker": os.getpid(),
    }
    if objectives:
        # One entry per requested objective: online value, the
        # objective's instance certificate, and their guarded ratio.
        # A ratio of inf (zero/negative bound, positive value -- the
        # certificate cannot grade the run) is stored as None so the
        # JSON result store stays RFC 8259 parseable.
        report: dict[str, dict[str, float | None]] = {}
        for objective in objectives:
            value = result.objective_values[objective.name]
            bound = objective.lower_bound(instance)
            ratio = objective.ratio(value, bound)
            report[objective.name] = {
                "value": float(value),
                "lower_bound": float(bound),
                "ratio": ratio if math.isfinite(ratio) else None,
            }
        row["objectives"] = report
    return row


@dataclass(slots=True)
class BatchResult:
    """Aggregated outcome of one campaign.

    Attributes:
        policy: registry name of the policy that ran.
        backend: registry name of the backend that ran.
        workers: worker processes used (1 = in-process serial).
        rows: one dict per instance, in input order (``m``,
            ``total_jobs``, ``makespan``, ``lower_bound``, ``ratio``,
            ``seconds``; campaigns run with objectives add an
            ``objectives`` dict of per-objective
            value/lower_bound/ratio entries).
        objectives: objective registry names evaluated per instance
            (empty = the legacy makespan-only campaign shape).
        sequencer: sequencer registry name applied per instance
            (``None`` = the fixed-order model).
        wall_seconds: end-to-end campaign wall time.
        execution: how the campaign ran -- ``"processes"`` (the
            multiprocessing sharding, the default) or ``"batched"``
            (the in-process batched vector engine).
    """

    policy: str
    backend: str
    workers: int
    rows: list[dict[str, Any]] = field(default_factory=list)
    wall_seconds: float = 0.0
    objectives: tuple[str, ...] = ()
    sequencer: str | None = None
    execution: str = "processes"

    @property
    def makespans(self) -> list[int]:
        """Per-instance makespans, in input order."""
        return [row["makespan"] for row in self.rows]

    @property
    def ratios(self) -> list[float]:
        """Per-instance makespan / lower-bound ratios, in input order."""
        return [row["ratio"] for row in self.rows]

    def objective_values(self, name: str) -> list[float]:
        """Per-instance values of one evaluated objective, in order.

        Raises:
            KeyError: if the campaign did not evaluate *name*.
        """
        return [row["objectives"][name]["value"] for row in self.rows]

    def worker_throughput(self) -> dict[int, dict[str, Any]]:
        """Per-worker task counts and throughput, keyed by worker pid.

        Each row records the pid of the process that produced it; this
        aggregates them into ``{pid: {tasks, seconds,
        tasks_per_second}}`` -- the load-balance view of a campaign
        (one entry total for serial runs).
        """
        per: dict[int, dict[str, Any]] = {}
        for row in self.rows:
            pid = row.get("worker")
            if pid is None:  # rows from an older result store
                continue
            entry = per.setdefault(pid, {"tasks": 0, "seconds": 0.0})
            entry["tasks"] += 1
            entry["seconds"] += row["seconds"]
        for entry in per.values():
            entry["tasks_per_second"] = (
                entry["tasks"] / entry["seconds"]
                if entry["seconds"] > 0
                else None
            )
        return per

    def summary(self) -> dict[str, Any]:
        """Campaign-level aggregates (the numbers a sweep reports).

        Campaigns run with objectives add an ``objectives`` dict with
        mean/max value and ratio aggregates per objective; the legacy
        makespan keys stay unchanged either way.
        """
        count = len(self.rows)
        if not count:
            return {
                "instances": 0,
                "policy": self.policy,
                "backend": self.backend,
                "workers": self.workers,
            }
        ratios = self.ratios
        summary: dict[str, Any] = {
            "instances": count,
            "policy": self.policy,
            "backend": self.backend,
            "workers": self.workers,
            **(
                {"sequencer": self.sequencer}
                if self.sequencer is not None
                else {}
            ),
            # Only batched campaigns record the mode, so legacy
            # multiprocessing result stores keep their exact shape.
            **(
                {"execution": self.execution}
                if self.execution != "processes"
                else {}
            ),
            "mean_makespan": sum(self.makespans) / count,
            "mean_ratio": sum(ratios) / count,
            "max_ratio": max(ratios),
            "total_steps": sum(self.makespans),
            "wall_seconds": self.wall_seconds,
            "steps_per_second": (
                sum(self.makespans) / self.wall_seconds
                if self.wall_seconds > 0
                else None
            ),
        }
        throughput = self.worker_throughput()
        if throughput:
            summary["workers_used"] = len(throughput)
            summary["worker_throughput"] = {
                str(pid): entry for pid, entry in sorted(throughput.items())
            }
        if self.objectives:
            per_objective: dict[str, Any] = {}
            for name in self.objectives:
                values = self.objective_values(name)
                # None = the certificate could not grade the run (see
                # _run_one); aggregate over the graded rows only, and
                # report None when no row was gradeable.
                graded = [
                    row["objectives"][name]["ratio"]
                    for row in self.rows
                    if row["objectives"][name]["ratio"] is not None
                ]
                per_objective[name] = {
                    "mean_value": sum(values) / count,
                    "max_value": max(values),
                    "mean_ratio": sum(graded) / len(graded) if graded else None,
                    "max_ratio": max(graded) if graded else None,
                    "graded": len(graded),
                }
            summary["objectives"] = per_objective
        return summary

    def to_json(self, path: str | Path) -> None:
        """Persist summary + rows as JSON (the campaign result store)."""
        Path(path).write_text(
            json.dumps(
                {"summary": self.summary(), "rows": self.rows}, indent=2
            )
            + "\n"
        )


class BatchRunner:
    """Run one policy/backend combination over a list of instances.

    Args:
        policy: registry name (see
            :func:`repro.algorithms.available_policies`).
        backend: registry name (see
            :func:`repro.backends.available_backends`).
        workers: worker processes; ``None`` picks ``min(cpu, 8)``,
            ``0``/``1`` runs serially in-process (no multiprocessing
            -- useful under restricted environments and for
            determinism baselines).
        max_steps: per-instance safety limit forwarded to the backend.
        objectives: objective registry names to evaluate online on
            every instance (see
            :func:`repro.objectives.available_objectives`); empty (the
            default) keeps the legacy makespan-only campaign shape
            bit-identical.
        sequencer: optional sequencer registry name (see
            :func:`repro.sequencing.available_sequencers`) applied to
            every instance inside the worker before the run -- the
            queue-order decision axis.  ``None`` (the default) keeps
            the instances' fixed order bit-identical.
        sequencer_options: keyword options for the sequencer factory
            (e.g. ``{"budget": 500}`` for ``"local-search"``); must be
            picklable, like the rest of the payload.
        execution: ``"processes"`` (the default) shards instances
            across multiprocessing workers; ``"batched"`` runs the
            whole campaign in-process through the batched vector
            engine (:func:`repro.backends.batched.run_batch`),
            stepping up to *batch_lanes* instances per array program
            -- no pickling, no process pool, same rows.  Batched
            execution requires the ``"vector"`` backend and an
            array-capable policy.
        batch_lanes: instances stepped together per batched kernel
            call under ``execution="batched"`` (default 64).
        compiled: compiled-tier mode forwarded to the vector paths
            (``"auto"``/``"on"``/``"off"`` or a boolean, see
            :mod:`repro.kernels`).  ``"on"`` requires the ``"vector"``
            backend; other backends ignore the setting under
            ``"auto"``/``"off"``.
    """

    def __init__(
        self,
        policy: str = "greedy-balance",
        backend: str = "vector",
        *,
        workers: int | None = None,
        max_steps: int | None = None,
        objectives: Iterable[str] = (),
        sequencer: str | None = None,
        sequencer_options: dict[str, Any] | None = None,
        execution: str = "processes",
        batch_lanes: int = 64,
        compiled: str | bool = "auto",
    ) -> None:
        # Fail fast on unknown names (workers resolve them again).
        from ..algorithms import get_policy
        from ..kernels import normalize_compiled
        from ..objectives import get_objective
        from . import get_backend

        resolved_policy = get_policy(policy)
        get_backend(backend)
        compiled = normalize_compiled(compiled)
        if compiled == "on" and backend != "vector":
            raise BackendError(
                "compiled='on' requires the 'vector' backend, "
                f"got {backend!r}"
            )
        if execution not in ("processes", "batched"):
            raise BackendError(
                f"unknown execution mode {execution!r}; "
                "available: ['batched', 'processes']"
            )
        if batch_lanes < 1:
            raise BackendError(
                f"batch_lanes must be >= 1, got {batch_lanes}"
            )
        if execution == "batched":
            if backend != "vector":
                raise BackendError(
                    "batched execution requires the 'vector' backend, "
                    f"got {backend!r}"
                )
            if not (
                resolved_policy.supports_batch
                or resolved_policy.supports_vector
            ):
                raise BackendError(
                    f"policy {policy!r} has no array path "
                    "(neither shares_batch nor shares_array); "
                    "batched execution cannot run it"
                )
        objectives = tuple(objectives)
        for name in objectives:
            get_objective(name)
        sequencer_options = dict(sequencer_options or {})
        if sequencer is not None:
            from ..sequencing import get_sequencer

            get_sequencer(sequencer, **sequencer_options)
        if workers is None:
            workers = min(os.cpu_count() or 1, 8)
        self.policy = policy
        self.backend = backend
        self.workers = max(1, int(workers))
        self.max_steps = max_steps
        self.objectives = objectives
        self.sequencer = sequencer
        self.sequencer_options = sequencer_options
        self.execution = execution
        self.batch_lanes = int(batch_lanes)
        self.compiled = compiled

    def run(self, instances: Iterable[Instance]) -> BatchResult:
        """Execute the campaign; rows come back in input order.

        Under an installed telemetry session the campaign is wrapped
        in a ``batch.campaign`` span and fills campaign metrics
        (``batch.instances``, the ``batch.task_seconds`` latency
        histogram, per-worker ``batch.worker_tasks`` counters).
        Worker processes run uninstrumented -- only plain row dicts
        cross the process boundary, so telemetry never affects
        campaign results.
        """
        from ..telemetry import get_session  # local: keep worker imports lean

        t0 = time.perf_counter()
        if self.execution == "batched":
            rows = self._run_batched(list(instances))
            workers = 1
        else:
            payloads = [
                (
                    inst,
                    self.policy,
                    self.backend,
                    self.max_steps,
                    self.objectives,
                    self.sequencer,
                    self.sequencer_options,
                    self.compiled,
                )
                for inst in instances
            ]
            workers = self.workers
            if self.workers == 1 or len(payloads) <= 1:
                rows = [_run_one(p) for p in payloads]
            else:
                # Platform-default start method: fork on Linux, spawn on
                # macOS/Windows (the worker and payloads are picklable
                # either way).
                ctx = multiprocessing.get_context()
                chunk = max(1, len(payloads) // (self.workers * 4))
                with ctx.Pool(processes=self.workers) as pool:
                    rows = pool.map(_run_one, payloads, chunksize=chunk)
        result = BatchResult(
            policy=self.policy,
            backend=self.backend,
            workers=workers,
            rows=rows,
            wall_seconds=time.perf_counter() - t0,
            objectives=self.objectives,
            sequencer=self.sequencer,
            execution=self.execution,
        )
        session = get_session()
        if session is not None:
            self._record_telemetry(session, result, start=t0)
        return result

    def _run_batched(self, instances: list[Instance]) -> list[dict[str, Any]]:
        """In-process campaign through the batched vector engine.

        Sequencing (when configured) still runs instance by instance
        -- the search itself may use batched evaluation internally via
        its ``batch_lanes`` option -- then the (re)ordered instances
        are stepped through :func:`repro.backends.batched.run_batch`
        in chunks of :attr:`batch_lanes` lanes.  Rows carry the same
        keys as the multiprocessing path; ``seconds`` charges each row
        its sequencing time plus an equal share of its chunk's kernel
        wall time.
        """
        from ..algorithms import get_policy
        from ..objectives import get_objective
        from .batched import run_batch

        policy = get_policy(self.policy)
        objectives = [get_objective(name) for name in self.objectives]
        seq_seconds = [0.0] * len(instances)
        if self.sequencer is not None:
            from ..sequencing import get_sequencer  # local: builds on core

            seq = get_sequencer(self.sequencer, **self.sequencer_options).bind(
                policy=policy,
                objective=objectives[0] if len(objectives) == 1 else None,
            )
            ordered: list[Instance] = []
            for i, inst in enumerate(instances):
                t0 = time.perf_counter()
                ordered.append(seq.sequence(inst))
                seq_seconds[i] = time.perf_counter() - t0
            instances = ordered
        rows: list[dict[str, Any]] = []
        pid = os.getpid()
        lanes = self.batch_lanes
        for start in range(0, len(instances), lanes):
            chunk = instances[start : start + lanes]
            t0 = time.perf_counter()
            result = run_batch(
                chunk,
                policy,
                objectives=objectives,
                max_steps=self.max_steps,
                compiled=self.compiled,
            )
            per_lane = (time.perf_counter() - t0) / len(chunk)
            for b, inst in enumerate(chunk):
                lower = inst.makespan_lower_bound()
                makespan = int(result.makespans[b])
                row: dict[str, Any] = {
                    "m": inst.num_processors,
                    "total_jobs": inst.total_jobs,
                    "max_release": inst.max_release,
                    "resources": inst.num_resources,
                    "makespan": makespan,
                    "lower_bound": lower,
                    "ratio": makespan / lower if lower else 1.0,
                    "seconds": seq_seconds[start + b] + per_lane,
                    "worker": pid,
                }
                if objectives:
                    report: dict[str, dict[str, float | None]] = {}
                    for objective in objectives:
                        value = result.objective_values[objective.name][b]
                        bound = objective.lower_bound(inst)
                        ratio = objective.ratio(value, bound)
                        report[objective.name] = {
                            "value": float(value),
                            "lower_bound": float(bound),
                            "ratio": ratio if math.isfinite(ratio) else None,
                        }
                    row["objectives"] = report
                rows.append(row)
        return rows

    def _record_telemetry(
        self, session, result: BatchResult, *, start: float
    ) -> None:
        """Emit the campaign span and metrics for one finished run."""
        metrics = session.metrics
        metrics.counter("batch.instances").inc(len(result.rows))
        task_hist = metrics.histogram(
            "batch.task_seconds", policy=self.policy, backend=self.backend
        )
        for row in result.rows:
            task_hist.observe(row["seconds"])
        for pid, entry in result.worker_throughput().items():
            metrics.counter("batch.worker_tasks", worker=str(pid)).inc(
                entry["tasks"]
            )
        if result.wall_seconds > 0:
            metrics.gauge("batch.tasks_per_second").set(
                len(result.rows) / result.wall_seconds
            )
        session.tracer.complete(
            "batch.campaign",
            start,
            result.wall_seconds,
            policy=self.policy,
            backend=self.backend,
            workers=self.workers,
            instances=len(result.rows),
            sequencer=self.sequencer,
        )


#: Offset decorrelating the arrival-sampler seeds from the requirement
#: seeds (both streams are plain ``random.Random``; reusing ``seed+k``
#: for both would couple release times to the first requirement draws).
_ARRIVAL_SEED_OFFSET = 0x5F3759DF

#: Same idea for the extra-resource sampler (a third independent
#: stream, so multi-resource profiles decouple from both the
#: requirements and the arrival times).
_RESOURCE_SEED_OFFSET = 0x9E3779B9

#: Fourth and fifth independent streams for the objective annotations
#: (weights and deadlines), decorrelated from requirements, arrivals,
#: and resources.
_WEIGHT_SEED_OFFSET = 0x2545F491
_DEADLINE_SEED_OFFSET = 0x6C62272E


def make_campaign_instances(
    count: int,
    m: int,
    n: int,
    *,
    family: str = "uniform",
    grid: int = 100,
    seed: int = 0,
    max_release: int = 0,
    arrival_seed: int | None = None,
    arrival_rate: float | None = None,
    resources: int = 1,
    resource_profile: str = "independent",
    resource_seed: int | None = None,
    weights_profile: str = "unit",
    max_weight: int = 10,
    weight_seed: int | None = None,
    deadline_profile: str | None = None,
    deadline_seed: int | None = None,
) -> list[Instance]:
    """Deterministic list of seeded random instances for a campaign.

    Instance ``k`` uses seed ``seed + k``, so a campaign is fully
    reproducible from its keyword tuple.  With ``max_release > 0``
    every instance receives staggered per-processor release times (the
    online-arrival scenario axis) sampled from
    ``(arrival_seed or seed) + k`` on a decorrelated stream; 0 keeps
    the static model bit-identical to earlier campaigns.  With
    ``arrival_rate`` set, release times instead come from a Poisson
    arrival process at that intensity
    (:func:`repro.generators.poisson_arrivals` -- the steady-state
    utilization axis the FLOW experiment sweeps); ``max_release`` is
    then ignored.  With ``resources > 1`` every instance is lifted to
    that many shared resources (:func:`repro.generators.with_resources`
    with *resource_profile*) on a third decorrelated stream; 1 keeps
    the single-resource model bit-identical.  ``weights_profile`` and
    ``deadline_profile`` attach objective annotations
    (:func:`repro.generators.with_weights` /
    :func:`repro.generators.with_deadlines`) on two further
    decorrelated streams; the defaults (``"unit"`` / ``None``) keep
    the unannotated model bit-identical.
    """
    from ..generators import random_instances as gen

    families = {
        "uniform": lambda s: gen.uniform_instance(m, n, grid=grid, seed=s),
        "bimodal": lambda s: gen.bimodal_instance(m, n, grid=grid, seed=s),
        "heavy-tail": lambda s: gen.heavy_tail_instance(m, n, grid=grid, seed=s),
        "general": lambda s: gen.general_size_instance(m, n, grid=grid, seed=s),
        # A flat job bag dealt round-robin: the neutral baseline the
        # sequencing axis (BatchRunner(sequencer=...)) improves on.
        "bag": lambda s: gen.bag_instance(m, n, grid=grid, seed=s),
    }
    try:
        build = families[family]
    except KeyError:
        raise ValueError(
            f"unknown family {family!r}; available: {sorted(families)}"
        ) from None
    instances = [build(seed + k) for k in range(count)]
    if resources > 1:
        base = seed if resource_seed is None else resource_seed
        instances = [
            gen.with_resources(
                inst,
                resources,
                profile=resource_profile,
                grid=grid,
                seed=base + k + _RESOURCE_SEED_OFFSET,
            )
            for k, inst in enumerate(instances)
        ]
    if weights_profile != "unit":
        base = seed if weight_seed is None else weight_seed
        instances = [
            gen.with_weights(
                inst,
                profile=weights_profile,
                max_weight=max_weight,
                seed=base + k + _WEIGHT_SEED_OFFSET,
            )
            for k, inst in enumerate(instances)
        ]
    if arrival_rate is not None:
        base = seed if arrival_seed is None else arrival_seed
        instances = [
            gen.with_poisson_arrivals(
                inst, rate=arrival_rate, seed=base + k + _ARRIVAL_SEED_OFFSET
            )
            for k, inst in enumerate(instances)
        ]
    elif max_release > 0:
        base = seed if arrival_seed is None else arrival_seed
        instances = [
            gen.with_arrivals(
                inst,
                max_release=max_release,
                seed=base + k + _ARRIVAL_SEED_OFFSET,
            )
            for k, inst in enumerate(instances)
        ]
    # Deadlines come last: the tightness profiles are drawn relative to
    # earliest completion times, which must already include releases.
    if deadline_profile is not None:
        base = seed if deadline_seed is None else deadline_seed
        instances = [
            gen.with_deadlines(
                inst,
                profile=deadline_profile,
                seed=base + k + _DEADLINE_SEED_OFFSET,
            )
            for k, inst in enumerate(instances)
        ]
    return instances
