"""Batch campaign runner: many instances, many workers, one result store.

Related work evaluates bandwidth-contention schedulers over thousands
of randomized instances; :class:`BatchRunner` is that harness.  It
shards a list of instances across ``multiprocessing`` workers (each
worker re-instantiates the policy and backend from their registry
names, so only plain instance data crosses process boundaries),
runs each instance through the selected backend, and aggregates the
per-instance makespans and lower-bound ratios into a
:class:`BatchResult`.

Determinism: results are keyed to the input order (``Pool.map``
preserves it) and every backend is deterministic, so a campaign over
seeded instances produces identical results for any worker count --
the test-suite pins this down.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from ..core.instance import Instance

__all__ = ["BatchResult", "BatchRunner", "make_campaign_instances"]


def _run_one(payload: tuple) -> dict[str, Any]:
    """Worker entry point (module-level so it pickles under fork/spawn)."""
    from ..algorithms import get_policy
    from . import get_backend

    instance, policy_name, backend_name, max_steps = payload
    policy = get_policy(policy_name)
    backend = get_backend(backend_name)
    t0 = time.perf_counter()
    result = backend.run(
        instance, policy, max_steps=max_steps, record_shares=False
    )
    elapsed = time.perf_counter() - t0
    # Release-aware bound; identical to Observation 1's work bound for
    # static instances (and the per-resource congestion maximum for
    # multi-resource ones), so static campaign rows are unchanged.
    lower = instance.makespan_lower_bound()
    return {
        "m": instance.num_processors,
        "total_jobs": instance.total_jobs,
        "max_release": instance.max_release,
        "resources": instance.num_resources,
        "makespan": result.makespan,
        "lower_bound": lower,
        "ratio": result.makespan / lower if lower else 1.0,
        "seconds": elapsed,
    }


@dataclass(slots=True)
class BatchResult:
    """Aggregated outcome of one campaign.

    Attributes:
        policy: registry name of the policy that ran.
        backend: registry name of the backend that ran.
        workers: worker processes used (1 = in-process serial).
        rows: one dict per instance, in input order (``m``,
            ``total_jobs``, ``makespan``, ``lower_bound``, ``ratio``,
            ``seconds``).
        wall_seconds: end-to-end campaign wall time.
    """

    policy: str
    backend: str
    workers: int
    rows: list[dict[str, Any]] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def makespans(self) -> list[int]:
        """Per-instance makespans, in input order."""
        return [row["makespan"] for row in self.rows]

    @property
    def ratios(self) -> list[float]:
        """Per-instance makespan / lower-bound ratios, in input order."""
        return [row["ratio"] for row in self.rows]

    def summary(self) -> dict[str, Any]:
        """Campaign-level aggregates (the numbers a sweep reports)."""
        count = len(self.rows)
        if not count:
            return {
                "instances": 0,
                "policy": self.policy,
                "backend": self.backend,
                "workers": self.workers,
            }
        ratios = self.ratios
        return {
            "instances": count,
            "policy": self.policy,
            "backend": self.backend,
            "workers": self.workers,
            "mean_makespan": sum(self.makespans) / count,
            "mean_ratio": sum(ratios) / count,
            "max_ratio": max(ratios),
            "total_steps": sum(self.makespans),
            "wall_seconds": self.wall_seconds,
            "steps_per_second": (
                sum(self.makespans) / self.wall_seconds
                if self.wall_seconds > 0
                else None
            ),
        }

    def to_json(self, path: str | Path) -> None:
        """Persist summary + rows as JSON (the campaign result store)."""
        Path(path).write_text(
            json.dumps(
                {"summary": self.summary(), "rows": self.rows}, indent=2
            )
            + "\n"
        )


class BatchRunner:
    """Run one policy/backend combination over a list of instances.

    Args:
        policy: registry name (see
            :func:`repro.algorithms.available_policies`).
        backend: registry name (see
            :func:`repro.backends.available_backends`).
        workers: worker processes; ``None`` picks ``min(cpu, 8)``,
            ``0``/``1`` runs serially in-process (no multiprocessing
            -- useful under restricted environments and for
            determinism baselines).
        max_steps: per-instance safety limit forwarded to the backend.
    """

    def __init__(
        self,
        policy: str = "greedy-balance",
        backend: str = "vector",
        *,
        workers: int | None = None,
        max_steps: int | None = None,
    ) -> None:
        # Fail fast on unknown names (workers resolve them again).
        from ..algorithms import get_policy
        from . import get_backend

        get_policy(policy)
        get_backend(backend)
        if workers is None:
            workers = min(os.cpu_count() or 1, 8)
        self.policy = policy
        self.backend = backend
        self.workers = max(1, int(workers))
        self.max_steps = max_steps

    def run(self, instances: Iterable[Instance]) -> BatchResult:
        """Execute the campaign; rows come back in input order."""
        payloads = [
            (inst, self.policy, self.backend, self.max_steps)
            for inst in instances
        ]
        t0 = time.perf_counter()
        if self.workers == 1 or len(payloads) <= 1:
            rows = [_run_one(p) for p in payloads]
        else:
            # Platform-default start method: fork on Linux, spawn on
            # macOS/Windows (the worker and payloads are picklable
            # either way).
            ctx = multiprocessing.get_context()
            chunk = max(1, len(payloads) // (self.workers * 4))
            with ctx.Pool(processes=self.workers) as pool:
                rows = pool.map(_run_one, payloads, chunksize=chunk)
        return BatchResult(
            policy=self.policy,
            backend=self.backend,
            workers=self.workers,
            rows=rows,
            wall_seconds=time.perf_counter() - t0,
        )


#: Offset decorrelating the arrival-sampler seeds from the requirement
#: seeds (both streams are plain ``random.Random``; reusing ``seed+k``
#: for both would couple release times to the first requirement draws).
_ARRIVAL_SEED_OFFSET = 0x5F3759DF

#: Same idea for the extra-resource sampler (a third independent
#: stream, so multi-resource profiles decouple from both the
#: requirements and the arrival times).
_RESOURCE_SEED_OFFSET = 0x9E3779B9


def make_campaign_instances(
    count: int,
    m: int,
    n: int,
    *,
    family: str = "uniform",
    grid: int = 100,
    seed: int = 0,
    max_release: int = 0,
    arrival_seed: int | None = None,
    resources: int = 1,
    resource_profile: str = "independent",
    resource_seed: int | None = None,
) -> list[Instance]:
    """Deterministic list of seeded random instances for a campaign.

    Instance ``k`` uses seed ``seed + k``, so a campaign is fully
    reproducible from ``(family, count, m, n, grid, seed,
    max_release, arrival_seed, resources, resource_profile,
    resource_seed)``.  With ``max_release > 0`` every instance
    receives staggered per-processor release times (the online-arrival
    scenario axis) sampled from ``(arrival_seed or seed) + k`` on a
    decorrelated stream; 0 keeps the static model bit-identical to
    earlier campaigns.  With ``resources > 1`` every instance is
    lifted to that many shared resources
    (:func:`repro.generators.with_resources` with *resource_profile*)
    on a third decorrelated stream; 1 keeps the single-resource model
    bit-identical.
    """
    from ..generators import random_instances as gen

    families = {
        "uniform": lambda s: gen.uniform_instance(m, n, grid=grid, seed=s),
        "bimodal": lambda s: gen.bimodal_instance(m, n, grid=grid, seed=s),
        "heavy-tail": lambda s: gen.heavy_tail_instance(m, n, grid=grid, seed=s),
        "general": lambda s: gen.general_size_instance(m, n, grid=grid, seed=s),
    }
    try:
        build = families[family]
    except KeyError:
        raise ValueError(
            f"unknown family {family!r}; available: {sorted(families)}"
        ) from None
    instances = [build(seed + k) for k in range(count)]
    if resources > 1:
        base = seed if resource_seed is None else resource_seed
        instances = [
            gen.with_resources(
                inst,
                resources,
                profile=resource_profile,
                grid=grid,
                seed=base + k + _RESOURCE_SEED_OFFSET,
            )
            for k, inst in enumerate(instances)
        ]
    if max_release > 0:
        base = seed if arrival_seed is None else arrival_seed
        instances = [
            gen.with_arrivals(
                inst,
                max_release=max_release,
                seed=base + k + _ARRIVAL_SEED_OFFSET,
            )
            for k, inst in enumerate(instances)
        ]
    return instances
