"""Vectorized float64 backend (NumPy).

The exact simulator pays for its correctness guarantees with
``Fraction`` arithmetic: every share, comparison, and subtraction
allocates and normalizes big-int pairs, which caps throughput far
below what large-``m`` campaigns need.  This backend implements the
*same* step semantics (Section 3.1 / Eq. (1)-(2)) on flat NumPy
arrays, as a :class:`VectorRuntime` plugged into the unified stepping
kernel (:func:`repro.core.kernel.run_kernel`):

* remaining work, active-job requirements, and share vectors are
  float64 arrays of length ``m``;
* water-filling policies produce a whole share vector with one
  ``argsort`` + ``cumsum`` + ``clip`` (no Python loop over
  processors, see :func:`repro.algorithms.base.water_fill_array`);
* completion tests are *tolerance-aware*: a job finishes when its
  remaining work drops to ``<= tol`` (default ``1e-9``), absorbing
  float rounding without changing which step a job completes in for
  any instance whose requirement grid is coarser than the tolerance;
* processors with non-zero release times stay masked (zero remaining
  work and requirement) until their release step, so water-filling
  policies skip them for free.

The float path is validated, not trusted: the cross-validation suite
(``tests/backends``) checks makespan and per-step shares against
:class:`~repro.backends.exact.ExactBackend` on hundreds of random
instances (static and arrival), and
:func:`repro.analysis.verification.verify_share_rows` re-executes
float rows independently with the same tolerance.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import Instance
from ..core.kernel import (
    CompletionRecorder,
    KernelRuntime,
    ShareRecorder,
    StepEvent,
    run_kernel,
)
from ..exceptions import (
    InfeasibleAssignmentError,
    VectorizationUnsupportedError,
)
from .base import Backend, BackendResult

__all__ = ["VectorState", "VectorRuntime", "VectorBackend"]


class VectorState:
    """Float64 view of the execution state, consumed by
    ``Policy.shares_array``.

    Mirrors the read API of :class:`~repro.core.state.ExecState` in
    array form; policies must treat every array as read-only (the
    backend owns the mutation).

    Attributes:
        instance: the originating instance.
        t: 0-based current step.
        num_jobs: per processor, total job count (``n_i``).
        done: per processor, completed job count (``j_i(t)``).
        remaining: per processor, remaining work of the active job
            (0.0 once the processor has finished everything, and 0.0
            *before* a processor's release time -- unreleased work is
            invisible to policies).
        active_requirements: per processor, the requirement ``r_ij`` of
            the active job (0.0 once finished or before release) -- the
            speed cap of Eq. (1).
    """

    __slots__ = (
        "instance",
        "t",
        "num_jobs",
        "done",
        "remaining",
        "active_requirements",
        "_req",
        "_work",
        "_release",
        "_released",
        "_all_released",
    )

    def __init__(self, instance: Instance) -> None:
        m = instance.num_processors
        nmax = instance.max_jobs
        self.instance = instance
        self.t = 0
        self.num_jobs = np.array(
            [instance.num_jobs(i) for i in range(m)], dtype=np.int64
        )
        self.done = np.zeros(m, dtype=np.int64)
        # Requirements / work padded to a rectangle; the padding is
        # never read (done is bounded by num_jobs).
        self._req = np.zeros((m, nmax), dtype=np.float64)
        self._work = np.zeros((m, nmax), dtype=np.float64)
        for i, queue in enumerate(instance.queues):
            for j, job in enumerate(queue):
                self._req[i, j] = float(job.requirement)
                self._work[i, j] = float(job.work)
        self._release = np.array(instance.releases, dtype=np.int64)
        self._released = self._release <= 0
        self._all_released = bool(self._released.all())
        # Unreleased processors are masked to zero until they arrive.
        self.remaining = np.where(self._released, self._work[:, 0], 0.0)
        self.active_requirements = np.where(
            self._released, self._req[:, 0], 0.0
        )

    @property
    def num_processors(self) -> int:
        return int(self.num_jobs.shape[0])

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean mask of released processors with unfinished jobs."""
        if self._all_released:
            return self.done < self.num_jobs
        return self._released & (self.done < self.num_jobs)

    @property
    def pending_mask(self) -> np.ndarray:
        """Boolean mask of processors with unfinished jobs, released or
        not (arrival-aware policies reason about future work too)."""
        return self.done < self.num_jobs

    @property
    def released_mask(self) -> np.ndarray:
        """Boolean mask of processors whose release time has arrived."""
        return self._released.copy()

    @property
    def jobs_remaining(self) -> np.ndarray:
        """``n_i(t)`` for every processor, as an int64 array."""
        return self.num_jobs - self.done

    @property
    def all_done(self) -> bool:
        return bool((self.done >= self.num_jobs).all())

    @property
    def waiting(self) -> bool:
        """True iff some processor has not been released yet (its jobs
        are pending by construction)."""
        return not self._all_released

    def begin_step(self) -> None:
        """Unmask processors whose release time has arrived."""
        if self._all_released:
            return
        newly = ~self._released & (self._release <= self.t)
        if newly.any():
            idx = np.flatnonzero(newly)
            self.remaining[idx] = self._work[idx, self.done[idx]]
            self.active_requirements[idx] = self._req[idx, self.done[idx]]
            self._released |= newly
            self._all_released = bool(self._released.all())

    def advance(self, finished: np.ndarray) -> None:
        """Complete the active job on every processor in *finished*
        (an index array) and load the successor job."""
        self.done[finished] += 1
        has_next = finished[self.done[finished] < self.num_jobs[finished]]
        self.remaining[has_next] = self._work[has_next, self.done[has_next]]
        self.active_requirements[has_next] = self._req[
            has_next, self.done[has_next]
        ]
        exhausted = finished[self.done[finished] >= self.num_jobs[finished]]
        self.remaining[exhausted] = 0.0
        self.active_requirements[exhausted] = 0.0


class VectorRuntime(KernelRuntime):
    """Float64 arithmetic adapter over :class:`VectorState`.

    Args:
        instance: the CRSharing instance.
        tol: completion / feasibility tolerance (see
            :class:`VectorBackend`).
    """

    __slots__ = ("instance", "state", "tol", "_m")

    def __init__(self, instance: Instance, *, tol: float = 1e-9) -> None:
        self.instance = instance
        self.state = VectorState(instance)
        self.tol = float(tol)
        self._m = instance.num_processors

    @property
    def t(self) -> int:
        return self.state.t

    @property
    def all_done(self) -> bool:
        return self.state.all_done

    @property
    def waiting(self) -> bool:
        return self.state.waiting

    def begin_step(self) -> None:
        self.state.begin_step()

    def query(self, policy) -> np.ndarray:
        return np.asarray(policy.shares_array(self.state), dtype=np.float64)

    def check(self, shares: np.ndarray) -> None:
        tol = self.tol
        t = self.state.t
        if shares.shape != (self._m,):
            raise InfeasibleAssignmentError(
                f"policy returned shape {shares.shape} shares for "
                f"{self._m} processors at step {t}"
            )
        if (shares < -tol).any() or (shares > 1.0 + tol).any():
            raise InfeasibleAssignmentError(
                f"step {t}: share outside [0, 1] "
                f"(min={shares.min()}, max={shares.max()})"
            )
        total = float(shares.sum())
        if total > 1.0 + tol:
            raise InfeasibleAssignmentError(
                f"step {t}: resource overused (sum of shares = "
                f"{total} > 1)"
            )

    def apply(self, shares: np.ndarray) -> StepEvent:
        state = self.state
        tol = self.tol
        had_work = state.active_mask
        # Eq. (1)/(2): the requirement caps useful speed; a job cannot
        # absorb more than its remaining work in one step.
        speed = np.minimum(shares, state.active_requirements)
        work = np.minimum(speed, state.remaining)
        np.maximum(work, 0.0, out=work)
        state.remaining -= work
        finished = np.flatnonzero(had_work & (state.remaining <= tol))
        completed: tuple[tuple[int, int], ...] = ()
        if finished.size:
            completed = tuple(
                (int(i), int(state.done[i])) for i in finished
            )
            state.advance(finished)
        progressed = bool(finished.size) or float(work.sum()) > tol
        t = state.t
        state.t += 1
        return StepEvent(
            t=t,
            shares=shares,
            processed=work,
            completed=completed,
            had_work=had_work,
            progressed=progressed,
        )

    def describe_progress(self) -> str:
        return f"vector backend, done={self.state.done.tolist()}"


class VectorBackend(Backend):
    """NumPy float64 execution engine (a kernel configuration).

    Args:
        tol: completion / feasibility tolerance.  A job is complete
            when its remaining work is ``<= tol``; shares may exceed
            the exact bounds by up to ``tol`` before the backend calls
            them infeasible.  Must be far below the instance's
            requirement grid (the default ``1e-9`` is safe for grids
            down to ``1e-6``).
    """

    name = "vector"

    def __init__(self, *, tol: float = 1e-9) -> None:
        if tol <= 0:
            raise ValueError("tol must be positive")
        self.tol = float(tol)

    def make_runtime(self, instance: Instance, policy) -> VectorRuntime:
        """The kernel runtime this backend contributes (shared with
        :class:`~repro.simulation.engine.ManyCoreEngine`)."""
        if not getattr(policy, "supports_vector", False):
            raise VectorizationUnsupportedError(
                f"policy {getattr(policy, 'name', policy)!r} does not "
                "implement shares_array; use backend='exact'"
            )
        return VectorRuntime(instance, tol=self.tol)

    def run(
        self,
        instance: Instance,
        policy,
        *,
        max_steps: int | None = None,
        record_shares: bool = True,
        stall_limit: int = 3,
    ) -> BackendResult:
        runtime = self.make_runtime(instance, policy)
        completions = CompletionRecorder()
        observers: list = [completions]
        recorder: ShareRecorder | None = None
        if record_shares:
            recorder = ShareRecorder()
            observers.append(recorder)
        makespan = run_kernel(
            runtime,
            policy,
            observers,
            max_steps=max_steps,
            stall_limit=stall_limit,
        )
        return BackendResult(
            backend=self.name,
            makespan=makespan,
            shares=np.array(recorder.shares) if recorder is not None else None,
            processed=(
                np.array(recorder.processed) if recorder is not None else None
            ),
            completion_steps=completions.completion_steps,
        )
