"""Vectorized float64 backend (NumPy).

The exact simulator pays for its correctness guarantees with
``Fraction`` arithmetic: every share, comparison, and subtraction
allocates and normalizes big-int pairs, which caps throughput far
below what large-``m`` campaigns need.  This backend re-implements the
*same* step semantics (Section 3.1 / Eq. (1)-(2)) on flat NumPy
arrays:

* remaining work, active-job requirements, and share vectors are
  float64 arrays of length ``m``;
* water-filling policies produce a whole share vector with one
  ``argsort`` + ``cumsum`` + ``clip`` (no Python loop over
  processors, see :func:`repro.algorithms.base.water_fill_array`);
* completion tests are *tolerance-aware*: a job finishes when its
  remaining work drops to ``<= tol`` (default ``1e-9``), absorbing
  float rounding without changing which step a job completes in for
  any instance whose requirement grid is coarser than the tolerance.

The float path is validated, not trusted: the cross-validation suite
(``tests/backends``) checks makespan and per-step shares against
:class:`~repro.backends.exact.ExactBackend` on hundreds of random
instances, and :func:`repro.analysis.verification.verify_share_rows`
re-executes float rows independently with the same tolerance.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import Instance
from ..core.simulator import default_step_limit
from ..exceptions import (
    InfeasibleAssignmentError,
    SimulationLimitError,
    VectorizationUnsupportedError,
)
from .base import Backend, BackendResult

__all__ = ["VectorState", "VectorBackend"]


class VectorState:
    """Float64 view of the execution state, consumed by
    ``Policy.shares_array``.

    Mirrors the read API of :class:`~repro.core.state.ExecState` in
    array form; policies must treat every array as read-only (the
    backend owns the mutation).

    Attributes:
        instance: the originating instance.
        t: 0-based current step.
        num_jobs: per processor, total job count (``n_i``).
        done: per processor, completed job count (``j_i(t)``).
        remaining: per processor, remaining work of the active job
            (0.0 once the processor has finished everything).
        active_requirements: per processor, the requirement ``r_ij`` of
            the active job (0.0 once finished) -- the speed cap of
            Eq. (1).
    """

    __slots__ = (
        "instance",
        "t",
        "num_jobs",
        "done",
        "remaining",
        "active_requirements",
        "_req",
        "_work",
    )

    def __init__(self, instance: Instance) -> None:
        m = instance.num_processors
        nmax = instance.max_jobs
        self.instance = instance
        self.t = 0
        self.num_jobs = np.array(
            [instance.num_jobs(i) for i in range(m)], dtype=np.int64
        )
        self.done = np.zeros(m, dtype=np.int64)
        # Requirements / work padded to a rectangle; the padding is
        # never read (done is bounded by num_jobs).
        self._req = np.zeros((m, nmax), dtype=np.float64)
        self._work = np.zeros((m, nmax), dtype=np.float64)
        for i, queue in enumerate(instance.queues):
            for j, job in enumerate(queue):
                self._req[i, j] = float(job.requirement)
                self._work[i, j] = float(job.work)
        self.remaining = self._work[:, 0].copy()
        self.active_requirements = self._req[:, 0].copy()

    @property
    def num_processors(self) -> int:
        return int(self.num_jobs.shape[0])

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean mask of processors with unfinished jobs."""
        return self.done < self.num_jobs

    @property
    def jobs_remaining(self) -> np.ndarray:
        """``n_i(t)`` for every processor, as an int64 array."""
        return self.num_jobs - self.done

    @property
    def all_done(self) -> bool:
        return bool((self.done >= self.num_jobs).all())

    def advance(self, finished: np.ndarray) -> None:
        """Complete the active job on every processor in *finished*
        (an index array) and load the successor job."""
        self.done[finished] += 1
        has_next = finished[self.done[finished] < self.num_jobs[finished]]
        self.remaining[has_next] = self._work[has_next, self.done[has_next]]
        self.active_requirements[has_next] = self._req[
            has_next, self.done[has_next]
        ]
        exhausted = finished[self.done[finished] >= self.num_jobs[finished]]
        self.remaining[exhausted] = 0.0
        self.active_requirements[exhausted] = 0.0


class VectorBackend(Backend):
    """NumPy float64 execution engine.

    Args:
        tol: completion / feasibility tolerance.  A job is complete
            when its remaining work is ``<= tol``; shares may exceed
            the exact bounds by up to ``tol`` before the backend calls
            them infeasible.  Must be far below the instance's
            requirement grid (the default ``1e-9`` is safe for grids
            down to ``1e-6``).
    """

    name = "vector"

    def __init__(self, *, tol: float = 1e-9) -> None:
        if tol <= 0:
            raise ValueError("tol must be positive")
        self.tol = float(tol)

    def run(
        self,
        instance: Instance,
        policy,
        *,
        max_steps: int | None = None,
        record_shares: bool = True,
        stall_limit: int = 3,
    ) -> BackendResult:
        if not getattr(policy, "supports_vector", False):
            raise VectorizationUnsupportedError(
                f"policy {getattr(policy, 'name', policy)!r} does not "
                "implement shares_array; use backend='exact'"
            )
        tol = self.tol
        limit = default_step_limit(instance) if max_steps is None else max_steps
        state = VectorState(instance)
        m = state.num_processors
        share_rows: list[np.ndarray] = []
        processed_rows: list[np.ndarray] = []
        completion_steps: dict[tuple[int, int], int] = {}
        stalled = 0

        while not state.all_done:
            if state.t >= limit:
                raise SimulationLimitError(
                    f"policy did not finish within {limit} steps "
                    f"(vector backend, done={state.done.tolist()})"
                )
            shares = np.asarray(policy.shares_array(state), dtype=np.float64)
            if shares.shape != (m,):
                raise InfeasibleAssignmentError(
                    f"policy returned shape {shares.shape} shares for "
                    f"{m} processors at step {state.t}"
                )
            if (shares < -tol).any() or (shares > 1.0 + tol).any():
                raise InfeasibleAssignmentError(
                    f"step {state.t}: share outside [0, 1] "
                    f"(min={shares.min()}, max={shares.max()})"
                )
            total = float(shares.sum())
            if total > 1.0 + tol:
                raise InfeasibleAssignmentError(
                    f"step {state.t}: resource overused (sum of shares = "
                    f"{total} > 1)"
                )
            # Eq. (1)/(2): the requirement caps useful speed; a job
            # cannot absorb more than its remaining work in one step.
            speed = np.minimum(shares, state.active_requirements)
            work = np.minimum(speed, state.remaining)
            np.maximum(work, 0.0, out=work)
            state.remaining -= work
            finished = np.flatnonzero(
                state.active_mask & (state.remaining <= tol)
            )
            if record_shares:
                share_rows.append(shares.copy())
                processed_rows.append(work.copy())
            if finished.size:
                for i in finished:
                    completion_steps[(int(i), int(state.done[i]))] = state.t
                state.advance(finished)
                stalled = 0
            elif float(work.sum()) <= tol:
                stalled += 1
                if stalled >= stall_limit:
                    raise SimulationLimitError(
                        f"policy made no progress for {stalled} consecutive "
                        f"steps (t={state.t}); aborting"
                    )
            else:
                stalled = 0
            state.t += 1

        return BackendResult(
            backend=self.name,
            makespan=state.t,
            shares=np.array(share_rows) if record_shares else None,
            processed=np.array(processed_rows) if record_shares else None,
            completion_steps=completion_steps,
        )
