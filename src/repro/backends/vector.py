"""Vectorized float64 backend (NumPy).

The exact simulator pays for its correctness guarantees with
``Fraction`` arithmetic: every share, comparison, and subtraction
allocates and normalizes big-int pairs, which caps throughput far
below what large-``m`` campaigns need.  This backend implements the
*same* step semantics (Section 3.1 / Eq. (1)-(2)) on flat NumPy
arrays, as a :class:`VectorRuntime` plugged into the unified stepping
kernel (:func:`repro.core.kernel.run_kernel`):

* remaining work, active-job requirements, and share vectors are
  float64 arrays of length ``m``;
* water-filling policies produce a whole share vector with one
  ``argsort`` + ``cumsum`` + ``clip`` (no Python loop over
  processors, see :func:`repro.algorithms.base.water_fill_array`);
* completion tests are *tolerance-aware*: a job finishes when its
  remaining work drops to ``<= tol`` (default ``1e-9``), absorbing
  float rounding without changing which step a job completes in for
  any instance whose requirement grid is coarser than the tolerance;
* processors with non-zero release times stay masked (zero remaining
  work and requirement) until their release step, so water-filling
  policies skip them for free.

The float path is validated, not trusted: the cross-validation suite
(``tests/backends``) checks makespan and per-step shares against
:class:`~repro.backends.exact.ExactBackend` on hundreds of random
instances (static and arrival), and
:func:`repro.analysis.verification.verify_share_rows` re-executes
float rows independently with the same tolerance.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import Instance
from ..core.kernel import (
    CompletionRecorder,
    KernelRuntime,
    ShareRecorder,
    StepEvent,
    run_kernel,
)
from ..exceptions import (
    CheckpointError,
    InfeasibleAssignmentError,
    VectorizationUnsupportedError,
)
from ..kernels import (
    decide,
    normalize_compiled,
    note_fallback,
    replay_run,
    run_fused_instance,
)
from ..telemetry import get_session
from .base import Backend, BackendResult, backend_run_span

__all__ = ["VectorState", "VectorRuntime", "VectorBackend"]


class VectorState:
    """Float64 view of the execution state for ``Policy.shares_array``.

    Mirrors the read API of :class:`~repro.core.state.ExecState` in
    array form; policies must treat every array as read-only (the
    backend owns the mutation).

    Attributes:
        instance: the originating instance.
        t: 0-based current step.
        num_jobs: per processor, total job count (``n_i``).
        done: per processor, completed job count (``j_i(t)``).
        remaining: per processor, remaining work of the active job
            (0.0 once the processor has finished everything, and 0.0
            *before* a processor's release time -- unreleased work is
            invisible to policies).  Multi-resource instances measure
            work on the bottleneck resource.
        active_requirements: per processor, the (bottleneck)
            requirement ``r_ij`` of the active job (0.0 once finished
            or before release) -- the speed cap of Eq. (1).
        active_req_matrix: ``(k, m)`` per-resource requirements of the
            active jobs (the single-resource state aliases it to
            ``active_requirements`` reshaped, so the share-matrix view
            exists for every ``k``).
        active_weights: per processor, the objective weight ``w_ij`` of
            the active job (0.0 once finished or before release) --
            read by flow-tuned policies such as ``weighted-srpt``.
        active_deadlines: per processor, the due step ``d_ij`` of the
            active job (``inf`` when the job has no deadline, the
            processor is finished, or it is not yet released) -- read
            by deadline-aware policies such as ``edf-waterfill``.
        resource_spent: ``(k,)`` cumulative resource-time consumed per
            shared resource.
    """

    __slots__ = (
        "instance",
        "t",
        "num_jobs",
        "done",
        "remaining",
        "active_requirements",
        "active_req_matrix",
        "active_weights",
        "active_deadlines",
        "resource_spent",
        "num_resources",
        "_req",
        "_reqk",
        "_work",
        "_wgt",
        "_dl",
        "_release",
        "_released",
        "_all_released",
    )

    def __init__(self, instance: Instance) -> None:
        m = instance.num_processors
        nmax = instance.max_jobs
        k = instance.num_resources
        self.instance = instance
        self.t = 0
        self.num_resources = k
        self.num_jobs = np.array(
            [instance.num_jobs(i) for i in range(m)], dtype=np.int64
        )
        self.done = np.zeros(m, dtype=np.int64)
        # Requirements / work padded to a rectangle; the padding is
        # never read (done is bounded by num_jobs).
        self._req = np.zeros((m, nmax), dtype=np.float64)
        self._work = np.zeros((m, nmax), dtype=np.float64)
        self._wgt = np.zeros((m, nmax), dtype=np.float64)
        self._dl = np.full((m, nmax), np.inf, dtype=np.float64)
        for i, queue in enumerate(instance.queues):
            for j, job in enumerate(queue):
                self._req[i, j] = float(job.requirement)
                self._work[i, j] = float(job.work)
                self._wgt[i, j] = float(job.weight)
                if job.deadline is not None:
                    self._dl[i, j] = float(job.deadline)
        self._release = np.array(instance.releases, dtype=np.int64)
        self._released = self._release <= 0
        self._all_released = bool(self._released.all())
        # Unreleased processors are masked to zero until they arrive.
        self.remaining = np.where(self._released, self._work[:, 0], 0.0)
        self.active_requirements = np.where(
            self._released, self._req[:, 0], 0.0
        )
        self.active_weights = np.where(self._released, self._wgt[:, 0], 0.0)
        self.active_deadlines = np.where(
            self._released, self._dl[:, 0], np.inf
        )
        self.resource_spent = np.zeros(k, dtype=np.float64)
        if k == 1:
            # Degenerate share-matrix view; no separate bookkeeping.
            self._reqk = None
            self.active_req_matrix = self.active_requirements.reshape(1, m)
        else:
            self._reqk = np.zeros((k, m, nmax), dtype=np.float64)
            for i, queue in enumerate(instance.queues):
                for j, job in enumerate(queue):
                    for lane, r in enumerate(job.requirements):
                        self._reqk[lane, i, j] = float(r)
            self.active_req_matrix = np.where(
                self._released[None, :], self._reqk[:, :, 0], 0.0
            )

    @property
    def num_processors(self) -> int:
        """``m`` -- the number of processors."""
        return int(self.num_jobs.shape[0])

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean mask of released processors with unfinished jobs."""
        if self._all_released:
            return self.done < self.num_jobs
        return self._released & (self.done < self.num_jobs)

    @property
    def pending_mask(self) -> np.ndarray:
        """Boolean mask of processors with unfinished jobs.

        Released or not: arrival-aware policies reason about future
        work too.
        """
        return self.done < self.num_jobs

    @property
    def released_mask(self) -> np.ndarray:
        """Boolean mask of processors whose release time has arrived."""
        return self._released.copy()

    @property
    def jobs_remaining(self) -> np.ndarray:
        """``n_i(t)`` for every processor, as an int64 array."""
        return self.num_jobs - self.done

    @property
    def all_done(self) -> bool:
        """True once every job on every processor has finished."""
        return bool((self.done >= self.num_jobs).all())

    @property
    def waiting(self) -> bool:
        """True iff some processor has not been released yet.

        Its jobs are pending by construction.
        """
        return not self._all_released

    def begin_step(self) -> None:
        """Unmask processors whose release time has arrived."""
        if self._all_released:
            return
        newly = ~self._released & (self._release <= self.t)
        if newly.any():
            idx = np.flatnonzero(newly)
            self.remaining[idx] = self._work[idx, self.done[idx]]
            self.active_requirements[idx] = self._req[idx, self.done[idx]]
            self.active_weights[idx] = self._wgt[idx, self.done[idx]]
            self.active_deadlines[idx] = self._dl[idx, self.done[idx]]
            if self._reqk is not None:
                self.active_req_matrix[:, idx] = self._reqk[
                    :, idx, self.done[idx]
                ]
            self._released |= newly
            self._all_released = bool(self._released.all())

    def capture(self) -> dict:
        """JSON-serializable snapshot of the mutable float64 state.

        Floats survive JSON byte-exactly (``repr`` round-trips float64),
        so :meth:`restore` is bit-identical.  The padded requirement /
        work tables are immutable derivations of the instance and are
        rebuilt, not captured.
        """
        return {
            "t": self.t,
            "done": [int(x) for x in self.done],
            "remaining": [float(x) for x in self.remaining],
            "resource_spent": [float(x) for x in self.resource_spent],
            "released": [bool(x) for x in self._released],
        }

    def restore(self, data: dict) -> None:
        """Overwrite this state from a :meth:`capture` payload.

        As with :meth:`repro.core.state.ExecState.restore`, the payload
        may describe fewer processors than the instance this state was
        built over (extension restores keep the new queues' fresh
        state); the active-job views are recomputed from the padded
        tables in place, which preserves the ``k == 1`` aliasing of
        ``active_req_matrix``.

        Raises:
            CheckpointError: on malformed payloads or any inconsistency
                with the instance.
        """
        m = self.num_processors
        try:
            t = int(data["t"])
            done = np.array([int(x) for x in data["done"]], dtype=np.int64)
            remaining = np.array(
                [float(x) for x in data["remaining"]], dtype=np.float64
            )
            spent = np.array(
                [float(x) for x in data["resource_spent"]], dtype=np.float64
            )
            released = np.array(
                [bool(x) for x in data["released"]], dtype=bool
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed vector state payload: {exc}") from exc
        mm = int(done.shape[0])
        if not (
            mm == remaining.shape[0] == released.shape[0] and mm <= m
        ):
            raise CheckpointError(
                f"state payload describes {mm} processors "
                f"(remaining: {remaining.shape[0]}, released: "
                f"{released.shape[0]}) for an instance with {m}"
            )
        if spent.shape[0] != self.num_resources:
            raise CheckpointError(
                f"resource ledger has {spent.shape[0]} entries for "
                f"{self.num_resources} shared resource(s)"
            )
        if t < 0:
            raise CheckpointError(f"negative step counter {t}")
        nn = self.num_jobs[:mm]
        if (done < 0).any() or (done > nn).any():
            raise CheckpointError(
                f"done counts {done.tolist()} out of range for queues "
                f"of {nn.tolist()} jobs"
            )
        j = np.minimum(done, nn - 1)
        idx = np.arange(mm)
        cap = np.where(done < nn, self._work[idx, j], 0.0)
        if (remaining < 0.0).any() or (remaining > cap).any():
            raise CheckpointError(
                f"remaining work {remaining.tolist()} outside [0, work] "
                "for the active jobs"
            )
        self.t = t
        self.done[:mm] = done
        self.remaining[:mm] = remaining
        self.resource_spent[:] = spent
        self._released[:mm] = released
        self._all_released = bool(self._released.all())
        live = released & (done < nn)
        self.active_requirements[:mm] = np.where(live, self._req[idx, j], 0.0)
        self.active_weights[:mm] = np.where(live, self._wgt[idx, j], 0.0)
        self.active_deadlines[:mm] = np.where(live, self._dl[idx, j], np.inf)
        if self._reqk is not None:
            self.active_req_matrix[:, :mm] = np.where(
                live[None, :], self._reqk[:, idx, j], 0.0
            )

    def advance(self, finished: np.ndarray) -> None:
        """Complete the active jobs of the *finished* index array.

        Loads the successor job (or zeros the lane) on each.
        """
        self.done[finished] += 1
        has_next = finished[self.done[finished] < self.num_jobs[finished]]
        self.remaining[has_next] = self._work[has_next, self.done[has_next]]
        self.active_requirements[has_next] = self._req[
            has_next, self.done[has_next]
        ]
        self.active_weights[has_next] = self._wgt[has_next, self.done[has_next]]
        self.active_deadlines[has_next] = self._dl[
            has_next, self.done[has_next]
        ]
        exhausted = finished[self.done[finished] >= self.num_jobs[finished]]
        self.remaining[exhausted] = 0.0
        self.active_requirements[exhausted] = 0.0
        self.active_weights[exhausted] = 0.0
        self.active_deadlines[exhausted] = np.inf
        if self._reqk is not None:
            self.active_req_matrix[:, has_next] = self._reqk[
                :, has_next, self.done[has_next]
            ]
            self.active_req_matrix[:, exhausted] = 0.0


class VectorRuntime(KernelRuntime):
    """Float64 arithmetic adapter over :class:`VectorState`.

    Args:
        instance: the CRSharing instance.
        tol: completion / feasibility tolerance (see
            :class:`VectorBackend`).
    """

    #: Checkpoint backend tag (see :mod:`repro.core.checkpoint`).
    kind = "vector"

    __slots__ = ("instance", "state", "tol", "_m", "_k")

    def __init__(self, instance: Instance, *, tol: float = 1e-9) -> None:
        self.instance = instance
        self.state = VectorState(instance)
        self.tol = float(tol)
        self._m = instance.num_processors
        self._k = instance.num_resources

    @property
    def t(self) -> int:
        """0-based index of the next step to execute."""
        return self.state.t

    @property
    def all_done(self) -> bool:
        """True once every job on every processor has finished."""
        return self.state.all_done

    @property
    def waiting(self) -> bool:
        """True while unreleased processors still hold pending jobs."""
        return self.state.waiting

    def begin_step(self) -> None:
        """Unmask processors whose release time has arrived."""
        self.state.begin_step()

    def query(self, policy) -> np.ndarray:
        """Ask *policy* for a float64 share vector (or (k, m) matrix)."""
        return np.asarray(policy.shares_array(self.state), dtype=np.float64)

    def check(self, shares: np.ndarray) -> None:
        """Tolerance-aware feasibility check (shape, bounds, capacity).

        Expects a flat ``(m,)`` share vector for single-resource
        instances and a ``(k, m)`` share matrix for ``k > 1``; every
        resource row is checked against its unit capacity.
        """
        tol = self.tol
        t = self.state.t
        expected = (self._m,) if self._k == 1 else (self._k, self._m)
        if shares.shape != expected:
            raise InfeasibleAssignmentError(
                f"policy returned shape {shares.shape} shares for "
                f"{self._m} processors and {self._k} resource(s) at "
                f"step {t} (expected {expected})"
            )
        if (shares < -tol).any() or (shares > 1.0 + tol).any():
            raise InfeasibleAssignmentError(
                f"step {t}: share outside [0, 1] "
                f"(min={shares.min()}, max={shares.max()})"
            )
        # Per-resource capacity: sum over processors (the flat vector
        # is the k=1 row of the same formulation).
        totals = shares.sum(axis=-1, keepdims=False)
        worst = float(np.max(totals))
        if worst > 1.0 + tol:
            raise InfeasibleAssignmentError(
                f"step {t}: resource overused (sum of shares = "
                f"{worst} > 1)"
            )

    def apply(self, shares: np.ndarray) -> StepEvent:
        """Advance the float64 state one step and report it."""
        state = self.state
        tol = self.tol
        had_work = state.active_mask
        if self._k == 1:
            # Eq. (1)/(2): the requirement caps useful speed; a job
            # cannot absorb more than its remaining work in one step.
            speed = np.minimum(shares, state.active_requirements)
            work = np.minimum(speed, state.remaining)
            np.maximum(work, 0.0, out=work)
            state.remaining -= work
            state.resource_spent[0] += float(work.sum())
        else:
            work = self._multi_work(shares)
            state.remaining -= work
        finished = np.flatnonzero(had_work & (state.remaining <= tol))
        completed: tuple[tuple[int, int], ...] = ()
        if finished.size:
            completed = tuple(
                (int(i), int(state.done[i])) for i in finished
            )
            state.advance(finished)
        progressed = bool(finished.size) or float(work.sum()) > tol
        t = state.t
        state.t += 1
        return StepEvent(
            t=t,
            shares=shares,
            processed=work,
            completed=completed,
            had_work=had_work,
            progressed=progressed,
        )

    def _multi_work(self, shares: np.ndarray) -> np.ndarray:
        """Per-processor work under a ``(k, m)`` share matrix.

        The bottleneck rule of the multi-resource model: a job runs at
        speed fraction ``min_l min(s_l, r_l) / r_l`` over the
        resources it needs, progresses ``fraction * r*`` bottleneck
        work units (capped by its remaining work), and consumes
        ``progress_fraction * r_l`` of every resource ``l`` (tracked
        in ``resource_spent``).
        """
        state = self.state
        req = state.active_req_matrix  # (k, m)
        rstar = state.active_requirements
        needed = req > 0.0
        ratio = np.divide(
            np.minimum(shares, req),
            req,
            out=np.full_like(req, np.inf),
            where=needed,
        )
        fraction = ratio.min(axis=0)  # inf where no resource is needed
        positive = rstar > 0.0
        work = np.zeros(state.num_processors, dtype=np.float64)
        work[positive] = np.minimum(
            fraction[positive] * rstar[positive], state.remaining[positive]
        )
        np.maximum(work, 0.0, out=work)
        progress = np.zeros_like(work)
        progress[positive] = work[positive] / rstar[positive]
        state.resource_spent += (req * progress[None, :]).sum(axis=1)
        return work

    def describe_progress(self) -> str:
        """Completed-job counts, for limit-error messages."""
        return f"vector backend, done={self.state.done.tolist()}"

    def capture(self) -> dict:
        """Serializable snapshot of the runtime's mutable state.

        Carries the completion tolerance alongside the state so a
        restored runtime reproduces the same completion decisions.
        """
        data = self.state.capture()
        data["tol"] = self.tol
        return data

    def restore(self, data: dict) -> None:
        """Overwrite the runtime's state from a :meth:`capture` payload."""
        self.state.restore(data)
        if "tol" in data:
            self.tol = float(data["tol"])


class VectorBackend(Backend):
    """NumPy float64 execution engine (a kernel configuration).

    Args:
        tol: completion / feasibility tolerance.  A job is complete
            when its remaining work is ``<= tol``; shares may exceed
            the exact bounds by up to ``tol`` before the backend calls
            them infeasible.  Must be far below the instance's
            requirement grid (the default ``1e-9`` is safe for grids
            down to ``1e-6``).
        compiled: default dispatch mode for the compiled tier
            (:mod:`repro.kernels`): ``"auto"`` (the default) routes
            eligible runs -- built-in water-filling policy, no share
            recording, numba installed -- through the JIT-fused
            whole-run driver and falls back per-step otherwise (the
            fallback reason lands in the ``compiled.fallbacks``
            telemetry counter); ``"on"`` forces the fused driver (even
            interpreted, without numba) and raises
            :class:`~repro.exceptions.CompiledUnsupportedError` for
            ineligible runs; ``"off"`` never compiles.  ``run`` can
            override per call.
    """

    name = "vector"

    def __init__(
        self, *, tol: float = 1e-9, compiled: str | bool = "auto"
    ) -> None:
        if tol <= 0:
            raise ValueError("tol must be positive")
        self.tol = float(tol)
        self.compiled = normalize_compiled(compiled)

    def make_runtime(self, instance: Instance, policy) -> VectorRuntime:
        """The kernel runtime this backend contributes.

        Shared with :class:`~repro.simulation.engine.ManyCoreEngine`.
        Policy registry names resolve first, so the ``shares_array``
        capability check below only ever judges genuine policy objects
        (an unresolved string used to be reported -- misleadingly -- as
        "does not implement shares_array").
        """
        policy = self._resolve_policy(policy)
        if not getattr(policy, "supports_vector", False):
            raise VectorizationUnsupportedError(
                f"policy {getattr(policy, 'name', policy)!r} does not "
                "implement shares_array; use backend='exact'"
            )
        return VectorRuntime(instance, tol=self.tol)

    def run(
        self,
        instance: Instance,
        policy,
        *,
        max_steps: int | None = None,
        record_shares: bool = True,
        stall_limit: int = 3,
        objectives=(),
        compiled: str | bool | None = None,
    ) -> BackendResult:
        """Run *policy* on *instance* through the float64 kernel.

        *policy* may be a registry name; see
        :func:`repro.algorithms.resolve_policy`.  *compiled* overrides
        the backend's dispatch mode for this run (``None`` keeps it);
        eligible runs execute inside the JIT-fused whole-run driver
        and return no share rows (``shares is None``, as with
        ``record_shares=False``).
        """
        policy = self._resolve_policy(policy)
        mode = normalize_compiled(compiled, default=self.compiled)
        if mode != "off":
            decision = decide(policy, mode, record_shares=record_shares)
            if decision.code is not None:
                return self._run_compiled(
                    instance,
                    policy,
                    decision.code,
                    max_steps=max_steps,
                    stall_limit=stall_limit,
                    objectives=objectives,
                )
            note_fallback(decision.reason)
        runtime = self.make_runtime(instance, policy)
        completions = CompletionRecorder()
        recorders = self._objective_observers(instance, objectives)
        observers: list = [completions, *recorders]
        recorder: ShareRecorder | None = None
        if record_shares:
            recorder = ShareRecorder()
            observers.append(recorder)
        with backend_run_span(self.name, instance, policy) as span:
            makespan = run_kernel(
                runtime,
                policy,
                observers,
                max_steps=max_steps,
                stall_limit=stall_limit,
            )
            if span is not None:
                span.note(makespan=makespan)
        return BackendResult(
            backend=self.name,
            makespan=makespan,
            shares=np.array(recorder.shares) if recorder is not None else None,
            processed=(
                np.array(recorder.processed) if recorder is not None else None
            ),
            completion_steps=completions.completion_steps,
            instance=instance,
            objective_values=self._objective_values(recorders),
        )

    def _run_compiled(
        self,
        instance: Instance,
        policy,
        policy_code: int,
        *,
        max_steps: int | None,
        stall_limit: int,
        objectives,
    ) -> BackendResult:
        """Serve one run through the JIT-fused whole-run driver.

        The driver returns the makespan and a completion-step table;
        replaying that table through the objective recorders yields
        exactly the values a per-step run produces (objectives depend
        only on completion events and the makespan).
        """
        recorders = self._objective_observers(instance, objectives)
        with backend_run_span(self.name, instance, policy) as span:
            makespan, completion = run_fused_instance(
                instance,
                policy_code,
                tol=self.tol,
                max_steps=max_steps,
                stall_limit=stall_limit,
            )
            completion_steps = replay_run(completion, makespan, recorders)
            if span is not None:
                span.note(makespan=makespan, compiled=True)
        session = get_session()
        if session is not None:
            session.metrics.counter("compiled.runs").inc()
            session.metrics.counter("compiled.steps").inc(makespan)
        return BackendResult(
            backend=self.name,
            makespan=makespan,
            completion_steps=completion_steps,
            instance=instance,
            objective_values=self._objective_values(recorders),
        )
