"""Pluggable simulation backends.

A *backend* executes an online policy on an instance under the step
semantics of Section 3.1 and reports a
:class:`~repro.backends.base.BackendResult`.  Two implementations ship:

:class:`ExactBackend` (``"exact"``)
    The reference engine: exact ``Fraction`` arithmetic via
    :func:`repro.core.simulator.simulate`, result carries the fully
    validated :class:`~repro.core.schedule.Schedule`.  Slow, never
    wrong -- the source of truth every other backend is validated
    against.

:class:`VectorBackend` (``"vector"``)
    NumPy float64 arrays with vectorized water-filling and
    tolerance-aware completion tests.  Orders of magnitude faster for
    large ``m`` (the ``bench_backend_speedup`` benchmark tracks the
    factor); cross-validated against the exact backend by
    :func:`~repro.backends.crosscheck.cross_validate` and the
    ``tests/backends`` suite.

The Backend protocol
====================

Implementations subclass :class:`~repro.backends.base.Backend` and
provide::

    class MyBackend(Backend):
        name = "my-backend"          # registry / CLI identifier

        def run(self, instance, policy, *, max_steps=None,
                record_shares=True) -> BackendResult: ...

``run`` must (a) terminate with
:class:`~repro.exceptions.SimulationLimitError` if the policy exceeds
the step limit, (b) reject infeasible share vectors with
:class:`~repro.exceptions.InfeasibleAssignmentError`, and (c) report
the same makespan the exact simulator would, within the backend's
documented tolerance.  Register a new backend by adding its factory to
``_REGISTRY`` here; everything downstream (``Policy.run_backend``, the
CLI ``--backend`` flag, :class:`BatchRunner`) picks it up by name.

Scaling campaigns
=================

:class:`~repro.backends.batch.BatchRunner` shards instance lists
across ``multiprocessing`` workers and aggregates makespans/ratios
into a :class:`~repro.backends.batch.BatchResult` store -- the
scaffolding sharding/caching/async PRs plug into.
"""

from __future__ import annotations

from typing import Callable

from ..exceptions import BackendError
from .base import Backend, BackendResult
from .batch import BatchResult, BatchRunner, make_campaign_instances
from .batched import (
    BatchRunResult,
    BatchVectorRuntime,
    BatchVectorState,
    run_batch,
)
from .crosscheck import CrossCheckResult, cross_validate
from .exact import ExactBackend
from .vector import VectorBackend, VectorRuntime, VectorState

__all__ = [
    "Backend",
    "BackendResult",
    "BatchResult",
    "BatchRunResult",
    "BatchRunner",
    "BatchVectorRuntime",
    "BatchVectorState",
    "CrossCheckResult",
    "ExactBackend",
    "VectorBackend",
    "VectorRuntime",
    "VectorState",
    "available_backends",
    "cross_validate",
    "get_backend",
    "make_campaign_instances",
    "run_batch",
]

_REGISTRY: dict[str, Callable[[], Backend]] = {
    ExactBackend.name: ExactBackend,
    VectorBackend.name: VectorBackend,
}


def get_backend(name: str) -> Backend:
    """Instantiate a backend by registry name.

    Raises:
        BackendError: for unknown names (message lists the options).
    """
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_backends() -> list[str]:
    """Names of all registered backends."""
    return sorted(_REGISTRY)
