"""The :class:`Backend` protocol and its result container.

A *backend* is an execution engine for online policies: it repeatedly
asks the policy for a share vector, applies the model's step semantics
(Section 3.1 of the paper), and reports the makespan plus optional
telemetry.  All backends implement the same contract so callers --
:meth:`repro.algorithms.base.Policy.run_backend`, the CLI's
``--backend`` flag, :class:`~repro.backends.batch.BatchRunner` -- can
swap engines without touching policy or analysis code.

Contract (what every backend guarantees):

* ``run(instance, policy)`` executes until all jobs complete or a
  safety limit triggers (:class:`~repro.exceptions.SimulationLimitError`);
* infeasible policy output (share outside ``[0,1]`` or overused
  capacity, beyond the backend's tolerance) raises
  :class:`~repro.exceptions.InfeasibleAssignmentError`;
* the returned :class:`BackendResult` reports the same makespan the
  exact simulator would (within the backend's documented tolerance --
  exactly for :class:`~repro.backends.exact.ExactBackend`, within
  float64 rounding for :class:`~repro.backends.vector.VectorBackend`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from ..exceptions import BackendError
from ..telemetry import get_session

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..core.instance import Instance
    from ..core.kernel import KernelRuntime, ObjectiveRecorder
    from ..core.schedule import Schedule
    from ..objectives.base import Objective

__all__ = ["Backend", "BackendResult", "backend_run_span", "resolve_objectives"]


@contextmanager
def backend_run_span(
    backend_name: str, instance: "Instance", policy
) -> Iterator[Any]:
    """A ``backend.run`` telemetry span around one backend run.

    Yields the open span handle when a telemetry session is installed
    (the backend ``note``\\ s the makespan onto it before closing), or
    ``None`` when telemetry is disabled -- one :func:`get_session`
    check per run, nothing on the hot path.
    """
    session = get_session()
    if session is None:
        yield None
        return
    with session.tracer.span(
        "backend.run",
        backend=backend_name,
        policy=str(getattr(policy, "name", type(policy).__name__)),
        m=instance.num_processors,
        jobs=instance.total_jobs,
        resources=instance.num_resources,
    ) as span:
        yield span


def resolve_objectives(
    objectives: "Sequence[Objective | str]",
) -> "list[Objective]":
    """Normalize a mixed name/instance objective list (shared helper).

    Backends accept objectives by registry name or as instances; this
    resolves names through :func:`repro.objectives.get_objective` so
    every backend and the batch workers share one lookup path.
    """
    from ..objectives import get_objective  # local: objectives build on core

    return [
        get_objective(obj) if isinstance(obj, str) else obj
        for obj in objectives
    ]


@dataclass(slots=True)
class BackendResult:
    """Outcome of one backend run.

    Attributes:
        backend: name of the backend that produced this result.
        makespan: number of time steps until all jobs finished.
        shares: per-step share rows (``makespan x m``) when the run was
            recorded; ``None`` when recording was disabled to save
            memory on bulk sweeps.  Exact backends store ``Fraction``
            rows, the vector backend float64 rows.
        processed: per-step work actually processed (same shape and
            recording rule as ``shares``).
        completion_steps: 0-based completion step per job id ``(i, j)``.
        schedule: the validated exact :class:`Schedule` artifact
            (exact backend only; ``None`` for float backends).
        instance: the instance the run executed (set by the shipped
            backends; lets objectives re-evaluate the result without a
            side channel).
        objective_values: objective name -> value for every objective
            requested via ``run(..., objectives=...)``, computed
            *online* by kernel observers (exact ``Fraction``/int values
            on the exact backend, the same integers-from-float64
            completions on the vector backend).
    """

    backend: str
    makespan: int
    shares: Sequence[Sequence[Any]] | None = None
    processed: Sequence[Sequence[Any]] | None = None
    completion_steps: dict[tuple[int, int], int] = field(default_factory=dict)
    schedule: "Schedule | None" = None
    instance: "Instance | None" = None
    objective_values: dict[str, Any] = field(default_factory=dict)

    def share_rows(self) -> list[tuple[Any, ...]]:
        """The recorded share matrix as a list of row tuples.

        Raises:
            ValueError: if the run was executed with
                ``record_shares=False``.
        """
        if self.shares is None:
            raise ValueError(
                "share rows were not recorded (run with record_shares=True)"
            )
        return [tuple(row) for row in self.shares]


class Backend(ABC):
    """Abstract simulation backend.

    See the module docstring for the full contract.

    Example:
        >>> from repro.backends import get_backend
        >>> from repro.core import Instance
        >>> from repro.algorithms import GreedyBalance
        >>> inst = Instance.from_percent([[50, 50], [50, 50]])
        >>> get_backend("vector").run(inst, GreedyBalance()).makespan
        2
    """

    #: Registry / CLI identifier.
    name: str = "backend"

    @abstractmethod
    def run(
        self,
        instance: "Instance",
        policy,
        *,
        max_steps: int | None = None,
        record_shares: bool = True,
        objectives: "Sequence[Objective | str]" = (),
    ) -> BackendResult:
        """Execute *policy* on *instance* until completion.

        Args:
            instance: the CRSharing instance.
            policy: a :class:`~repro.algorithms.base.Policy` (backends
                may require specific capabilities, e.g. the vector
                backend needs ``shares_array``).
            max_steps: hard safety limit (default:
                :func:`repro.core.simulator.default_step_limit`).
            record_shares: keep per-step share/progress rows on the
                result.  Disable for bulk campaigns where only the
                makespan matters.
            objectives: objectives (registry names or
                :class:`~repro.objectives.base.Objective` instances) to
                evaluate online during the run; their values land in
                :attr:`BackendResult.objective_values`.
        """

    @staticmethod
    def _resolve_policy(policy):
        """Resolve policy registry names to objects (shared plumbing).

        Every backend ``run`` resolves through this before touching the
        policy, so ``get_backend("vector").run(inst, "round-robin")``
        works exactly like passing the policy object -- and capability
        checks (e.g. the vector backend's ``shares_array`` probe) only
        ever see genuine policy objects.
        """
        from ..algorithms import resolve_policy  # local: avoid import cycle

        return resolve_policy(policy)

    def _objective_observers(
        self, instance: "Instance", objectives: "Sequence[Objective | str]"
    ) -> "list[ObjectiveRecorder]":
        """Online objective recorders for one run (shared plumbing)."""
        return [
            obj.online_observer(instance)
            for obj in resolve_objectives(objectives)
        ]

    @staticmethod
    def _objective_values(
        recorders: "Sequence[ObjectiveRecorder]",
    ) -> dict[str, Any]:
        """Collect ``name -> value`` from finished recorders."""
        return {rec.objective.name: rec.value for rec in recorders}

    def make_runtime(self, instance: "Instance", policy) -> "KernelRuntime":
        """The kernel runtime this backend contributes.

        Callers that need custom telemetry (e.g. the many-core engine's
        :class:`~repro.simulation.traces.RunTrace` observer) obtain the
        backend's runtime and drive :func:`repro.core.kernel.run_kernel`
        themselves, so every execution path shares the one step loop.

        Raises:
            BackendError: if the backend has no kernel runtime.
        """
        raise BackendError(
            f"backend {self.name!r} does not expose a kernel runtime"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
