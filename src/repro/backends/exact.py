"""The exact-arithmetic backend (the reference implementation).

Wraps :func:`repro.core.simulator.simulate` unchanged: every share is
a :class:`fractions.Fraction`, every comparison is exact, and the
result carries the fully validated :class:`~repro.core.schedule.Schedule`
artifact.  This backend is the source of truth the fast float backend
is cross-validated against -- it is never bypassed for correctness
claims, only for bulk throughput.
"""

from __future__ import annotations

from ..core.instance import Instance
from ..core.kernel import ExactRuntime
from ..core.simulator import simulate
from .base import Backend, BackendResult

__all__ = ["ExactBackend"]


class ExactBackend(Backend):
    """Exact ``Fraction`` execution via the canonical simulator (which
    is itself a thin configuration of the unified stepping kernel)."""

    name = "exact"

    def make_runtime(self, instance: Instance, policy) -> ExactRuntime:
        return ExactRuntime(instance)

    def run(
        self,
        instance: Instance,
        policy,
        *,
        max_steps: int | None = None,
        record_shares: bool = True,
    ) -> BackendResult:
        schedule = simulate(instance, policy, max_steps=max_steps)
        shares = None
        processed = None
        if record_shares:
            shares = schedule.share_rows()
            processed = [list(step.processed) for step in schedule.steps]
        return BackendResult(
            backend=self.name,
            makespan=schedule.makespan,
            shares=shares,
            processed=processed,
            completion_steps=dict(schedule.completion_steps),
            schedule=schedule,
        )
