"""The exact-arithmetic backend (the reference implementation).

Wraps :func:`repro.core.simulator.simulate` unchanged: every share is
a :class:`fractions.Fraction`, every comparison is exact, and the
result carries the fully validated :class:`~repro.core.schedule.Schedule`
artifact.  This backend is the source of truth the fast float backend
is cross-validated against -- it is never bypassed for correctness
claims, only for bulk throughput.
"""

from __future__ import annotations

from ..core.instance import Instance
from ..core.kernel import (
    CompletionRecorder,
    ExactRuntime,
    ShareRecorder,
    run_kernel,
)
from ..core.simulator import simulate
from .base import Backend, BackendResult, backend_run_span

__all__ = ["ExactBackend"]


class ExactBackend(Backend):
    """Exact ``Fraction`` execution via the canonical simulator.

    The simulator is itself a thin configuration of the unified
    stepping kernel.

    Single-resource runs return the fully validated
    :class:`~repro.core.schedule.Schedule` artifact; multi-resource
    runs (``k > 1``) drive the same :class:`ExactRuntime` through the
    kernel directly and report exact share-matrix rows without a
    Schedule (the artifact models the paper's single-resource
    analysis).
    """

    name = "exact"

    def make_runtime(self, instance: Instance, policy) -> ExactRuntime:
        """The exact kernel runtime this backend contributes."""
        return ExactRuntime(instance)

    def run(
        self,
        instance: Instance,
        policy,
        *,
        max_steps: int | None = None,
        record_shares: bool = True,
        objectives=(),
    ) -> BackendResult:
        """Run *policy* on *instance* in exact Fraction arithmetic.

        *policy* may be a registry name; see
        :func:`repro.algorithms.resolve_policy`.
        """
        policy = self._resolve_policy(policy)
        recorders = self._objective_observers(instance, objectives)
        with backend_run_span(self.name, instance, policy) as span:
            if instance.num_resources != 1:
                result = self._run_multi(
                    instance,
                    policy,
                    max_steps=max_steps,
                    record_shares=record_shares,
                    recorders=recorders,
                )
            else:
                schedule = simulate(
                    instance, policy, max_steps=max_steps, observers=recorders
                )
                shares = None
                processed = None
                if record_shares:
                    shares = schedule.share_rows()
                    processed = [
                        list(step.processed) for step in schedule.steps
                    ]
                result = BackendResult(
                    backend=self.name,
                    makespan=schedule.makespan,
                    shares=shares,
                    processed=processed,
                    completion_steps=dict(schedule.completion_steps),
                    schedule=schedule,
                    instance=instance,
                    objective_values=self._objective_values(recorders),
                )
            if span is not None:
                span.note(makespan=result.makespan)
        return result

    def _run_multi(
        self,
        instance: Instance,
        policy,
        *,
        max_steps: int | None,
        record_shares: bool,
        recorders: list,
    ) -> BackendResult:
        """Kernel-direct multi-resource run (no Schedule artifact)."""
        runtime = ExactRuntime(instance)
        completions = CompletionRecorder()
        observers: list = [completions, *recorders]
        recorder: ShareRecorder | None = None
        if record_shares:
            recorder = ShareRecorder()
            observers.append(recorder)
        makespan = run_kernel(
            runtime, policy, observers, max_steps=max_steps
        )
        return BackendResult(
            backend=self.name,
            makespan=makespan,
            shares=list(recorder.shares) if recorder is not None else None,
            processed=(
                list(recorder.processed) if recorder is not None else None
            ),
            completion_steps=completions.completion_steps,
            instance=instance,
            objective_values=self._objective_values(recorders),
        )
