"""Batched vectorized execution: step ``B`` instances per array program.

The vector backend removed the per-*processor* Python loop; this module
removes the per-*instance* one.  Campaign rows, local-search
neighborhoods, and restart candidates all run the same policy over many
(usually similar) instances, yet each kernel run pays the full per-step
NumPy dispatch cost for one ``m``-vector at a time.
:class:`BatchVectorRuntime` instead holds the execution state of ``B``
padded instance *lanes* as ``(B, m)`` / ``(B, k, m)`` float64 arrays
and advances all of them with one shared array program per step:

* batched water-filling (:func:`repro.algorithms.base.water_fill_array_batch`)
  turns each policy's priority order into per-lane grants with one
  ``take_along_axis`` + ``cumsum`` + ``clip``;
* completion tests, release unmasking, and successor loading are
  batched boolean masks and fancy-indexed gathers;
* every lane terminates early -- a finished lane's processors hold
  zero remaining work, so it receives all-zero shares and rides along
  masked; once the live fraction of a large batch drops below the
  compaction threshold (default < 50%), the state *compacts* to the
  surviving lanes so long-tail ragged batches stop paying for dead
  ones (``BatchRunResult.compactions`` counts the shrinks);
* objectives accumulate lane-wise through the standard
  ``ObjectiveAccumulator`` contract, so makespan / weighted flow /
  tardiness come out as length-``B`` vectors identical to ``B``
  separate :class:`~repro.backends.vector.VectorBackend` runs.

Policies advertise a batched priority path via
:meth:`repro.algorithms.base.Policy.shares_batch` (the water-filling
family implements it); policies with only a single-lane
``shares_array`` are stepped lane by lane through a
:class:`_LaneView` adapter -- correct, just without the batched
speedup.  Multi-resource (``k > 1``) lanes likewise fall back to the
per-lane depletion-rounds fill inside the batched step.

Bit-consistency: padded processors carry zero jobs, zero remaining
work, and zero requirements, so they contribute exact ``0.0`` terms to
every cumsum and never perturb real grants; all apply arithmetic is
elementwise.  The crosscheck suite (``tests/backends``) pins batched
lanes against per-lane vector runs within ``1e-9`` and against the
exact backend's makespans.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, Sequence

import numpy as np

from ..core.instance import Instance
from ..exceptions import (
    BackendError,
    InfeasibleAssignmentError,
    SimulationLimitError,
    VectorizationUnsupportedError,
)
from ..kernels import (
    decide,
    normalize_compiled,
    note_fallback,
    replay_run,
    run_fused_instance,
)
from .base import resolve_objectives

__all__ = [
    "BatchVectorState",
    "BatchVectorRuntime",
    "BatchRunResult",
    "run_batch",
]


class BatchVectorState:
    """Float64 view of ``B`` execution states for ``Policy.shares_batch``.

    The batch analogue of :class:`~repro.backends.vector.VectorState`:
    every per-processor array gains a leading lane axis, padded to the
    batch maxima (``m`` = max processors, ``k`` = max resources,
    ``n`` = max queue length).  Policies must treat every array as
    read-only (the runtime owns the mutation).

    Padding invariants: a padded processor has ``num_jobs == 0``,
    zero remaining work, zero requirements, weight 0, deadline
    ``inf``, and release time 0 -- it is never pending, never active,
    and contributes exact zeros to every reduction.  A padded resource
    row is all zeros.

    Attributes:
        instances: the originating instances, in lane order.
        t: 0-based current step (shared by all lanes).
        num_lanes: ``B``.
        num_processors: the padded processor count ``m``.
        num_resources: the padded resource count ``k``.
        lane_num_processors: per lane, the real processor count.
        lane_num_resources: per lane, the real resource count.
        num_jobs: ``(B, m)`` total job counts.
        done: ``(B, m)`` completed job counts.
        remaining: ``(B, m)`` remaining work of the active jobs.
        active_requirements: ``(B, m)`` bottleneck requirements.
        active_req_matrix: ``(B, k, m)`` per-resource requirements.
        active_weights: ``(B, m)`` objective weights.
        active_deadlines: ``(B, m)`` due steps (``inf`` when absent).
        resource_spent: ``(B, k)`` cumulative resource-time used.
    """

    __slots__ = (
        "instances",
        "t",
        "num_lanes",
        "num_resources",
        "lane_num_processors",
        "lane_num_resources",
        "num_jobs",
        "done",
        "remaining",
        "active_requirements",
        "active_req_matrix",
        "active_weights",
        "active_deadlines",
        "resource_spent",
        "_req",
        "_reqk",
        "_work",
        "_wgt",
        "_dl",
        "_release",
        "_released",
        "_all_released",
    )

    def __init__(self, instances: Sequence[Instance]) -> None:
        if not instances:
            raise BackendError("batch state needs at least one instance")
        B = len(instances)
        m = max(inst.num_processors for inst in instances)
        nmax = max(inst.max_jobs for inst in instances)
        k = max(inst.num_resources for inst in instances)
        self.instances = tuple(instances)
        self.t = 0
        self.num_lanes = B
        self.num_resources = k
        self.lane_num_processors = np.array(
            [inst.num_processors for inst in instances], dtype=np.int64
        )
        self.lane_num_resources = np.array(
            [inst.num_resources for inst in instances], dtype=np.int64
        )
        self.num_jobs = np.zeros((B, m), dtype=np.int64)
        self.done = np.zeros((B, m), dtype=np.int64)
        self._req = np.zeros((B, m, nmax), dtype=np.float64)
        self._work = np.zeros((B, m, nmax), dtype=np.float64)
        self._wgt = np.zeros((B, m, nmax), dtype=np.float64)
        self._dl = np.full((B, m, nmax), np.inf, dtype=np.float64)
        self._release = np.zeros((B, m), dtype=np.int64)
        self._reqk = (
            None if k == 1 else np.zeros((B, k, m, nmax), dtype=np.float64)
        )
        # The same job objects -- and, queue by queue, the same *queue
        # tuples* -- recur across lanes (neighborhood batches permute
        # one bag, and each move touches at most two queues), so float
        # conversions are memoized as rows of a shared table, row
        # indices are memoized per queue, and slots are filled with a
        # handful of fancy-index scatters instead of five scalar
        # writes per job.
        rows: dict[int, int] = {}
        table: list[tuple[float, float, float, float]] = []
        table_k: list[tuple[float, ...]] = []
        q_rows: dict[tuple, np.ndarray] = {}
        entry_b: list[int] = []
        entry_i: list[int] = []
        entry_n: list[int] = []
        r_parts: list[np.ndarray] = []
        for b, inst in enumerate(instances):
            releases = inst.releases
            for i, queue in enumerate(inst.queues):
                n = len(queue)
                self.num_jobs[b, i] = n
                self._release[b, i] = releases[i]
                if not n:  # pragma: no cover - queues are never empty
                    continue
                ri_q = q_rows.get(queue)
                if ri_q is None:
                    idxs = []
                    for job in queue:
                        row = rows.get(id(job))
                        if row is None:
                            row = len(table)
                            rows[id(job)] = row
                            table.append(
                                (
                                    float(job.requirement),
                                    float(job.work),
                                    float(job.weight),
                                    (
                                        np.inf
                                        if job.deadline is None
                                        else float(job.deadline)
                                    ),
                                )
                            )
                            if self._reqk is not None:
                                reqs = tuple(
                                    float(r) for r in job.requirements
                                )
                                table_k.append(
                                    reqs + (0.0,) * (k - len(reqs))
                                )
                        idxs.append(row)
                    ri_q = np.array(idxs, dtype=np.intp)
                    q_rows[queue] = ri_q
                entry_b.append(b)
                entry_i.append(i)
                entry_n.append(n)
                r_parts.append(ri_q)
        if r_parts:
            tab = np.array(table, dtype=np.float64)  # (J, 4)
            counts = np.array(entry_n, dtype=np.intp)
            bi = np.repeat(np.array(entry_b, dtype=np.intp), counts)
            ii = np.repeat(np.array(entry_i, dtype=np.intp), counts)
            total = int(counts.sum())
            starts = np.cumsum(counts) - counts
            ji = np.arange(total, dtype=np.intp) - np.repeat(starts, counts)
            ri = np.concatenate(r_parts)
            self._req[bi, ii, ji] = tab[ri, 0]
            self._work[bi, ii, ji] = tab[ri, 1]
            self._wgt[bi, ii, ji] = tab[ri, 2]
            self._dl[bi, ii, ji] = tab[ri, 3]
            if self._reqk is not None:
                tab_k = np.array(table_k, dtype=np.float64)  # (J, k)
                self._reqk[bi, :, ii, ji] = tab_k[ri]
        self._released = self._release <= 0
        self._all_released = bool(self._released.all())
        self.remaining = np.where(self._released, self._work[:, :, 0], 0.0)
        self.active_requirements = np.where(
            self._released, self._req[:, :, 0], 0.0
        )
        self.active_weights = np.where(self._released, self._wgt[:, :, 0], 0.0)
        self.active_deadlines = np.where(
            self._released, self._dl[:, :, 0], np.inf
        )
        self.resource_spent = np.zeros((B, k), dtype=np.float64)
        if self._reqk is None:
            self.active_req_matrix = self.active_requirements.reshape(B, 1, m)
        else:
            self.active_req_matrix = np.where(
                self._released[:, None, :], self._reqk[:, :, :, 0], 0.0
            )

    @property
    def num_processors(self) -> int:
        """The padded processor count ``m``."""
        return int(self.num_jobs.shape[1])

    @property
    def active_mask(self) -> np.ndarray:
        """``(B, m)`` mask of released processors with unfinished jobs."""
        if self._all_released:
            return self.done < self.num_jobs
        return self._released & (self.done < self.num_jobs)

    @property
    def pending_mask(self) -> np.ndarray:
        """``(B, m)`` mask of processors with unfinished jobs."""
        return self.done < self.num_jobs

    @property
    def released_mask(self) -> np.ndarray:
        """``(B, m)`` mask of processors whose release time has arrived."""
        return self._released.copy()

    @property
    def jobs_remaining(self) -> np.ndarray:
        """``(B, m)`` remaining job counts."""
        return self.num_jobs - self.done

    @property
    def lane_done(self) -> np.ndarray:
        """``(B,)`` mask of lanes whose every job has finished."""
        return ~(self.done < self.num_jobs).any(axis=1)

    @property
    def all_done(self) -> bool:
        """True once every lane has finished."""
        return bool((self.done >= self.num_jobs).all())

    @property
    def lane_waiting(self) -> np.ndarray:
        """``(B,)`` mask of lanes with unreleased pending processors."""
        if self._all_released:
            return np.zeros(self.num_lanes, dtype=bool)
        return (~self._released & (self.num_jobs > 0)).any(axis=1)

    def begin_step(self) -> None:
        """Unmask processors whose release time has arrived (all lanes)."""
        if self._all_released:
            return
        newly = ~self._released & (self._release <= self.t)
        if newly.any():
            bl, bi = np.nonzero(newly)
            d = self.done[bl, bi]
            self.remaining[bl, bi] = self._work[bl, bi, d]
            self.active_requirements[bl, bi] = self._req[bl, bi, d]
            self.active_weights[bl, bi] = self._wgt[bl, bi, d]
            self.active_deadlines[bl, bi] = self._dl[bl, bi, d]
            if self._reqk is not None:
                self.active_req_matrix[bl, :, bi] = self._reqk[bl, :, bi, d]
            self._released |= newly
            self._all_released = bool(self._released.all())

    def advance(self, lanes: np.ndarray, procs: np.ndarray) -> None:
        """Complete the active jobs at the ``(lane, processor)`` pairs.

        Loads the successor job (or zeros the slot) on each, exactly as
        :meth:`~repro.backends.vector.VectorState.advance` does per
        lane.
        """
        self.done[lanes, procs] += 1
        d = self.done[lanes, procs]
        has_next = d < self.num_jobs[lanes, procs]
        hl, hi, hd = lanes[has_next], procs[has_next], d[has_next]
        self.remaining[hl, hi] = self._work[hl, hi, hd]
        self.active_requirements[hl, hi] = self._req[hl, hi, hd]
        self.active_weights[hl, hi] = self._wgt[hl, hi, hd]
        self.active_deadlines[hl, hi] = self._dl[hl, hi, hd]
        el, ei = lanes[~has_next], procs[~has_next]
        self.remaining[el, ei] = 0.0
        self.active_requirements[el, ei] = 0.0
        self.active_weights[el, ei] = 0.0
        self.active_deadlines[el, ei] = np.inf
        if self._reqk is not None:
            self.active_req_matrix[hl, :, hi] = self._reqk[hl, :, hi, hd]
            self.active_req_matrix[el, :, ei] = 0.0

    def compact(self, keep: np.ndarray) -> None:
        """Shrink the batch to the lanes selected by the *keep* mask.

        Dropped lanes must already be finished: a dead lane holds only
        exact zeros (shares, remaining work, requirements), and every
        step operation is elementwise or a lane-row reduction, so
        removing such lanes cannot perturb any surviving lane's
        arithmetic.  Callers own the lane-index bookkeeping (results
        are reported against original lane indices via an origin map).
        """
        idx = np.flatnonzero(keep)
        if not idx.size:
            raise BackendError("compaction must keep at least one lane")
        self.instances = tuple(self.instances[int(b)] for b in idx)
        self.num_lanes = int(idx.size)
        self.lane_num_processors = self.lane_num_processors[idx]
        self.lane_num_resources = self.lane_num_resources[idx]
        self.num_jobs = self.num_jobs[idx]
        self.done = self.done[idx]
        self._req = self._req[idx]
        self._work = self._work[idx]
        self._wgt = self._wgt[idx]
        self._dl = self._dl[idx]
        self._release = self._release[idx]
        self._released = self._released[idx]
        self._all_released = bool(self._released.all())
        self.remaining = self.remaining[idx]
        self.active_requirements = self.active_requirements[idx]
        self.active_weights = self.active_weights[idx]
        self.active_deadlines = self.active_deadlines[idx]
        self.resource_spent = self.resource_spent[idx]
        if self._reqk is None:
            # The k == 1 share-matrix view aliases active_requirements;
            # slicing produced a fresh array, so rebuild the view.
            self.active_req_matrix = self.active_requirements.reshape(
                self.num_lanes, 1, self.num_processors
            )
        else:
            self._reqk = self._reqk[idx]
            self.active_req_matrix = self.active_req_matrix[idx]


class _LaneView:
    """Single-lane, real-size view of a batch state.

    Presents one lane's slices under the
    :class:`~repro.backends.vector.VectorState` read API, so policies
    without a :meth:`~repro.algorithms.base.Policy.shares_batch` path
    run their ordinary ``shares_array`` per lane, bit-identical to a
    standalone vector run (the views expose exactly the real
    ``m_lane`` / ``k_lane`` prefix of each array).
    """

    __slots__ = ("_s", "_b", "_m", "_k")

    def __init__(self, state: BatchVectorState, b: int) -> None:
        self._s = state
        self._b = b
        self._m = int(state.lane_num_processors[b])
        self._k = int(state.lane_num_resources[b])

    @property
    def instance(self) -> Instance:
        """The lane's original :class:`~repro.core.instance.Instance`."""
        return self._s.instances[self._b]

    @property
    def t(self) -> int:
        """The shared step counter."""
        return self._s.t

    @property
    def num_processors(self) -> int:
        """The lane's real processor count ``m``."""
        return self._m

    @property
    def num_resources(self) -> int:
        """The lane's real resource count ``k``."""
        return self._k

    @property
    def num_jobs(self) -> np.ndarray:
        """``(m,)`` per-processor job counts."""
        return self._s.num_jobs[self._b, : self._m]

    @property
    def done(self) -> np.ndarray:
        """``(m,)`` per-processor completed-job counts."""
        return self._s.done[self._b, : self._m]

    @property
    def remaining(self) -> np.ndarray:
        """``(m,)`` remaining work of each active job."""
        return self._s.remaining[self._b, : self._m]

    @property
    def active_requirements(self) -> np.ndarray:
        """``(m,)`` bottleneck requirements of the active jobs."""
        return self._s.active_requirements[self._b, : self._m]

    @property
    def active_req_matrix(self) -> np.ndarray:
        """``(k, m)`` per-resource requirements of the active jobs."""
        if self._k == 1:
            return self.active_requirements.reshape(1, self._m)
        return self._s.active_req_matrix[self._b, : self._k, : self._m]

    @property
    def active_weights(self) -> np.ndarray:
        """``(m,)`` objective weights of the active jobs."""
        return self._s.active_weights[self._b, : self._m]

    @property
    def active_deadlines(self) -> np.ndarray:
        """``(m,)`` due steps of the active jobs (``inf`` if none)."""
        return self._s.active_deadlines[self._b, : self._m]

    @property
    def resource_spent(self) -> np.ndarray:
        """``(k,)`` cumulative resource-time consumed."""
        return self._s.resource_spent[self._b, : self._k]

    @property
    def active_mask(self) -> np.ndarray:
        """``(m,)`` mask of released processors with unfinished jobs."""
        return self._s.active_mask[self._b, : self._m]

    @property
    def pending_mask(self) -> np.ndarray:
        """``(m,)`` mask of processors with unfinished jobs."""
        return self._s.pending_mask[self._b, : self._m]

    @property
    def released_mask(self) -> np.ndarray:
        """``(m,)`` mask of released processors."""
        return self._s.released_mask[self._b, : self._m]

    @property
    def jobs_remaining(self) -> np.ndarray:
        """``(m,)`` remaining job counts."""
        return self._s.jobs_remaining[self._b, : self._m]


@dataclass(slots=True)
class BatchRunResult:
    """Outcome of one batched run.

    Attributes:
        makespans: ``(B,)`` int64 makespans, in lane order.
        objective_values: per requested objective, the length-``B``
            list of lane values (same numbers ``B`` separate
            :class:`~repro.backends.vector.VectorBackend` runs would
            report).
        lanes: ``B``.
        steps: shared steps the batch executed (= the largest lane
            makespan; finished lanes ride along masked).
        lane_steps: sum of per-lane makespans -- the useful work the
            batch amortized its dispatch over.
        wall_seconds: end-to-end wall time of the run.
        batched_policy: True when the policy supplied a
            ``shares_batch`` path; False means lanes were stepped one
            by one through ``shares_array`` (the fallback).
        compactions: how many times the runtime shrank the batch to
            its surviving lanes (ragged batches only; 0 when every
            lane finishes near the same step).
        compiled: True when the run was served by the fused compiled
            driver instead of the per-step array program.
    """

    makespans: np.ndarray
    objective_values: dict[str, list]
    lanes: int
    steps: int
    lane_steps: int
    wall_seconds: float
    batched_policy: bool
    compactions: int = 0
    compiled: bool = False


class BatchVectorRuntime:
    """Step ``B`` instances through one policy with shared array programs.

    Args:
        instances: the batch, one lane per instance (ragged batches --
            mixed processor counts, queue lengths, resource counts,
            releases -- are padded; mixed makespans terminate lanes
            early).
        policy: the policy (registry name or object).  Must support
            the vector path; lanes fall back to per-lane
            ``shares_array`` stepping unless it also implements
            ``shares_batch``.
        tol: completion / feasibility tolerance (as
            :class:`~repro.backends.vector.VectorBackend`).
        compiled: compiled-tier mode (``"auto"``/``"on"``/``"off"`` or
            a boolean).  ``"auto"`` sends eligible runs (built-in
            policy, numba importable) through the fused driver and
            falls back silently otherwise; ``"on"`` forces it (raising
            :class:`~repro.exceptions.CompiledUnsupportedError` when
            ineligible); ``"off"`` always uses the per-step array
            program.
        compact_threshold: live-lane fraction below which a ragged
            batch compacts to its surviving lanes (``None`` or ``0``
            disables compaction).
    """

    def __init__(
        self,
        instances: Sequence[Instance],
        policy,
        *,
        tol: float = 1e-9,
        compiled: str | bool = "auto",
        compact_threshold: float | None = 0.5,
    ) -> None:
        from ..algorithms import resolve_policy  # local: avoid import cycle

        if tol <= 0:
            raise ValueError("tol must be positive")
        policy = resolve_policy(policy)
        if not (
            getattr(policy, "supports_batch", False)
            or getattr(policy, "supports_vector", False)
        ):
            raise VectorizationUnsupportedError(
                f"policy {getattr(policy, 'name', policy)!r} implements "
                "neither shares_batch nor shares_array; use backend='exact'"
            )
        self.policy = policy
        self.state = BatchVectorState(instances)
        self.tol = float(tol)
        self.batched_policy = bool(getattr(policy, "supports_batch", False))
        self.compiled = normalize_compiled(compiled)
        if compact_threshold is not None and not (
            0.0 <= float(compact_threshold) <= 1.0
        ):
            raise ValueError("compact_threshold must be in [0, 1] or None")
        self.compact_threshold = (
            None if compact_threshold is None else float(compact_threshold)
        )

    # ------------------------------------------------------------------
    # Step phases
    # ------------------------------------------------------------------
    def _query(self) -> np.ndarray:
        """One share row per lane, batched or via per-lane fallback."""
        state = self.state
        if self.batched_policy:
            return np.asarray(
                self.policy.shares_batch(state), dtype=np.float64
            )
        if state.num_resources == 1:
            shares = np.zeros(
                (state.num_lanes, state.num_processors), dtype=np.float64
            )
        else:
            shares = np.zeros(
                (
                    state.num_lanes,
                    state.num_resources,
                    state.num_processors,
                ),
                dtype=np.float64,
            )
        lane_done = state.lane_done
        for b in range(state.num_lanes):
            if lane_done[b]:
                continue
            view = _LaneView(state, b)
            row = np.asarray(
                self.policy.shares_array(view), dtype=np.float64
            )
            if state.num_resources == 1:
                shares[b, : view.num_processors] = row
            elif view.num_resources == 1:
                shares[b, 0, : view.num_processors] = row
            else:
                shares[b, : view.num_resources, : view.num_processors] = row
        return shares

    def _check(self, shares: np.ndarray) -> None:
        """Tolerance-aware feasibility check over every lane."""
        state = self.state
        tol = self.tol
        m = state.num_processors
        k = state.num_resources
        expected = (
            (state.num_lanes, m) if k == 1 else (state.num_lanes, k, m)
        )
        if shares.shape != expected:
            raise InfeasibleAssignmentError(
                f"policy returned shape {shares.shape} shares for a "
                f"batch of {state.num_lanes} lanes, {m} processors and "
                f"{k} resource(s) at step {state.t} (expected {expected})"
            )
        if (shares < -tol).any() or (shares > 1.0 + tol).any():
            raise InfeasibleAssignmentError(
                f"step {state.t}: share outside [0, 1] in batch "
                f"(min={shares.min()}, max={shares.max()})"
            )
        totals = shares.sum(axis=-1)
        worst = float(totals.max())
        if worst > 1.0 + tol:
            lane = int(np.argmax(totals.reshape(state.num_lanes, -1).max(axis=1)))
            raise InfeasibleAssignmentError(
                f"step {state.t}: resource overused in lane {lane} "
                f"(sum of shares = {worst} > 1)"
            )

    def _apply(
        self, shares: np.ndarray
    ) -> tuple[list[tuple[int, int, int]], np.ndarray]:
        """Advance every lane one step.

        Returns the completed ``(lane, processor, job)`` triples and
        the per-lane progress mask.
        """
        state = self.state
        tol = self.tol
        had_work = state.active_mask
        if state.num_resources == 1:
            speed = np.minimum(shares, state.active_requirements)
            work = np.minimum(speed, state.remaining)
            np.maximum(work, 0.0, out=work)
            state.remaining -= work
            state.resource_spent[:, 0] += work.sum(axis=1)
        else:
            work = self._multi_work(shares)
            state.remaining -= work
        finished = had_work & (state.remaining <= tol)
        completed: list[tuple[int, int, int]] = []
        bl, bi = np.nonzero(finished)
        if bl.size:
            completed = list(
                zip(bl.tolist(), bi.tolist(), state.done[bl, bi].tolist())
            )
            state.advance(bl, bi)
        progressed = finished.any(axis=1) | (work.sum(axis=1) > tol)
        state.t += 1
        return completed, progressed

    def _multi_work(self, shares: np.ndarray) -> np.ndarray:
        """Per-processor work under a ``(B, k, m)`` share tensor.

        The bottleneck rule, elementwise over lanes; single-resource
        lanes in a mixed batch are overridden with the scalar rule so
        every lane stays bit-identical to its standalone vector run.
        """
        state = self.state
        req = state.active_req_matrix  # (B, k, m)
        rstar = state.active_requirements  # (B, m)
        needed = req > 0.0
        ratio = np.divide(
            np.minimum(shares, req),
            req,
            out=np.full_like(req, np.inf),
            where=needed,
        )
        fraction = ratio.min(axis=1)  # (B, m); inf where nothing needed
        positive = rstar > 0.0
        work = np.zeros_like(rstar)
        work[positive] = np.minimum(
            fraction[positive] * rstar[positive], state.remaining[positive]
        )
        np.maximum(work, 0.0, out=work)
        scalar = state.lane_num_resources == 1
        if scalar.any():
            row = np.minimum(shares[:, 0, :], rstar)
            scalar_work = np.minimum(row, state.remaining)
            np.maximum(scalar_work, 0.0, out=scalar_work)
            work[scalar] = scalar_work[scalar]
        progress = np.zeros_like(work)
        progress[positive] = work[positive] / rstar[positive]
        state.resource_spent += (req * progress[:, None, :]).sum(axis=2)
        return work

    # ------------------------------------------------------------------
    # The batched loop
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        objectives: Iterable = (),
        max_steps: int | None = None,
        stall_limit: int = 3,
    ) -> BatchRunResult:
        """Drive every lane to completion and report per-lane results.

        Semantics mirror :func:`repro.core.kernel.run_kernel` per lane:
        per-lane step limits (*max_steps* or each instance's
        :func:`~repro.core.simulator.default_step_limit`), per-lane
        stall detection (*stall_limit* consecutive zero-progress steps
        while not waiting on a release), and lane-wise objective
        accumulation through the standard accumulator contract.

        Under an installed telemetry session the run is wrapped in a
        ``batched.run`` span (with per-step ``batched.step`` records
        when tracing is on) and fills the ``batch.lanes`` gauge plus
        ``batched.steps`` / ``batched.lane_steps`` / ``batched.runs``
        counters.

        Raises:
            SimulationLimitError: when any live lane exceeds its step
                limit or stalls.
            InfeasibleAssignmentError: when the policy emits an
                invalid share row for any lane.
        """
        from ..core.simulator import default_step_limit  # lazy: no cycle
        from ..telemetry import get_session

        objectives = resolve_objectives(tuple(objectives))
        if self.compiled != "off":
            decision = decide(self.policy, self.compiled)
            if decision.code is not None:
                return self._run_compiled(
                    decision.code,
                    objectives=objectives,
                    max_steps=max_steps,
                    stall_limit=stall_limit,
                )
            note_fallback(decision.reason)
        state = self.state
        B = state.num_lanes
        if max_steps is None:
            limits = np.array(
                [default_step_limit(inst) for inst in state.instances],
                dtype=np.int64,
            )
        else:
            limits = np.full(B, int(max_steps), dtype=np.int64)
        accumulators = [
            [obj.start(inst) for inst in state.instances]
            for obj in objectives
        ]
        values: list[list] = [[None] * B for _ in objectives]
        makespans = np.zeros(B, dtype=np.int64)
        stalled = np.zeros(B, dtype=np.int64)
        # Results are reported against *original* lane indices; the
        # state may compact to its surviving lanes mid-run, so this
        # map tracks where each current lane started.
        origin = np.arange(B, dtype=np.int64)
        threshold = self.compact_threshold
        compactions = 0
        live = ~state.lane_done
        # Lanes born finished (no jobs at all) have makespan 0.
        for b in np.flatnonzero(~live):
            for o in range(len(objectives)):
                values[o][b] = accumulators[o][b].finish(0)
        t0 = perf_counter()
        session = get_session()
        tracer = session.tracer if session is not None else None
        trace_steps = tracer is not None and tracer.enabled
        steps = 0
        while live.any():
            over = live & (state.t >= limits)
            if over.any():
                lane = int(np.argmax(over))
                raise SimulationLimitError(
                    f"batched run: lane {int(origin[lane])} did not finish "
                    f"within {int(limits[lane])} steps "
                    f"(done={state.done[lane].tolist()})"
                )
            ts = perf_counter() if trace_steps else 0.0
            t = state.t
            state.begin_step()
            shares = self._query()
            self._check(shares)
            completed, progressed = self._apply(shares)
            steps += 1
            if objectives:
                for b, i, j in completed:
                    for o in range(len(objectives)):
                        accumulators[o][b].complete((i, j), t)
            lane_done = state.lane_done
            newly_done = live & lane_done
            if newly_done.any():
                for b in np.flatnonzero(newly_done):
                    ob = int(origin[b])
                    makespans[ob] = t + 1
                    for o in range(len(objectives)):
                        values[o][ob] = accumulators[o][b].finish(t + 1)
                live &= ~lane_done
            waiting = state.lane_waiting
            stalled = np.where(
                ~live | progressed | waiting, 0, stalled + 1
            )
            if (stalled >= stall_limit).any():
                lane = int(np.argmax(stalled >= stall_limit))
                raise SimulationLimitError(
                    f"batched run: lane {int(origin[lane])} made no "
                    f"progress for {int(stalled[lane])} consecutive steps "
                    f"(t={state.t}); aborting"
                )
            if trace_steps:
                tracer.complete(
                    "batched.step",
                    ts,
                    perf_counter() - ts,
                    t=t,
                    live=int(live.sum()),
                    completed=len(completed),
                )
            if (
                threshold
                and live.size >= 4
                and 0 < live.sum() < threshold * live.size
            ):
                state.compact(live)
                origin = origin[live]
                limits = limits[live]
                stalled = stalled[live]
                keep = np.flatnonzero(live)
                for o in range(len(objectives)):
                    accumulators[o] = [accumulators[o][b] for b in keep]
                live = np.ones(state.num_lanes, dtype=bool)
                compactions += 1
        wall = perf_counter() - t0
        result = BatchRunResult(
            makespans=makespans,
            objective_values={
                obj.name: values[o] for o, obj in enumerate(objectives)
            },
            lanes=B,
            steps=steps,
            lane_steps=int(makespans.sum()),
            wall_seconds=wall,
            batched_policy=self.batched_policy,
            compactions=compactions,
        )
        if session is not None:
            self._record_telemetry(session, result, start=t0)
        return result

    def _run_compiled(
        self,
        policy_code: int,
        *,
        objectives,
        max_steps: int | None,
        stall_limit: int,
    ) -> BatchRunResult:
        """Serve the batch through the fused compiled driver, lane by lane.

        Each lane is one whole-run JIT region (no per-step Python at
        all), then its completion table is replayed through the
        objective recorders -- same numbers, same exceptions as the
        per-step batched loop.
        """
        from ..core.kernel import ObjectiveRecorder  # lazy: no cycle
        from ..telemetry import get_session

        instances = self.state.instances
        B = len(instances)
        makespans = np.zeros(B, dtype=np.int64)
        values: list[list] = [[None] * B for _ in objectives]
        t0 = perf_counter()
        for b, inst in enumerate(instances):
            recorders = [ObjectiveRecorder(obj, inst) for obj in objectives]
            makespan, completion = run_fused_instance(
                inst,
                policy_code,
                tol=self.tol,
                max_steps=max_steps,
                stall_limit=stall_limit,
                label=f"batched lane {b}",
            )
            replay_run(completion, makespan, recorders)
            makespans[b] = makespan
            for o, recorder in enumerate(recorders):
                values[o][b] = recorder.value
        wall = perf_counter() - t0
        result = BatchRunResult(
            makespans=makespans,
            objective_values={
                obj.name: values[o] for o, obj in enumerate(objectives)
            },
            lanes=B,
            steps=int(makespans.max()) if B else 0,
            lane_steps=int(makespans.sum()),
            wall_seconds=wall,
            batched_policy=self.batched_policy,
            compactions=0,
            compiled=True,
        )
        session = get_session()
        if session is not None:
            session.metrics.counter("compiled.runs").inc(B)
            session.metrics.counter("compiled.steps").inc(result.lane_steps)
            self._record_telemetry(session, result, start=t0)
        return result

    def _record_telemetry(
        self, session, result: BatchRunResult, *, start: float
    ) -> None:
        """Emit the batched-run span and metrics."""
        metrics = session.metrics
        metrics.gauge("batch.lanes").set(result.lanes)
        metrics.counter("batched.runs").inc()
        metrics.counter("batched.steps").inc(result.steps)
        metrics.counter("batched.lane_steps").inc(result.lane_steps)
        if result.compactions:
            metrics.counter("batch.compactions").inc(result.compactions)
        session.tracer.complete(
            "batched.run",
            start,
            result.wall_seconds,
            lanes=result.lanes,
            steps=result.steps,
            lane_steps=result.lane_steps,
            policy=str(getattr(self.policy, "name", "?")),
            m=self.state.num_processors,
            resources=self.state.num_resources,
            batched_policy=result.batched_policy,
            compiled=result.compiled,
        )


def run_batch(
    instances: Sequence[Instance],
    policy,
    *,
    objectives: Iterable = (),
    tol: float = 1e-9,
    max_steps: int | None = None,
    stall_limit: int = 3,
    compiled: str | bool = "auto",
    compact_threshold: float | None = 0.5,
) -> BatchRunResult:
    """Run *policy* over a batch of instances in one shared array program.

    The convenience entry point over :class:`BatchVectorRuntime`: the
    batched counterpart of ``B`` separate
    ``get_backend("vector").run(...)`` calls, returning the same
    makespans and objective values as length-``B`` vectors.

    Example:
        >>> from repro.core import Instance
        >>> batch = [
        ...     Instance.from_percent([[50, 50], [50, 50]]),
        ...     Instance.from_percent([[100], [100], [100]]),
        ... ]
        >>> run_batch(batch, "greedy-balance").makespans.tolist()
        [2, 3]
    """
    runtime = BatchVectorRuntime(
        instances,
        policy,
        tol=tol,
        compiled=compiled,
        compact_threshold=compact_threshold,
    )
    return runtime.run(
        objectives=objectives, max_steps=max_steps, stall_limit=stall_limit
    )
