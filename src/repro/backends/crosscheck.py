"""Exact-vs-vector cross-validation on a single instance.

The float backend earns its place by agreeing with the exact one;
:func:`cross_validate` runs both on the same instance and policy and
reports makespan agreement (relative error) plus the largest per-step
share deviation.  The test-suite runs this over hundreds of random
instances; the CLI exposes it as ``crsharing crosscheck`` so any
suspicious campaign result can be audited in one command.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import Instance
from .exact import ExactBackend
from .vector import VectorBackend

__all__ = ["CrossCheckResult", "cross_validate"]


@dataclass(slots=True)
class CrossCheckResult:
    """Agreement report between the exact and vector backends.

    Attributes:
        exact_makespan: makespan from the exact backend.
        vector_makespan: makespan from the vector backend.
        makespan_rel_error: ``|vector - exact| / exact``.
        max_share_deviation: largest absolute per-step, per-processor
            share difference over the steps both runs executed
            (``None`` when shares were not compared).
        objective_values: objective name -> ``(exact, vector)`` value
            pair for every objective requested via ``objectives=``.
        max_objective_error: largest relative error over the compared
            objective values (``None`` when none were requested).
        ok: True iff the makespans -- and all requested objective
            values -- agree within the requested relative tolerance.
        certificate: the optimality
            :class:`~repro.analysis.certify.Certificate` of the
            sequenced instance when ``certify=True`` (``None``
            otherwise).
        opt_gap: ``(exact_makespan - OPT) / OPT`` against a *proved*
            certificate (``None`` without one).
    """

    exact_makespan: int
    vector_makespan: int
    makespan_rel_error: float
    max_share_deviation: float | None
    ok: bool
    objective_values: dict[str, tuple[object, object]] = None
    max_objective_error: float | None = None
    certificate: object | None = None
    opt_gap: float | None = None


def cross_validate(
    instance: Instance,
    policy,
    *,
    rtol: float = 1e-9,
    tol: float = 1e-9,
    compare_shares: bool = True,
    objectives=(),
    sequencer=None,
    certify: bool = False,
    certify_max_nodes: int = 100_000,
    compiled: str | bool | None = None,
) -> CrossCheckResult:
    """Run *policy* on *instance* through both backends and compare.

    Args:
        instance: the instance to audit.
        policy: a policy with a vectorized path, or a registry name
            (resolved via :func:`repro.algorithms.resolve_policy`).
        rtol: allowed relative makespan error (makespans are integers,
            so any ``rtol < 1/makespan`` demands exact equality).
        tol: completion tolerance for the vector backend.
        compare_shares: also compute the max per-step share deviation
            (needs both runs recorded; skip for bulk audits).
        objectives: objectives (registry names or instances) whose
            online values must also agree between the backends.  Flow
            and tardiness values are derived from integer completion
            steps on both sides, so agreement within *rtol* on grid
            instances means exact agreement.
        sequencer: optional :class:`~repro.sequencing.Sequencer` (or
            registry name) applied *once* before both runs, so the
            audit compares the backends on the same re-sequenced
            queues.  Unpinned local-search options are bound to the
            audited policy (and the single requested objective, if
            exactly one).
        certify: also certify the optimal queue order of the (already
            sequenced) instance via
            :func:`repro.analysis.certify.certify_opt` and **assert**
            that both backends' makespans are >= the certified value
            -- a violation means a backend undercut a proven lower
            bound (a kernel bug) and raises
            :class:`~repro.exceptions.BackendError`.  Instances
            outside the exact oracles' model are certified in the
            epsilon mode against the audited policy (still a valid
            lower bound for *this policy's* runs).  Unproved
            certificates (node budget) skip the assertion.
        certify_max_nodes: branch-and-bound node budget for *certify*.
        compiled: compiled-tier mode for the *vector* run
            (``"auto"``/``"on"``/``"off"`` or a boolean, see
            :mod:`repro.kernels`); ``None`` keeps the backend default.
            ``"on"`` pins the audit against the fused driver -- share
            comparison is then disabled (the driver records
            completions, not per-step rows), so the report's
            ``max_share_deviation`` is ``None``.

    Raises:
        BackendError: when ``certify=True`` produced a proved
            certificate and either backend finished below it.
    """
    from ..algorithms import resolve_policy  # local: avoid import cycle

    policy = resolve_policy(policy)
    objectives = tuple(objectives)  # both backend runs consume it
    if compiled is not None:
        from ..kernels import normalize_compiled  # local: avoid import cycle

        compiled = normalize_compiled(compiled)
        if compiled == "on":
            # The fused driver has no per-step share rows to compare.
            compare_shares = False
    if sequencer is not None:
        from ..sequencing import resolve_sequencer  # local: builds on core

        instance = (
            resolve_sequencer(sequencer)
            .bind(
                policy=policy,
                objective=objectives[0] if len(objectives) == 1 else None,
            )
            .sequence(instance)
        )
    exact = ExactBackend().run(
        instance, policy, record_shares=compare_shares, objectives=objectives
    )
    vector = VectorBackend(tol=tol).run(
        instance,
        policy,
        record_shares=compare_shares,
        objectives=objectives,
        compiled=compiled,
    )
    rel = (
        abs(vector.makespan - exact.makespan) / exact.makespan
        if exact.makespan
        else 0.0
    )
    deviation: float | None = None
    if compare_shares:
        steps = min(exact.makespan, vector.makespan)
        # Rows are flat (m,) vectors for k=1 and (k, m) matrices for
        # multi-resource instances; numpy converts the exact Fractions
        # elementwise either way.
        exact_rows = np.array(exact.shares[:steps], dtype=np.float64)
        vector_rows = np.asarray(vector.shares)[:steps]
        deviation = (
            float(np.abs(exact_rows - vector_rows).max()) if steps else 0.0
        )
    pairs: dict[str, tuple[object, object]] = {}
    worst_obj: float | None = None
    for name, exact_value in exact.objective_values.items():
        vector_value = vector.objective_values[name]
        pairs[name] = (exact_value, vector_value)
        scale = max(1.0, abs(float(exact_value)))
        err = abs(float(exact_value) - float(vector_value)) / scale
        worst_obj = err if worst_obj is None else max(worst_obj, err)
    ok = rel <= rtol and (worst_obj is None or worst_obj <= rtol)
    certificate = None
    opt_gap: float | None = None
    if certify:
        from ..analysis.certify import certify_opt  # local: builds on this
        from ..exceptions import BackendError

        oracle_model = (
            instance.is_single_resource
            and instance.is_unit_size
            and not instance.has_releases
        )
        if oracle_model:
            certificate = certify_opt(instance, max_nodes=certify_max_nodes)
        else:
            certificate = certify_opt(
                instance, policy=policy, max_nodes=certify_max_nodes
            )
        if certificate.proved:
            floor = certificate.value - (
                0.0 if certificate.mode == "exact" else rtol * certificate.value
            )
            if exact.makespan < floor or vector.makespan < floor:
                raise BackendError(
                    f"backend undercut a proved optimality certificate: "
                    f"certified OPT={certificate.value} "
                    f"({certificate.mode}) but exact ran "
                    f"{exact.makespan}, vector {vector.makespan}"
                )
            opt_gap = certificate.gap(exact.makespan)
    return CrossCheckResult(
        exact_makespan=exact.makespan,
        vector_makespan=vector.makespan,
        makespan_rel_error=rel,
        max_share_deviation=deviation,
        ok=ok,
        objective_values=pairs or None,
        max_objective_error=worst_obj,
        certificate=certificate,
        opt_gap=opt_gap,
    )
