"""Exact-vs-vector cross-validation on a single instance.

The float backend earns its place by agreeing with the exact one;
:func:`cross_validate` runs both on the same instance and policy and
reports makespan agreement (relative error) plus the largest per-step
share deviation.  The test-suite runs this over hundreds of random
instances; the CLI exposes it as ``crsharing crosscheck`` so any
suspicious campaign result can be audited in one command.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import Instance
from .exact import ExactBackend
from .vector import VectorBackend

__all__ = ["CrossCheckResult", "cross_validate"]


@dataclass(slots=True)
class CrossCheckResult:
    """Agreement report between the exact and vector backends.

    Attributes:
        exact_makespan: makespan from the exact backend.
        vector_makespan: makespan from the vector backend.
        makespan_rel_error: ``|vector - exact| / exact``.
        max_share_deviation: largest absolute per-step, per-processor
            share difference over the steps both runs executed
            (``None`` when shares were not compared).
        ok: True iff the makespans agree within the requested relative
            tolerance.
    """

    exact_makespan: int
    vector_makespan: int
    makespan_rel_error: float
    max_share_deviation: float | None
    ok: bool


def cross_validate(
    instance: Instance,
    policy,
    *,
    rtol: float = 1e-9,
    tol: float = 1e-9,
    compare_shares: bool = True,
) -> CrossCheckResult:
    """Run *policy* on *instance* through both backends and compare.

    Args:
        instance: the instance to audit.
        policy: a policy with a vectorized path.
        rtol: allowed relative makespan error (makespans are integers,
            so any ``rtol < 1/makespan`` demands exact equality).
        tol: completion tolerance for the vector backend.
        compare_shares: also compute the max per-step share deviation
            (needs both runs recorded; skip for bulk audits).
    """
    exact = ExactBackend().run(
        instance, policy, record_shares=compare_shares
    )
    vector = VectorBackend(tol=tol).run(
        instance, policy, record_shares=compare_shares
    )
    rel = (
        abs(vector.makespan - exact.makespan) / exact.makespan
        if exact.makespan
        else 0.0
    )
    deviation: float | None = None
    if compare_shares:
        steps = min(exact.makespan, vector.makespan)
        # Rows are flat (m,) vectors for k=1 and (k, m) matrices for
        # multi-resource instances; numpy converts the exact Fractions
        # elementwise either way.
        exact_rows = np.array(exact.shares[:steps], dtype=np.float64)
        vector_rows = np.asarray(vector.shares)[:steps]
        deviation = (
            float(np.abs(exact_rows - vector_rows).max()) if steps else 0.0
        )
    return CrossCheckResult(
        exact_makespan=exact.makespan,
        vector_makespan=vector.makespan,
        makespan_rel_error=rel,
        max_share_deviation=deviation,
        ok=rel <= rtol,
    )
