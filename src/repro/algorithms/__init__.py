"""Schedulers for CRSharing: the paper's algorithms plus oracles.

Online policies (run via :func:`repro.core.simulate` or
``policy.run(instance)``):

* :class:`RoundRobin` -- Section 4.2, worst-case ratio exactly 2;
* :class:`GreedyBalance` -- Section 8.3, worst-case ratio exactly
  ``2 - 1/m``;
* the :mod:`~repro.algorithms.heuristics` baselines.

Offline exact algorithms:

* :func:`opt_res_assignment` / :func:`opt_res_assignment_pq` --
  Algorithm 1, optimal for ``m = 2`` in ``O(n^2)``;
* :func:`opt_res_assignment_general` -- Algorithm 2, optimal for any
  fixed ``m`` in polynomial time (practical for small ``m``);
* :func:`brute_force_makespan` and :func:`milp_makespan` --
  independent optimality oracles for cross-validation;
* :func:`branch_and_bound_order` / :func:`enumerate_order_optimum` --
  exact optimization *over queue orders* (the NP-hard Theorem 4 axis),
  wrapped for certification by :mod:`repro.analysis.certify`.
"""

from .base import (
    Policy,
    available_policies,
    get_policy,
    register_policy,
    resolve_policy,
    water_fill,
    water_fill_multi,
)
from .brute_force import brute_force_makespan
from .fastpath import greedy_balance_makespan, round_robin_makespan
from .flowdeadline import EDFWaterfill, WeightedSRPT
from .greedy_balance import GreedyBalance
from .heuristics import (
    FewestRemainingJobsFirst,
    GreedyFinishJobs,
    LargestRequirementFirst,
    ProportionalShare,
)
from .milp import milp_feasible, milp_makespan
from .opt_general import OptGeneralResult, opt_res_assignment_general
from .opt_order import (
    OrderSearchResult,
    branch_and_bound_order,
    enumerate_order_optimum,
    exact_order_makespan,
    identity_order,
    order_invariant_lower_bound,
    order_space_size,
)
from .opt_two import OptTwoResult, opt_res_assignment, opt_res_assignment_pq
from .round_robin import RoundRobin, round_robin_makespan_formula, round_robin_phase

__all__ = [
    "EDFWaterfill",
    "FewestRemainingJobsFirst",
    "GreedyBalance",
    "GreedyFinishJobs",
    "LargestRequirementFirst",
    "OptGeneralResult",
    "OptTwoResult",
    "OrderSearchResult",
    "Policy",
    "ProportionalShare",
    "RoundRobin",
    "available_policies",
    "branch_and_bound_order",
    "brute_force_makespan",
    "enumerate_order_optimum",
    "exact_order_makespan",
    "get_policy",
    "greedy_balance_makespan",
    "identity_order",
    "milp_feasible",
    "milp_makespan",
    "order_invariant_lower_bound",
    "order_space_size",
    "round_robin_makespan",
    "opt_res_assignment",
    "opt_res_assignment_general",
    "opt_res_assignment_pq",
    "register_policy",
    "resolve_policy",
    "round_robin_makespan_formula",
    "round_robin_phase",
    "water_fill",
    "water_fill_multi",
    "WeightedSRPT",
]
