"""Objective-aware policies: deadline (EDF) and weighted flow (SRPT).

The water-filling mechanism (:func:`repro.algorithms.base.water_fill`)
separates *what order* from *how to grant*: every policy here only
contributes a priority order, so both inherit non-wasting, progressive
grants, the multi-resource (``k > 1``) generalization, and the
vectorized float path for free.

:class:`EDFWaterfill`
    Earliest-deadline-first water-filling for the tardiness/lateness
    objectives (the slack-priority policy the deadline literature
    suggests): among active jobs, the one whose due step is nearest --
    equivalently the one with the least slack ``d - t``, since ``t``
    is common to all jobs within a step -- drinks first.  Jobs without
    a deadline queue behind all deadline-carrying jobs.

:class:`WeightedSRPT`
    Weighted shortest-remaining-processing-time water-filling for the
    weighted flow objective, generalizing
    :class:`~repro.algorithms.heuristics.GreedyFinishJobs`: priority by
    smallest ``remaining work / weight``, so with unit weights the
    order (and therefore the schedule) is exactly GreedyFinishJobs'.
    Classic flow-time scheduling (SRPT and its weighted variants, cf.
    the mean response time literature) motivates the rule.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence

import numpy as np

from ..core.state import ExecState
from .base import (
    Policy,
    register_policy,
    sort_key,
    water_fill,
    water_fill_array,
    water_fill_array_batch,
)

__all__ = ["EDFWaterfill", "WeightedSRPT"]


@register_policy
class EDFWaterfill(Policy):
    """Earliest-deadline-first water-filling (tardiness-tuned).

    Priority: ascending due step of the active job (``inf`` for jobs
    without one), ties broken by smaller remaining work (finish the
    cheaper of two equally urgent jobs, maximizing completions), then
    processor index.  On instances without any deadlines every job
    ties at ``inf`` and the policy degenerates to remaining-work
    water-filling (= :class:`~repro.algorithms.heuristics.GreedyFinishJobs`).

    Example:
        >>> from repro.core import Instance
        >>> inst = Instance.from_percent([[60, 60], [60, 60]])
        >>> late_first = inst.with_deadlines([[4, 4], [1, 4]])
        >>> EDFWaterfill().run(late_first).completion_step(1, 0)
        0
    """

    name = "edf-waterfill"

    def shares(self, state: ExecState) -> Sequence[Fraction]:
        inst = state.instance

        def priority(i: int):
            job = inst.job(i, state.active_job(i))
            due = math.inf if job.deadline is None else job.deadline
            return (due, state.remaining_work(i), i)

        order = sorted(state.active_processors(), key=priority)
        return water_fill(state, order)

    def shares_array(self, state) -> np.ndarray:
        # lexsort: last key is primary.  Stable, so exact index
        # tie-breaking matches the exact path's (due, remaining, i).
        order = np.lexsort(
            (sort_key(state.remaining), state.active_deadlines)
        )
        return water_fill_array(state, order)

    def shares_batch(self, state) -> np.ndarray:
        order = np.lexsort(
            (sort_key(state.remaining), state.active_deadlines), axis=-1
        )
        return water_fill_array_batch(state, order)


@register_policy
class WeightedSRPT(Policy):
    """Weighted shortest-remaining-work-first water-filling (flow-tuned).

    Priority: ascending ``remaining work / weight`` of the active job
    -- the highest-weight-density work drains first -- with ties broken
    by smaller remaining work, then processor index.  Unit weights
    reproduce :class:`~repro.algorithms.heuristics.GreedyFinishJobs`
    exactly (same order, same schedule).

    Example:
        >>> from repro.core import Instance
        >>> inst = Instance.from_percent([[60, 60], [60, 60]])
        >>> heavy_p1 = inst.with_weights([[1, 1], [9, 1]])
        >>> WeightedSRPT().run(heavy_p1).completion_step(1, 0)
        0
    """

    name = "weighted-srpt"

    def shares(self, state: ExecState) -> Sequence[Fraction]:
        inst = state.instance

        def priority(i: int):
            job = inst.job(i, state.active_job(i))
            remaining = state.remaining_work(i)
            return (remaining / job.weight, remaining, i)

        order = sorted(state.active_processors(), key=priority)
        return water_fill(state, order)

    def shares_array(self, state) -> np.ndarray:
        # Finished/unreleased processors have weight 0; park their
        # density at 0 (they sort first but receive no useful share).
        density = np.divide(
            state.remaining,
            state.active_weights,
            out=np.zeros_like(state.remaining),
            where=state.active_weights > 0.0,
        )
        order = np.lexsort((sort_key(state.remaining), sort_key(density)))
        return water_fill_array(state, order)

    def shares_batch(self, state) -> np.ndarray:
        density = np.divide(
            state.remaining,
            state.active_weights,
            out=np.zeros_like(state.remaining),
            where=state.active_weights > 0.0,
        )
        order = np.lexsort(
            (sort_key(state.remaining), sort_key(density)), axis=-1
        )
        return water_fill_array_batch(state, order)
