"""Integer-grid fast path for the greedy policies.

The exact simulator runs every policy in ``fractions.Fraction``
arithmetic -- the right default for verifying theorems, but needlessly
slow for bulk sweeps.  Since every instance's requirements live on a
common rational grid (``r = units / D`` for the least common
denominator ``D``, see :meth:`repro.core.instance.Instance.to_integer_grid`),
the whole execution can run in machine/big *integers*: the per-step
capacity becomes ``D`` units and water-filling is integer subtraction.

:func:`greedy_balance_makespan` and :func:`round_robin_makespan` are
drop-in makespan computations for unit-size instances that are
bit-for-bit equal to simulating the corresponding policy (the
test-suite cross-validates on random instances) while running an order
of magnitude faster -- the THRU benchmark measures the speedup.

This is the "optimize after it's correct" step from the HPC guide: the
exact path stays the source of truth; the fast path is validated
against it, not trusted.
"""

from __future__ import annotations

from ..core.instance import Instance

__all__ = ["greedy_balance_makespan", "round_robin_makespan"]


def greedy_balance_makespan(instance: Instance) -> int:
    """GreedyBalance's makespan via pure integer arithmetic.

    Equivalent to ``GreedyBalance().run(instance).makespan`` for
    unit-size instances (asserted by tests), without building the
    Schedule artifact.

    Raises:
        UnitSizeRequiredError: for non-unit-size jobs.
        InvalidInstanceError: for instances with release times (the
            integer fast path models the static workload only).
    """
    instance.require_single_resource("greedy_balance_makespan (fast path)")
    instance.require_unit_size("greedy_balance_makespan (fast path)")
    instance.require_static("greedy_balance_makespan (fast path)")
    units, capacity = instance.to_integer_grid()
    m = instance.num_processors
    n_jobs = [len(row) for row in units]
    done = [0] * m
    rem = [units[i][0] for i in range(m)]
    active = set(range(m))
    steps = 0

    while active:
        steps += 1
        # Priority: more remaining jobs first, then larger remaining
        # requirement, then index (exactly GreedyBalance's order).
        order = sorted(
            active, key=lambda i: (-(n_jobs[i] - done[i]), -rem[i], i)
        )
        left = capacity
        for i in order:
            give = rem[i] if rem[i] < left else left
            rem[i] -= give
            left -= give
            if rem[i] == 0:
                done[i] += 1
                if done[i] < n_jobs[i]:
                    rem[i] = units[i][done[i]]
                else:
                    active.discard(i)
            if left == 0:
                break
    return steps


def round_robin_makespan(instance: Instance) -> int:
    """RoundRobin's makespan via pure integer arithmetic.

    Uses the phase decomposition directly: phase ``j`` costs
    ``max(1, ceil(sum of phase-j units / capacity))`` steps (the
    closed form from the Theorem 3 proof, in grid units).
    """
    instance.require_single_resource("round_robin_makespan (fast path)")
    instance.require_unit_size("round_robin_makespan (fast path)")
    instance.require_static("round_robin_makespan (fast path)")
    units, capacity = instance.to_integer_grid()
    n = instance.max_jobs
    total = 0
    for j in range(n):
        phase = sum(row[j] for row in units if len(row) > j)
        total += max(1, -(-phase // capacity))
    return total
