"""Baseline heuristic policies.

These are not analyzed in the paper (except :class:`GreedyFinishJobs`,
which is the policy behind Figure 1's example schedule); they serve as
comparison points in the benchmark harness and as stress inputs for
the property-based tests (e.g. :class:`ProportionalShare` produces
valid but deliberately non-progressive schedules).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

import numpy as np

from ..core.numerics import ONE, ZERO, frac_sum
from ..core.state import ExecState
from .base import (
    Policy,
    register_policy,
    sort_key,
    water_fill,
    water_fill_array,
    water_fill_array_batch,
)

__all__ = [
    "GreedyFinishJobs",
    "LargestRequirementFirst",
    "FewestRemainingJobsFirst",
    "ProportionalShare",
]


@register_policy
class GreedyFinishJobs(Policy):
    """Finish as many jobs as possible each step (Figure 1's policy).

    Water-fills in order of *increasing* remaining requirement: cheap
    jobs first maximizes the number of completions per step.  Greedy
    per-step job count is not globally optimal -- Figure 1 shows it
    fragmenting the schedule into three components.

    Example:
        >>> from repro.generators import fig1_instance
        >>> GreedyFinishJobs().run(fig1_instance()).makespan
        6
    """

    name = "greedy-finish-jobs"

    def shares(self, state: ExecState) -> Sequence[Fraction]:
        order = sorted(
            state.active_processors(),
            key=lambda i: (state.remaining_work(i), i),
        )
        return water_fill(state, order)

    def shares_array(self, state) -> np.ndarray:
        # Cheapest remaining work first; finished processors sort first
        # with zero useful share, which water-filling ignores.
        return water_fill_array(
            state, np.argsort(sort_key(state.remaining), kind="stable")
        )

    def shares_batch(self, state) -> np.ndarray:
        return water_fill_array_batch(
            state,
            np.argsort(sort_key(state.remaining), axis=-1, kind="stable"),
        )


@register_policy
class LargestRequirementFirst(Policy):
    """Water-fill in order of decreasing remaining requirement.

    The "anti-greedy": clears the heaviest active job first regardless
    of queue lengths.  Non-wasting and progressive but not balanced.

    Example:
        >>> from repro.generators import fig1_instance
        >>> LargestRequirementFirst().run(fig1_instance()).makespan
        7
    """

    name = "largest-requirement-first"

    def shares(self, state: ExecState) -> Sequence[Fraction]:
        order = sorted(
            state.active_processors(),
            key=lambda i: (-state.remaining_work(i), i),
        )
        return water_fill(state, order)

    def shares_array(self, state) -> np.ndarray:
        return water_fill_array(
            state, np.argsort(-sort_key(state.remaining), kind="stable")
        )

    def shares_batch(self, state) -> np.ndarray:
        return water_fill_array_batch(
            state,
            np.argsort(-sort_key(state.remaining), axis=-1, kind="stable"),
        )


@register_policy
class FewestRemainingJobsFirst(Policy):
    """Water-fill processors with *fewer* remaining jobs first.

    The deliberate inversion of GreedyBalance's priority; useful as an
    ablation showing that the balance direction (not greediness per se)
    is what earns the 2 - 1/m guarantee.

    Example:
        >>> from repro.generators import fig1_instance
        >>> FewestRemainingJobsFirst().run(fig1_instance()).makespan
        7
    """

    name = "fewest-remaining-jobs-first"

    def shares(self, state: ExecState) -> Sequence[Fraction]:
        order = sorted(
            state.active_processors(),
            key=lambda i: (state.jobs_remaining(i), -state.remaining_work(i), i),
        )
        return water_fill(state, order)

    def shares_array(self, state) -> np.ndarray:
        order = np.lexsort((-sort_key(state.remaining), state.jobs_remaining))
        return water_fill_array(state, order)

    def shares_batch(self, state) -> np.ndarray:
        # Padded processors hold zero remaining jobs, so they sort
        # first here -- harmlessly, their useful share is zero.
        order = np.lexsort(
            (-sort_key(state.remaining), state.jobs_remaining), axis=-1
        )
        return water_fill_array_batch(state, order)


@register_policy
class ProportionalShare(Policy):
    """Split the resource proportionally to remaining requirements.

    Every active job progresses every step (fair sharing, as a bus
    arbiter without scheduler support would do).  The resulting
    schedules are feasible and non-wasting but *not* progressive:
    several jobs can be left partially processed in one step.  Included
    as the "no scheduling" baseline the paper's introduction argues
    against.

    Note: proportional division compounds denominators step over step,
    so exact arithmetic grows quickly -- intended for small
    demonstration instances, not bulk benchmarks.

    Example:
        >>> from repro.generators import fig1_instance
        >>> ProportionalShare().run(fig1_instance()).makespan
        8
    """

    name = "proportional-share"

    def shares_array(self, state) -> np.ndarray:
        if state.num_resources != 1:
            return self._shares_array_multi(state)
        total = float(state.remaining.sum())
        if total == 0.0:
            return np.zeros(state.num_processors, dtype=np.float64)
        if total <= 1.0:
            return state.remaining.copy()
        return state.remaining / total

    def shares_batch(self, state) -> np.ndarray:
        if state.num_resources != 1:
            return self._shares_batch_multi(state)
        return self._proportional_rows(state)

    @staticmethod
    def _proportional_rows(state) -> np.ndarray:
        # The scalar rule per lane: demand <= 1 grants remaining work
        # outright, otherwise the row is normalized by its total (a
        # finished lane's all-zero row passes through unchanged).
        total = state.remaining.sum(axis=1, keepdims=True)
        scaled = np.divide(
            state.remaining,
            total,
            out=np.zeros_like(state.remaining),
            where=total > 1.0,
        )
        return np.where(total > 1.0, scaled, state.remaining)

    def _shares_batch_multi(self, state) -> np.ndarray:
        req = state.active_req_matrix  # (B, k, m)
        rstar = state.active_requirements
        positive = rstar > 0.0
        fraction = np.zeros_like(rstar)
        np.divide(state.remaining, rstar, out=fraction, where=positive)
        np.minimum(fraction, 1.0, out=fraction)
        consume = req * fraction[:, None, :]
        demand = consume.sum(axis=2)  # (B, k)
        over = demand > 1.0
        inv = np.divide(
            1.0, demand, out=np.full_like(demand, np.inf), where=over
        )
        theta = np.minimum(inv.min(axis=1), 1.0)  # (B,)
        shares = consume * theta[:, None, None]
        scalar = state.lane_num_resources == 1
        if scalar.any():
            # Single-resource lanes in a mixed batch follow the scalar
            # rule, as their standalone vector run would.
            shares[scalar, 0, :] = self._proportional_rows(state)[scalar]
        return shares

    def shares(self, state: ExecState) -> Sequence[Fraction]:
        if state.instance.num_resources != 1:
            return self._shares_multi(state)
        active = state.active_processors()
        shares = [ZERO] * state.num_processors
        total = frac_sum(state.remaining_work(i) for i in active)
        if total == ZERO:
            return shares
        if total <= ONE:
            for i in active:
                shares[i] = state.remaining_work(i)
            return shares
        for i in active:
            shares[i] = state.remaining_work(i) / total
        return shares

    # The multi-resource variant scales every job's *desired speed
    # fraction* (min(1, remaining / r*)) by one common factor theta =
    # min(1, min_l 1 / demand_l), so all resource rows stay within
    # capacity and every active job still progresses every step.  For
    # unit-size single-resource jobs it reduces to the scalar rule.
    def _shares_multi(self, state: ExecState) -> list[list[Fraction]]:
        inst = state.instance
        k = inst.num_resources
        m = state.num_processors
        rows: list[list[Fraction]] = [[ZERO] * m for _ in range(k)]
        wanted: dict[int, tuple[Fraction, tuple[Fraction, ...]]] = {}
        demand = [ZERO] * k
        for i in state.active_processors():
            job = inst.job(i, state.active_job(i))
            rstar = job.requirement
            if rstar == ZERO:
                continue
            fraction = min(ONE, state.remaining_work(i) / rstar)
            wanted[i] = (fraction, job.requirements)
            for lane, req in enumerate(job.requirements):
                demand[lane] += fraction * req
        if not wanted:
            return rows
        theta = ONE
        for lane_demand in demand:
            if lane_demand > ONE:
                scale = ONE / lane_demand
                if scale < theta:
                    theta = scale
        for i, (fraction, reqs) in wanted.items():
            for lane, req in enumerate(reqs):
                rows[lane][i] = theta * fraction * req
        return rows

    def _shares_array_multi(self, state) -> np.ndarray:
        req = state.active_req_matrix  # (k, m)
        rstar = state.active_requirements
        positive = rstar > 0.0
        fraction = np.zeros(state.num_processors, dtype=np.float64)
        fraction[positive] = np.minimum(
            1.0, state.remaining[positive] / rstar[positive]
        )
        consume = req * fraction[None, :]  # full-speed demand per lane
        demand = consume.sum(axis=1)
        over = demand > 1.0
        theta = float((1.0 / demand[over]).min()) if over.any() else 1.0
        return consume * theta
