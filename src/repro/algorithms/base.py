"""Policy interface and shared helpers for CRSharing schedulers.

Two kinds of algorithms live in this subpackage:

* **online policies** -- state-feedback rules invoked once per time
  step by :func:`repro.core.simulator.simulate` (RoundRobin,
  GreedyBalance, the baseline heuristics).  They subclass
  :class:`Policy` and implement :meth:`Policy.shares`.
* **offline exact algorithms** -- functions that take an
  :class:`~repro.core.instance.Instance` and return an optimal
  :class:`~repro.core.schedule.Schedule` directly
  (:mod:`~repro.algorithms.opt_two`, :mod:`~repro.algorithms.opt_general`,
  the oracles).

The dominant building block for policies is *water-filling*
(:func:`water_fill`): visit processors in priority order and grant each
its maximum useful share until the resource is exhausted.  Greedy
water-filling is exactly what the paper's GreedyBalance does and what
RoundRobin does within a phase; it guarantees the resulting schedules
are non-wasting and progressive by construction (at most one processor
receives a partial grant).
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from ..core.instance import Instance
from ..core.numerics import ONE, ZERO
from ..core.schedule import Schedule
from ..core.simulator import simulate
from ..core.state import ExecState
from ..exceptions import UnknownPolicyError, VectorizationUnsupportedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..backends.base import BackendResult
    from ..backends.batched import BatchVectorState
    from ..backends.vector import VectorState

__all__ = [
    "Policy",
    "water_fill",
    "water_fill_multi",
    "water_fill_array",
    "water_fill_array_multi",
    "water_fill_array_batch",
    "sort_key",
    "register_policy",
    "get_policy",
    "resolve_policy",
    "available_policies",
]


class Policy:
    """Base class for online resource-assignment policies.

    Subclasses implement :meth:`shares`; the base class makes instances
    directly usable as simulator callables and provides :meth:`run`.

    Policies must be stateless with respect to the run (the full
    execution state arrives each step), so one policy object can be
    reused across instances and runs.

    Example:
        >>> from repro.core import Instance
        >>> from repro.algorithms import get_policy
        >>> policy = get_policy("greedy-balance")
        >>> policy.run(Instance.from_percent([[60, 40], [80, 20]])).makespan
        3
    """

    #: Short identifier used by the registry/CLI.
    name: str = "policy"

    def shares(self, state: ExecState) -> Sequence[Fraction]:
        """Return the per-processor share vector for the current step."""
        raise NotImplementedError

    def shares_array(self, state: "VectorState") -> np.ndarray:
        """Vectorized variant of :meth:`shares` for the float backend.

        Receives a :class:`repro.backends.vector.VectorState` (NumPy
        float64 view of the execution state) and returns one float64
        share per processor.  Must implement the *same* rule as
        :meth:`shares` so the backends agree; the cross-validation
        suite enforces agreement within tolerance.  The returned array
        must be freshly allocated (never a view of the state's arrays):
        the kernel records it as the step's share row.

        The default raises -- policies without a vectorized path can
        only run on the exact backend.
        """
        raise VectorizationUnsupportedError(
            f"policy {self.name!r} has no vectorized shares_array path; "
            "run it on the exact backend"
        )

    @property
    def supports_vector(self) -> bool:
        """True iff this policy overrides :meth:`shares_array`."""
        return type(self).shares_array is not Policy.shares_array

    def shares_batch(self, state: "BatchVectorState") -> np.ndarray:
        """Batched variant of :meth:`shares_array` for the batch engine.

        Receives a :class:`repro.backends.batched.BatchVectorState`
        (``B`` padded instance lanes as ``(B, m)`` / ``(B, k, m)``
        float64 arrays) and returns one share row per lane -- ``(B, m)``
        for single-resource batches, ``(B, k, m)`` otherwise.  Must
        implement the *same* rule as :meth:`shares_array` applied lane
        by lane; the crosscheck suite enforces agreement within the
        backend tolerance.  Lanes that have finished (all remaining
        work zero) must receive all-zero rows.

        The default raises -- the batch engine then falls back to
        stepping such policies lane by lane through their
        :meth:`shares_array` path (correct, but without the batched
        speedup).
        """
        raise VectorizationUnsupportedError(
            f"policy {self.name!r} has no batched shares_batch path"
        )

    @property
    def supports_batch(self) -> bool:
        """True iff this policy overrides :meth:`shares_batch`."""
        return type(self).shares_batch is not Policy.shares_batch

    def __call__(self, state: ExecState) -> Sequence[Fraction]:
        return self.shares(state)

    def run(self, instance: Instance, **kwargs) -> Schedule:
        """Simulate this policy on *instance* and return the schedule
        (always exact arithmetic; see :meth:`run_backend` for the
        pluggable-backend entry point)."""
        return simulate(instance, self, **kwargs)

    def run_backend(
        self, instance: Instance, backend: str = "vector", **kwargs
    ) -> "BackendResult":
        """Run this policy through a named simulation backend.

        ``backend="exact"`` reproduces :meth:`run` semantics (the
        result carries the validated :class:`Schedule`);
        ``backend="vector"`` runs the NumPy float64 engine.
        """
        from ..backends import get_backend  # local: avoid import cycle

        return get_backend(backend).run(instance, self, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def water_fill(
    state: ExecState,
    order: Iterable[int],
    *,
    capacity: Fraction = ONE,
) -> list[Fraction]:
    """Grant processors their maximum useful share in the given order.

    Each processor in *order* receives
    ``min(remaining_work, requirement, capacity_left)`` -- the most it
    can convert into work this step.  Processors not listed (or listed
    after capacity runs out) receive zero.

    For unit-size jobs, remaining work never exceeds the requirement,
    so every fully-served processor finishes its job; at most one
    processor receives a partial grant.  This is the mechanism behind
    the *progressive* property of all our greedy policies.

    Multi-resource instances dispatch to :func:`water_fill_multi` (the
    bottleneck-resource generalization of the same rule), so every
    water-filling policy supports ``k > 1`` through its usual order.
    """
    if state.instance.num_resources != 1:
        return water_fill_multi(state, order, capacity=capacity)
    shares = [ZERO] * state.num_processors
    left = capacity
    if left < ZERO:
        raise ValueError("capacity must be non-negative")
    for i in order:
        if left <= ZERO:
            break
        if not state.is_active(i):
            continue
        j = state.active_job(i)
        requirement = state.instance.job(i, j).requirement
        useful = min(state.remaining_work(i), requirement, left)
        if useful > ZERO:
            shares[i] = useful
            left -= useful
    return shares


def water_fill_multi(
    state: ExecState,
    order: Iterable[int],
    *,
    capacity: Fraction = ONE,
) -> list[list[Fraction]]:
    """Bottleneck water-filling over ``k`` shared resources.

    The multi-resource generalization of :func:`water_fill`: visit
    processors in priority order and grant each the largest *speed
    fraction* ``f`` its active job can still use --
    ``f = min(1, remaining / r*, min_l capacity_left_l / r_l)`` over
    the resources it needs -- then charge ``f * r_l`` against every
    resource ``l``.  For ``k == 1`` this reduces exactly to the
    scalar rule (``min(remaining, r, capacity_left)``).

    Returns ``k`` share rows (one per resource), each of length ``m``.
    """
    if capacity < ZERO:
        raise ValueError("capacity must be non-negative")
    inst = state.instance
    k = inst.num_resources
    m = state.num_processors
    rows: list[list[Fraction]] = [[ZERO] * m for _ in range(k)]
    left: list[Fraction] = [capacity] * k
    for i in order:
        if not state.is_active(i):
            continue
        job = inst.job(i, state.active_job(i))
        rstar = job.requirement
        if rstar == ZERO:
            continue  # zero-requirement job: completes without resource
        fraction = min(ONE, state.remaining_work(i) / rstar)
        for lane, req in enumerate(job.requirements):
            if req > ZERO:
                afford = left[lane] / req
                if afford < fraction:
                    fraction = afford
        if fraction <= ZERO:
            continue
        for lane, req in enumerate(job.requirements):
            if req > ZERO:
                grant = fraction * req
                rows[lane][i] = grant
                left[lane] -= grant
    return rows


def sort_key(values: np.ndarray, *, decimals: int = 9) -> np.ndarray:
    """Quantize a float key for priority sorting.

    Partial water-fill grants leave ~1e-16 residue on remaining-work
    values, which would break exact ties (values equal as rationals)
    inconsistently with the exact path's value-then-index order.
    Rounding to the backend tolerance restores those ties; instances on
    a requirement grid coarser than ``10**-decimals`` sort identically
    to exact arithmetic.
    """
    return np.round(values, decimals)


def water_fill_array(
    state: "VectorState",
    order: np.ndarray,
    *,
    capacity: float = 1.0,
) -> np.ndarray:
    """Vectorized :func:`water_fill` over a float64 state.

    *order* is an array of processor indices in priority order (it may
    include inactive processors -- their useful share is zero, so they
    neither receive nor consume capacity).  The grant rule is identical
    to the exact path: each processor gets
    ``min(remaining_work, requirement, capacity_left)``, realized as a
    prefix-sum followed by a clip, so the whole fill is O(m) NumPy work
    with no Python loop.

    Multi-resource states dispatch to :func:`water_fill_array_multi`
    and return a ``(k, m)`` share matrix instead of a flat vector.
    """
    if state.num_resources != 1:
        return water_fill_array_multi(state, order, capacity=capacity)
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    useful = np.minimum(state.remaining, state.active_requirements)
    u = useful[order]
    taken_before = np.cumsum(u) - u
    grants = np.clip(capacity - taken_before, 0.0, u)
    shares = np.zeros(state.num_processors, dtype=np.float64)
    shares[order] = grants
    return shares


#: Slack absorbing float rounding when deciding whether a prefix of
#: grants over-commits a resource; far below the backend tolerance, so
#: boundary cases (a row summing to exactly 1) grant fully, as the
#: exact path does.
_FILL_EPS = 1e-15


def water_fill_array_multi(
    state: "VectorState",
    order: np.ndarray,
    *,
    capacity: float = 1.0,
) -> np.ndarray:
    """Vectorized :func:`water_fill_multi` over a ``(k, m)`` state.

    Implements the same sequential grant rule as the exact path --
    each processor in *order* gets speed fraction
    ``min(1, remaining / r*, min_l left_l / r_l)`` -- in depletion
    *rounds*: optimistically cumsum full grants along the order, find
    the first processor whose grant would over-commit some resource,
    grant everything before it in one shot plus a partial grant there,
    then continue with the survivors.  Each round retires at least one
    processor, and in the common case one round grants everyone, so
    the fill stays NumPy-vectorized.
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    return _fill_arrays_multi(
        state.remaining,
        state.active_requirements,
        state.active_req_matrix,
        np.asarray(order, dtype=np.int64),
        float(capacity),
    )


def _fill_arrays_multi(
    remaining: np.ndarray,
    rstar: np.ndarray,
    req_matrix: np.ndarray,
    order: np.ndarray,
    capacity: float,
) -> np.ndarray:
    """Array-level core of :func:`water_fill_array_multi`.

    Shared by the single-lane fill and the batch engine's per-lane
    ``k > 1`` path, so both produce bit-identical grants.
    """
    k, m = req_matrix.shape
    shares = np.zeros((k, m), dtype=np.float64)
    fraction_cap = np.zeros(m, dtype=np.float64)
    positive = rstar > 0.0
    fraction_cap[positive] = np.minimum(
        1.0, remaining[positive] / rstar[positive]
    )
    left = np.full(k, capacity, dtype=np.float64)
    pending = order[fraction_cap[order] > 0.0]
    while pending.size:
        fc = fraction_cap[pending]
        consume = fc[None, :] * req_matrix[:, pending]  # (k, p) full grants
        over = (
            np.cumsum(consume, axis=1) > left[:, None] + _FILL_EPS
        ).any(axis=0)
        if not over.any():
            shares[:, pending] = consume
            break
        first = int(np.argmax(over))
        fully = pending[:first]
        if fully.size:
            grants = consume[:, :first]
            shares[:, fully] = grants
            left -= grants.sum(axis=1)
        # Partial grant at the first over-committing processor: the
        # binding resource caps its speed fraction.
        i = int(pending[first])
        needs = req_matrix[:, i]
        needed = needs > 0.0
        fraction = min(
            float(fraction_cap[i]), float((left[needed] / needs[needed]).min())
        )
        if fraction > 0.0:
            grant = fraction * needs
            shares[:, i] = grant
            left -= grant
        np.maximum(left, 0.0, out=left)
        pending = pending[first + 1 :]
        if pending.size:
            # Retire processors whose needed resources are exhausted.
            blocked = (
                (req_matrix[:, pending] > 0.0) & (left[:, None] <= _FILL_EPS)
            ).any(axis=0)
            pending = pending[~blocked]
    return shares


def water_fill_array_batch(
    state: "BatchVectorState",
    order: np.ndarray,
    *,
    eligible: np.ndarray | None = None,
    capacity: float = 1.0,
) -> np.ndarray:
    """Water-fill all ``B`` lanes of a batch state in one array program.

    *order* is a ``(B, m)`` array of processor indices, one priority
    permutation per lane; *eligible* optionally masks processors out of
    the fill (a ``(B, m)`` boolean indexed by processor, **not** by
    order position -- RoundRobin's phase restriction).  Padded and
    inactive processors have zero useful share, so they neither
    receive nor consume capacity; partial sums are bit-identical to
    the per-lane :func:`water_fill_array` because interleaved exact
    zeros never perturb a float cumsum.

    Single-resource batches (``state.num_resources == 1``) run the
    fully vectorized prefix-sum fill.  Multi-resource batches fall
    back to the per-lane depletion-rounds core
    (:func:`water_fill_array_multi`'s array kernel) -- still one
    shared grant rule, but looped over lanes -- and return a
    ``(B, k, m)`` share tensor.
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    if state.num_resources != 1:
        return _water_fill_batch_multi(
            state, order, eligible=eligible, capacity=capacity
        )
    useful = np.minimum(state.remaining, state.active_requirements)
    if eligible is not None:
        useful = np.where(eligible, useful, 0.0)
    u = np.take_along_axis(useful, order, axis=1)
    taken_before = np.cumsum(u, axis=1) - u
    grants = np.clip(capacity - taken_before, 0.0, u)
    shares = np.zeros_like(useful)
    np.put_along_axis(shares, order, grants, axis=1)
    return shares


def _water_fill_batch_multi(
    state: "BatchVectorState",
    order: np.ndarray,
    *,
    eligible: np.ndarray | None,
    capacity: float,
) -> np.ndarray:
    """``k > 1`` path of :func:`water_fill_array_batch`: one
    ``(B, k, m)`` array program over all lanes.

    Dispatches to :func:`_fill_arrays_batch_multi` for the
    multi-resource depletion rounds and overwrites single-resource
    lanes of a mixed batch with the scalar prefix-sum rule (exactly as
    their standalone vector run applies it), so each lane follows its
    native grant rule.
    """
    shares = _fill_arrays_batch_multi(
        state.remaining,
        state.active_requirements,
        state.active_req_matrix,
        np.asarray(order, dtype=np.int64),
        eligible,
        capacity,
    )
    scalar = state.lane_num_resources == 1
    if scalar.any():
        # Single-resource lanes: the scalar prefix-sum rule (interleaved
        # exact zeros keep the cumsum bit-identical to a per-lane fill).
        useful = np.minimum(state.remaining, state.active_requirements)
        if eligible is not None:
            useful = np.where(eligible, useful, 0.0)
        u = np.take_along_axis(useful, order, axis=1)
        taken_before = np.cumsum(u, axis=1) - u
        grants = np.clip(capacity - taken_before, 0.0, u)
        rows = np.zeros_like(useful)
        np.put_along_axis(rows, order, grants, axis=1)
        shares[scalar] = 0.0
        shares[scalar, 0, :] = rows[scalar]
    return shares


def _fill_arrays_batch_multi(
    remaining: np.ndarray,
    rstar: np.ndarray,
    req_matrix: np.ndarray,
    order: np.ndarray,
    eligible: np.ndarray | None,
    capacity: float,
) -> np.ndarray:
    """Batched depletion-rounds core: ``B`` lanes per round, no lane loop.

    The batch lift of :func:`_fill_arrays_multi`, working in *order
    position* space: per round, every live lane optimistically cumsums
    its full grants along its priority order, the first over-committing
    position gets a partial grant (its binding resource caps the speed
    fraction), everything before it is granted in one shot, and
    positions whose needed resources are exhausted retire.  Inactive
    positions contribute exact ``0.0`` terms, so the cumsums match the
    per-lane compacted fill bit for bit; the only per-lane work left is
    the capacity update of over-committing lanes, which sums each such
    lane's compacted prefix exactly as the single-lane kernel does.
    Lanes that never over-commit (the common case) finish in one fully
    vectorized round.
    """
    B, k, m = req_matrix.shape
    fraction_cap = np.zeros((B, m), dtype=np.float64)
    positive = rstar > 0.0
    np.divide(remaining, rstar, out=fraction_cap, where=positive)
    np.minimum(fraction_cap, 1.0, out=fraction_cap)
    if eligible is not None:
        fraction_cap = np.where(eligible, fraction_cap, 0.0)
    # Everything below runs in order-position space; one scatter at the
    # end maps grants back to processor indices.
    fc_ord = np.take_along_axis(fraction_cap, order, axis=1)  # (B, m)
    req_ord = np.take_along_axis(req_matrix, order[:, None, :], axis=2)
    granted_ord = np.zeros((B, k, m), dtype=np.float64)
    left = np.full((B, k), capacity, dtype=np.float64)
    active = fc_ord > 0.0  # (B, m) positions still pending
    pos = np.arange(m)
    while True:
        live = active.any(axis=1)
        if not live.any():
            break
        consume = np.where(
            active[:, None, :], fc_ord[:, None, :] * req_ord, 0.0
        )
        over_ord = (
            np.cumsum(consume, axis=2) > left[:, :, None] + _FILL_EPS
        ).any(axis=1)
        over_lane = over_ord.any(axis=1)
        fits = live & ~over_lane
        if fits.any():
            # No over-commit: the whole pending set is granted.
            granted_ord[fits] = np.where(
                active[fits, None, :], consume[fits], granted_ord[fits]
            )
            active[fits] = False
        sel = np.flatnonzero(live & over_lane)
        if not sel.size:
            break
        first = np.argmax(over_ord[sel], axis=1)  # over is monotone
        prefix = active[sel] & (pos[None, :] < first[:, None])
        granted_ord[sel] = np.where(
            prefix[:, None, :], consume[sel], granted_ord[sel]
        )
        for row, b in enumerate(sel):
            # Compacted prefix sum, exactly as the single-lane kernel
            # charges its capacity (bit-identical reduction order).
            taken = consume[b][:, prefix[row]]
            if taken.shape[1]:
                left[b] -= taken.sum(axis=1)
        # Partial grant at each lane's first over-committing position.
        needs = req_ord[sel, :, first]  # (|sel|, k)
        needed = needs > 0.0
        afford = np.divide(
            left[sel], needs, out=np.full_like(needs, np.inf), where=needed
        )
        fraction = np.minimum(fc_ord[sel, first], afford.min(axis=1))
        partial = fraction[:, None] * np.where(needed, needs, 0.0)
        granted_ord[sel, :, first] = np.where(
            fraction[:, None] > 0.0, partial, 0.0
        )
        left[sel] -= np.where(fraction[:, None] > 0.0, partial, 0.0)
        np.maximum(left, 0.0, out=left)
        # Retire the served prefix and positions whose needed resources
        # are exhausted.
        active[sel] &= pos[None, :] > first[:, None]
        blocked = (
            (req_ord[sel] > 0.0) & (left[sel, :, None] <= _FILL_EPS)
        ).any(axis=1)
        active[sel] &= ~blocked
    shares = np.zeros((B, k, m), dtype=np.float64)
    np.put_along_axis(
        shares, np.broadcast_to(order[:, None, :], (B, k, m)), granted_ord,
        axis=2,
    )
    return shares


# ----------------------------------------------------------------------
# Registry (CLI / experiment harness lookup)
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Callable[[], Policy]] = {}


def register_policy(factory: Callable[[], Policy]) -> Callable[[], Policy]:
    """Register a policy factory under its ``name`` (decorator-friendly)."""
    probe = factory()
    _REGISTRY[probe.name] = factory
    return factory


def get_policy(name: str) -> Policy:
    """Instantiate a registered policy by name.

    Raises:
        UnknownPolicyError: (a ``KeyError`` subclass) with the list of
            known names.
    """
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise UnknownPolicyError(
            f"unknown policy {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def resolve_policy(policy: "Policy | Callable | str") -> Policy:
    """Resolve a policy given by registry name, passing objects through.

    The shared name-resolution step behind every public entry point
    (``run_policy``, ``simulate``, ``cross_validate``,
    ``ManyCoreEngine.run``, the backends), so
    ``run_policy(inst, "round-robin")`` works anywhere a policy object
    does instead of crashing with ``TypeError: 'str' object is not
    callable`` deep inside the kernel.

    Raises:
        UnknownPolicyError: for names missing from the registry.
    """
    if isinstance(policy, str):
        return get_policy(policy)
    return policy


def available_policies() -> list[str]:
    """Names of all registered policies."""
    return sorted(_REGISTRY)
