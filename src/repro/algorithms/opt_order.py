"""Exact order optimization: branch-and-bound over queue orders.

The paper fixes every processor's queue order a priori, and Theorem 4
proves that *choosing* the order is NP-hard.  The sequencing layer
(:mod:`repro.sequencing`) searches orders heuristically; this module
closes the loop with an **exact** order optimizer for small instances:

.. math::

    \\mathrm{OPT}^*(I) \\;=\\; \\min_{\\sigma} \\mathrm{OPT}(I^\\sigma),

the minimum over all per-processor queue permutations ``sigma`` of the
fixed-order optimum computed by the existing per-order exact oracles
(the m=2 dynamic program of Theorem 5, the fixed-m configuration
search of Theorem 6, the brute-force and MILP oracles).

The search is a best-first branch-and-bound over *partial orders*: a
node commits a prefix of each queue (jobs dealt bag-to-queue, position
by position), and is bounded below by

* the order-invariant makespan lower bound of the whole instance
  (Observation 1's work bound, the queue-length bound, and the
  release-time refinements), and
* the exact optimum of the *committed prefix* as its own sub-instance
  -- restricting an optimal schedule of any completion to the prefix
  jobs stays feasible, so ``OPT(prefix) <= OPT(any completion)``.

Two reductions keep the tree far below ``prod_i n_i!`` leaves:

* **symmetry breaking** -- when several remaining jobs of a queue are
  equal as value objects, only the lowest-indexed one may be placed
  next (equal jobs produce value-identical orders);
* **prefix memoization** -- prefix bounds and leaf evaluations are
  memoized on the *job-value* sequences, so prefixes that differ only
  in the indices of equal jobs collapse to one entry (the dominated
  duplicates symmetry breaking cannot reach across restarts of the
  heap).

Because the bound is monotone along tree edges, the search may stop as
soon as the best unexplored bound reaches the incumbent: the incumbent
is then *proved* optimal.  A ``max_nodes`` budget turns the proof off
gracefully (``proved=False``; the value is still a valid upper bound).

The evaluator is pluggable: the default is the per-order exact oracle,
and :func:`repro.analysis.certify.certify_opt` also plugs in policy
evaluation through the simulation backends (the epsilon-certified
mode: "no queue order lets this policy beat X").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import permutations, product
from math import factorial
from typing import Callable

from ..core.instance import Instance
from ..exceptions import SolverError
from .brute_force import brute_force_makespan
from .milp import milp_makespan
from .opt_general import opt_res_assignment_general
from .opt_two import opt_res_assignment

__all__ = [
    "OrderSearchResult",
    "branch_and_bound_order",
    "enumerate_order_optimum",
    "exact_order_makespan",
    "order_invariant_lower_bound",
    "order_space_size",
    "identity_order",
]

#: Per-order exact oracles selectable by name ("auto" dispatches on m).
_ORACLES = ("auto", "opt-two", "opt-general", "brute-force", "milp")


def identity_order(instance: Instance) -> tuple[tuple[int, ...], ...]:
    """The identity permutation rows for *instance* (the as-built order)."""
    return tuple(tuple(range(instance.num_jobs(i))) for i in range(instance.m))


def order_space_size(instance: Instance) -> int:
    """``prod_i n_i!`` -- the number of distinct order assignments.

    Counts ordered leaves without symmetry reduction: every per-queue
    permutation, including those that coincide because jobs are equal.
    """
    size = 1
    for queue in instance.queues:
        size *= factorial(len(queue))
    return size


def order_invariant_lower_bound(instance: Instance) -> int:
    """The strongest order-invariant makespan lower bound we know.

    Combines :meth:`Instance.makespan_lower_bound` (Observation 1's
    work bound plus release refinements) with the per-processor bound
    ``release_i + sum_j ceil(p_ij)``: a processor runs at most one job
    per step, so even at full speed its queue needs that many steps.
    Both parts are invariant under reordering any queue, which is what
    makes this a valid root bound for the order search.
    """
    bound = instance.makespan_lower_bound()
    for i, queue in enumerate(instance.queues):
        steps = sum(job.steps_at_full_speed() for job in queue)
        bound = max(bound, instance.release(i) + steps)
    return bound


def exact_order_makespan(instance: Instance, *, oracle: str = "auto") -> int:
    """Exact optimal makespan of *instance* under its fixed queue order.

    The per-order oracle dispatch shared by the order search and the
    certification layer: ``"auto"`` picks the cheapest exact algorithm
    for the shape (single queue: each unit job completes in one full
    step, so the optimum is the job count; ``m == 2``: the Theorem 5
    dynamic program; otherwise the Theorem 6 configuration search).

    Raises:
        SolverError: for an unknown *oracle* name, or ``oracle="opt-two"``
            on an instance with ``m != 2``.
        InvalidInstanceError / UnitSizeRequiredError: outside the exact
            algorithms' model (multi-resource, arrivals, non-unit).
    """
    if oracle not in _ORACLES:
        raise SolverError(
            f"unknown order oracle {oracle!r}; available: {list(_ORACLES)}"
        )
    instance.require_single_resource("exact_order_makespan")
    instance.require_unit_size("exact_order_makespan")
    instance.require_static("exact_order_makespan")
    if oracle == "auto":
        if instance.m == 1:
            # One queue: the whole resource serves the current job, so
            # every unit job (r <= 1) finishes in exactly one step.
            return instance.num_jobs(0)
        oracle = "opt-two" if instance.m == 2 else "opt-general"
    if oracle == "opt-two":
        if instance.m != 2:
            raise SolverError(
                f"oracle 'opt-two' is the m=2 dynamic program; instance "
                f"has m={instance.m}"
            )
        return opt_res_assignment(instance).makespan
    if oracle == "opt-general":
        return opt_res_assignment_general(instance).makespan
    if oracle == "brute-force":
        return brute_force_makespan(instance)
    return milp_makespan(instance)


@dataclass(slots=True)
class OrderSearchResult:
    """Outcome of one order search (branch-and-bound or enumeration).

    Attributes:
        value: best objective value found (the certified optimum when
            ``proved``).
        order: per-queue index permutations achieving ``value``
            (``instance.with_order(order)`` reproduces the witness).
        proved: True iff the search closed every branch -- ``value``
            is then the exact minimum over all queue orders.
        nodes: branch-and-bound nodes expanded (0 when the incumbent
            already matched the global lower bound, or for plain
            enumeration).
        bound_calls: prefix-oracle lower-bound evaluations.
        leaf_evaluations: complete orders evaluated (cache misses).
        pruned: subtrees cut by the bound test.
        lower_bound: the order-invariant global lower bound used.
        order_space: ``prod_i n_i!``, the unreduced leaf count.
    """

    value: int
    order: tuple[tuple[int, ...], ...]
    proved: bool
    nodes: int = 0
    bound_calls: int = 0
    leaf_evaluations: int = 0
    pruned: int = 0
    lower_bound: int = 0
    order_space: int = 1


def _value_key(instance: Instance, orders) -> tuple:
    """Hashable job-value key of a (partial) order assignment.

    Two partial orders that place *equal* jobs in the same positions
    get the same key: their completions are value-identical, so bounds
    and leaf evaluations may be shared (and duplicate subtrees
    skipped).
    """
    return tuple(
        tuple(instance.job(i, j) for j in row) for i, row in enumerate(orders)
    )


def _seed_orders(instance: Instance) -> list[tuple[tuple[int, ...], ...]]:
    """Candidate full orders that seed the incumbent.

    The as-built identity order plus the static dispatch orders of the
    sequencing layer (SPT / LPT / requirement-descending), expressed as
    index permutations.  A good incumbent is what makes the bound test
    bite early; when one of these already meets the global lower
    bound, the search proves optimality without expanding a node.
    """
    keys: list[Callable] = [
        lambda job: job.work,  # spt
        lambda job: -job.work,  # lpt
        lambda job: (-job.requirement, -job.work),  # requirement-desc
    ]
    seeds = [identity_order(instance)]
    for key in keys:
        seeds.append(
            tuple(
                tuple(
                    sorted(range(len(queue)), key=lambda j: key(queue[j]))
                )
                for queue in instance.queues
            )
        )
    return seeds


def branch_and_bound_order(
    instance: Instance,
    *,
    evaluator: Callable[[Instance], int] | None = None,
    oracle: str = "auto",
    lower_bound_fn: Callable[[Instance], int] | None = None,
    prefix_bounds: bool = True,
    max_nodes: int = 100_000,
) -> OrderSearchResult:
    """Best-first branch-and-bound over all queue orders of *instance*.

    Args:
        instance: the instance whose per-queue orders are optimized.
        evaluator: complete-order objective, ``Instance -> value``
            (default: :func:`exact_order_makespan` with *oracle*).  Any
            evaluator whose value is bounded below by the fixed-order
            optimum is sound (policies through backends qualify).
        oracle: per-order exact oracle for the default evaluator and
            the prefix bounds.
        lower_bound_fn: order-invariant global lower bound
            (default :meth:`Instance.makespan_lower_bound`).
        prefix_bounds: also bound nodes by the exact optimum of the
            committed prefix sub-instance (skipped automatically when
            the exact oracles do not apply: multi-resource instances,
            arrivals, non-unit sizes).
        max_nodes: node-expansion budget; exceeding it returns the
            incumbent with ``proved=False``.

    Returns:
        :class:`OrderSearchResult`; ``result.proved`` distinguishes a
        certificate from a mere upper bound.
    """
    m = instance.num_processors
    n_jobs = [instance.num_jobs(i) for i in range(m)]
    total = sum(n_jobs)
    if evaluator is None:
        evaluator = lambda inst: exact_order_makespan(inst, oracle=oracle)  # noqa: E731
    if lower_bound_fn is None:
        lower_bound_fn = order_invariant_lower_bound
    global_lb = lower_bound_fn(instance)
    use_prefix = prefix_bounds and _oracle_applies(instance)

    leaf_cache: dict[tuple, int] = {}
    leaf_evaluations = 0

    def evaluate(orders) -> int:
        nonlocal leaf_evaluations
        key = _value_key(instance, orders)
        if key in leaf_cache:
            return leaf_cache[key]
        value = evaluator(instance.with_order(list(map(list, orders))))
        leaf_cache[key] = value
        leaf_evaluations += 1
        return value

    # Seed the incumbent with the as-built and static dispatch orders.
    best_value: int | None = None
    best_order: tuple[tuple[int, ...], ...] = identity_order(instance)
    for seed in _seed_orders(instance):
        value = evaluate(seed)
        if best_value is None or value < best_value:
            best_value, best_order = value, seed
    assert best_value is not None

    nodes = 0
    bound_calls = 0
    pruned = 0
    space = order_space_size(instance)
    if best_value <= global_lb:
        # The incumbent meets the order-invariant bound: optimal with
        # zero expansions.
        return OrderSearchResult(
            value=best_value,
            order=best_order,
            proved=True,
            nodes=0,
            bound_calls=0,
            leaf_evaluations=leaf_evaluations,
            pruned=0,
            lower_bound=global_lb,
            order_space=space,
        )

    prefix_cache: dict[tuple, int] = {}

    def prefix_bound(orders) -> int:
        """Exact optimum of the committed prefix (a sound lower bound)."""
        nonlocal bound_calls
        key = _value_key(instance, orders)
        if key in prefix_cache:
            return prefix_cache[key]
        rows = [
            [instance.job(i, j) for j in row]
            for i, row in enumerate(orders)
            if row
        ]
        if not rows:
            value = 0
        else:
            value = exact_order_makespan(Instance(rows), oracle="auto")
            bound_calls += 1
        prefix_cache[key] = value
        return value

    # Nodes: (bound, tiebreak, committed-count, orders).  The heap is
    # ordered by bound, then by depth (deeper first -- reach leaves and
    # tighten the incumbent early), then insertion order.
    counter = 0
    root = tuple(() for _ in range(m))
    heap: list[tuple[int, int, int, tuple]] = [(global_lb, 0, 0, root)]
    proved = True
    expanded_values: set[tuple] = set()

    while heap:
        bound, _, _, orders = heapq.heappop(heap)
        committed = sum(len(row) for row in orders)
        if best_value is not None and bound >= best_value:
            # Best-first: every unexplored node has bound >= this one,
            # so nothing left can strictly beat the incumbent.
            pruned += len(heap) + 1
            break
        if nodes >= max_nodes:
            proved = False
            break
        # Collapse value-identical prefixes (equal jobs, different
        # indices) that distinct branches can still produce.
        vkey = _value_key(instance, orders)
        if vkey in expanded_values:
            continue
        expanded_values.add(vkey)
        nodes += 1
        # The active queue: first one with an uncommitted position.
        active = next(i for i in range(m) if len(orders[i]) < n_jobs[i])
        used = set(orders[active])
        remaining = [j for j in range(n_jobs[active]) if j not in used]
        seen_jobs: set = set()
        for j in remaining:
            job = instance.job(active, j)
            if job in seen_jobs:
                continue  # symmetry: equal job already placed here
            seen_jobs.add(job)
            child = list(orders)
            child[active] = orders[active] + (j,)
            child = tuple(child)
            if committed + 1 == total:
                value = evaluate(child)
                if value < best_value:
                    best_value, best_order = value, child
                continue
            child_bound = bound
            if use_prefix and committed + 1 >= 2:
                child_bound = max(child_bound, prefix_bound(child))
            if child_bound >= best_value:
                pruned += 1
                continue
            counter += 1
            heapq.heappush(
                heap, (child_bound, -(committed + 1), counter, child)
            )

    return OrderSearchResult(
        value=best_value,
        order=best_order,
        proved=proved,
        nodes=nodes,
        bound_calls=bound_calls,
        leaf_evaluations=leaf_evaluations,
        pruned=pruned,
        lower_bound=global_lb,
        order_space=space,
    )


def _oracle_applies(instance: Instance) -> bool:
    """True iff the per-order exact oracles accept *instance*."""
    return (
        instance.is_single_resource
        and instance.is_unit_size
        and not instance.has_releases
    )


def enumerate_order_optimum(
    instance: Instance,
    *,
    evaluator: Callable[[Instance], int] | None = None,
    oracle: str = "auto",
    max_orders: int = 200_000,
) -> OrderSearchResult:
    """Exhaustive minimum over *all* ``with_order`` permutations.

    The independent cross-check for :func:`branch_and_bound_order`:
    no bounds, no symmetry reduction -- every element of the order
    space is enumerated (value-identical duplicates are served from a
    memo, but still counted).  Exponential; guarded by *max_orders*.

    Raises:
        SolverError: if the order space exceeds *max_orders*.
    """
    if evaluator is None:
        evaluator = lambda inst: exact_order_makespan(inst, oracle=oracle)  # noqa: E731
    space = order_space_size(instance)
    if space > max_orders:
        raise SolverError(
            f"order space has {space} permutations, more than the "
            f"max_orders={max_orders} guard; use branch_and_bound_order"
        )
    cache: dict[tuple, int] = {}
    leaf_evaluations = 0
    best_value: int | None = None
    best_order = identity_order(instance)
    per_queue = [
        list(permutations(range(instance.num_jobs(i))))
        for i in range(instance.num_processors)
    ]
    for orders in product(*per_queue):
        key = _value_key(instance, orders)
        if key in cache:
            value = cache[key]
        else:
            value = evaluator(instance.with_order(list(map(list, orders))))
            cache[key] = value
            leaf_evaluations += 1
        if best_value is None or value < best_value:
            best_value, best_order = value, orders
    assert best_value is not None
    return OrderSearchResult(
        value=best_value,
        order=tuple(best_order),
        proved=True,
        nodes=0,
        bound_calls=0,
        leaf_evaluations=leaf_evaluations,
        pruned=0,
        lower_bound=order_invariant_lower_bound(instance),
        order_space=space,
    )
