"""MILP exact oracle via ``scipy.optimize.milp`` (HiGHS).

A third, formulation-level-independent way to compute optimal CRSharing
makespans: a time-indexed mixed-integer program.  For a candidate
horizon ``T`` we ask for a feasible assignment; the optimum is the
smallest feasible ``T`` scanned upward from a lower bound.

Variables (jobs ``(i,j)``, steps ``t in 0..T-1``):

* ``z[i,j,t] >= 0`` -- work processed for job ``(i,j)`` at step ``t``;
* ``f[i,j,t] in {0,1}`` -- job ``(i,j)`` is completed by the *end* of
  step ``t`` (monotone in ``t``).

Constraints:

1. capacity: ``sum_{i,j} z[i,j,t] <= 1`` for every ``t``;
2. speed cap: ``z[i,j,t] <= r_ij``;
3. completion of every job: ``sum_t z[i,j,t] = work_ij``;
4. completion flags: ``sum_{t' <= t} z[i,j,t'] >= work_ij * f[i,j,t]``;
5. precedence + one-job-per-processor-per-step:
   ``z[i,j+1,t] <= r_{i,j+1} * f[i,j,t-1]`` -- the successor may only
   receive resource strictly after its predecessor's completion step;
6. deadline: ``f[i, last, T-1] = 1``.

This oracle validates the makespan only (HiGHS returns floats, so we
do not reconstruct exact schedules from it).  Intended for tiny
instances in tests; size grows as ``2 * |jobs| * T`` variables.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import lil_matrix

from ..core.instance import Instance
from ..core.lower_bounds import length_bound, work_bound
from ..core.numerics import as_float
from ..exceptions import SolverError

__all__ = ["milp_makespan", "milp_feasible"]


def _job_list(instance: Instance) -> list[tuple[int, int]]:
    return [jid for jid, _ in instance.jobs()]


def milp_feasible(instance: Instance, horizon: int) -> bool:
    """Is there a feasible schedule with makespan at most *horizon*?

    Solves the time-indexed feasibility MILP described in the module
    docstring.  Works for unit and general job sizes (the model never
    assumes unit size).

    Raises:
        SolverError: if HiGHS reports anything other than a clean
            feasible/infeasible answer.
    """
    instance.require_single_resource("milp_feasible")
    instance.require_static("milp_feasible")
    if horizon <= 0:
        return False
    jobs = _job_list(instance)
    J = len(jobs)
    T = horizon
    jindex = {jid: k for k, jid in enumerate(jobs)}

    # Variable layout: z variables first (J*T), then f variables (J*T).
    def zvar(k: int, t: int) -> int:
        return k * T + t

    def fvar(k: int, t: int) -> int:
        return J * T + k * T + t

    nvars = 2 * J * T
    req = np.array(
        [as_float(instance.job(*jid).requirement) for jid in jobs]
    )
    work = np.array([as_float(instance.job(*jid).work) for jid in jobs])

    lower = np.zeros(nvars)
    upper = np.ones(nvars)
    for k in range(J):
        for t in range(T):
            upper[zvar(k, t)] = min(req[k], work[k]) if work[k] > 0 else 0.0

    integrality = np.zeros(nvars)
    integrality[J * T :] = 1  # f variables are binary

    rows: list[tuple[dict[int, float], float, float]] = []
    INF = np.inf

    # (1) capacity per step.
    for t in range(T):
        rows.append(({zvar(k, t): 1.0 for k in range(J)}, -INF, 1.0))
    # (3) every job fully processed.
    for k in range(J):
        rows.append(({zvar(k, t): 1.0 for t in range(T)}, work[k], work[k]))
    # (4) completion flags need enough work accumulated.
    for k in range(J):
        for t in range(T):
            coeffs = {zvar(k, tp): 1.0 for tp in range(t + 1)}
            coeffs[fvar(k, t)] = -work[k]
            rows.append((coeffs, 0.0, INF))
    # (4') monotone flags.
    for k in range(J):
        for t in range(T - 1):
            rows.append(({fvar(k, t): 1.0, fvar(k, t + 1): -1.0}, -INF, 0.0))
    # (5) precedence: successor only after predecessor completed.
    for (i, j), k in jindex.items():
        succ = (i, j + 1)
        if succ not in jindex:
            continue
        ks = jindex[succ]
        cap = max(req[ks], 1e-12)
        for t in range(T):
            coeffs = {zvar(ks, t): 1.0}
            if t == 0:
                # Nothing can be completed before step 0.
                rows.append((coeffs, -INF, 0.0))
            else:
                coeffs[fvar(k, t - 1)] = -cap
                rows.append((coeffs, -INF, 0.0))
    # (6) last jobs done by the horizon.
    for i in range(instance.num_processors):
        k = jindex[(i, instance.num_jobs(i) - 1)]
        lower[fvar(k, T - 1)] = 1.0

    a = lil_matrix((len(rows), nvars))
    lo = np.empty(len(rows))
    hi = np.empty(len(rows))
    for ridx, (coeffs, lob, hib) in enumerate(rows):
        for col, val in coeffs.items():
            a[ridx, col] = val
        lo[ridx] = lob
        hi[ridx] = hib

    res = milp(
        c=np.zeros(nvars),
        constraints=LinearConstraint(a.tocsr(), lo, hi),
        bounds=Bounds(lower, upper),
        integrality=integrality,
    )
    if res.status == 0:
        return True
    if res.status == 2:  # infeasible
        return False
    raise SolverError(f"HiGHS returned status {res.status}: {res.message}")


def milp_makespan(instance: Instance, *, upper: int | None = None) -> int:
    """Optimal makespan via upward scan of :func:`milp_feasible`.

    Args:
        instance: the CRSharing instance.
        upper: optional known upper bound (e.g. a greedy schedule's
            makespan); the scan stops there at the latest.

    Raises:
        SolverError: if no feasible horizon is found up to the bound.
    """
    lb = max(work_bound(instance), length_bound(instance), 1)
    if upper is None:
        from .greedy_balance import GreedyBalance

        upper = GreedyBalance().run(instance).makespan
    for horizon in range(lb, upper + 1):
        if milp_feasible(instance, horizon):
            return horizon
    raise SolverError(
        f"no feasible horizon in [{lb}, {upper}] -- inconsistent bounds"
    )
