"""The RoundRobin algorithm (Section 4.2, Theorem 3).

RoundRobin processes the workload in *phases*: during phase ``j`` it
works only on the ``j``-th job of every processor that has one,
assigning the resource arbitrarily among the processors whose ``j``-th
job is unfinished.  Phase ``j+1`` starts only when phase ``j`` is
completely done -- even if that wastes most of the resource at the end
of a phase, which is exactly how the lower-bound family of Figure 3
drives it to its worst-case ratio of 2.

Theorem 3: the worst-case approximation ratio of RoundRobin for unit
size jobs is exactly 2 (upper bound via
``makespan <= n + sum_j sum_{i in M_j} r_ij`` and Observation 1; lower
bound via :func:`repro.generators.worst_case.round_robin_adversarial`).

The phase index is recoverable from the execution state (the smallest
``j`` such that some processor with at least ``j`` jobs has not
finished its ``j``-th job), so the policy stays stateless.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

import numpy as np

from ..core.numerics import frac_ceil, frac_sum
from ..core.state import ExecState
from .base import (
    Policy,
    register_policy,
    water_fill,
    water_fill_array,
    water_fill_array_batch,
)

__all__ = ["RoundRobin", "round_robin_phase", "round_robin_makespan_formula"]


def round_robin_phase(state: ExecState) -> int:
    """The current RoundRobin phase (1-based).

    The smallest ``j`` such that some processor with ``n_i >= j`` has
    completed fewer than ``j`` jobs.  All processors with completed
    count ``>= j`` wait (their ``j``-th job is done or they have none).
    """
    inst = state.instance
    for j in range(1, inst.max_jobs + 1):
        for i in range(inst.num_processors):
            if inst.num_jobs(i) >= j and state.done[i] < j:
                return j
    return inst.max_jobs  # pragma: no cover - only when everything is done


@register_policy
class RoundRobin(Policy):
    """Phase-synchronized round robin (Section 4.2).

    Within a phase the resource is assigned by water-filling in
    processor-index order ("in an arbitrary way", as the paper puts
    it); processors that already finished the phase's job idle, so the
    policy may waste resource between phases and is in general neither
    non-wasting nor progressive.

    Example:
        >>> from repro.generators import fig1_instance
        >>> RoundRobin().run(fig1_instance()).makespan
        8
    """

    name = "round-robin"

    def shares(self, state: ExecState) -> Sequence[Fraction]:
        phase = round_robin_phase(state)
        eligible = [
            i
            for i in range(state.num_processors)
            if state.instance.num_jobs(i) >= phase and state.done[i] == phase - 1
        ]
        return water_fill(state, eligible)

    def shares_array(self, state) -> np.ndarray:
        # The current phase is 1 + min completed count over *pending*
        # processors (a pending processor with minimal `done` witnesses
        # exactly the smallest j of `round_robin_phase`).  Pending --
        # not merely active -- so that, as in the exact path, a phase
        # held open by a not-yet-released processor blocks later
        # phases; unreleased eligibles have zero useful share, so the
        # water-fill skips them.  The fill order is processor index.
        pending = state.pending_mask
        min_done = state.done[pending].min()
        eligible = np.flatnonzero(pending & (state.done == min_done))
        return water_fill_array(state, eligible)

    def shares_batch(self, state) -> np.ndarray:
        # Per-lane phase = 1 + min completed count over pending
        # processors; finished lanes (no pending processor) park their
        # minimum at int64 max, so nothing is eligible and the lane
        # receives an all-zero row.
        pending = state.pending_mask  # (B, m)
        big = np.iinfo(np.int64).max
        min_done = np.where(pending, state.done, big).min(
            axis=1, keepdims=True
        )
        eligible = pending & (state.done == min_done)
        order = np.broadcast_to(
            np.arange(state.num_processors), pending.shape
        )
        return water_fill_array_batch(state, order, eligible=eligible)


def round_robin_makespan_formula(instance) -> int:
    """The closed-form RoundRobin makespan
    :math:`\\sum_{j=1}^{n} \\lceil \\sum_{i \\in M_j} r_{ij} \\rceil`
    (proof of Theorem 3).

    Valid for unit-size jobs in the static model; the simulated policy
    must match this exactly, which the test-suite asserts.
    """
    instance.require_single_resource("round_robin_makespan_formula")
    instance.require_unit_size("round_robin_makespan_formula")
    instance.require_static("round_robin_makespan_formula")
    total = 0
    for j in range(1, instance.max_jobs + 1):
        phase_work = frac_sum(
            instance.requirement(i, j - 1)
            for i in instance.processors_with_at_least(j)
        )
        total += max(1, frac_ceil(phase_work))
    return total
