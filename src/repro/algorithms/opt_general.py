"""OptResAssignment2: the exact algorithm for any fixed number of
processors (Section 7, Algorithm 2, Theorem 6).

The algorithm enumerates *configurations* (Definition 6): the number of
completed jobs per processor plus the resource already invested in each
active job.  Starting from the initial configuration it generates, per
round, every successor reachable by a non-wasting and progressive step:

* if the remaining requirements of all active jobs fit into one step's
  capacity, the only non-wasting move finishes all of them;
* otherwise pick a subset ``F`` of active jobs to finish (their
  remaining requirements must fit) and pour the leftover capacity into
  at most one other active job (progressiveness: at most one job ends
  the step partially processed);

and prunes, within each round, every configuration *dominated* by
another (Lemma 4's order: no fewer jobs completed anywhere and no less
resource invested anywhere).  The first round containing the final
configuration yields an optimal schedule, reconstructed via parent
pointers.

Deviation from the paper, documented per DESIGN.md: the paper
additionally restricts the search to *nested* schedules to bound the
number of non-dominated extended configurations polynomially
(Theorem 6's counting argument).  Nestedness is a with-loss-of-nothing
restriction (Lemma 1), so searching the slightly larger
non-wasting + progressive space returns the same optimum -- it only
weakens the worst-case bound on states explored.  We keep the larger
space because domination pruning needs no extended-configuration
bookkeeping there to remain sound; the per-round state counts are
reported in :class:`OptGeneralResult.stats` and benchmarked (THM6).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations

from ..core.instance import Instance
from ..core.numerics import ONE, ZERO, frac_sum
from ..core.schedule import Schedule
from ..exceptions import SolverError

__all__ = ["OptGeneralResult", "opt_res_assignment_general"]

#: A configuration key: (jobs completed per processor, remaining
#: requirement of each active job -- ZERO for exhausted processors).
_Key = tuple[tuple[int, ...], tuple[Fraction, ...]]


@dataclass(frozen=True, slots=True)
class OptGeneralResult:
    """Result of the fixed-m exact search.

    Attributes:
        makespan: optimal makespan.
        schedule: an optimal schedule witnessing it.
        stats: per-round counts of configurations kept after
            domination pruning (Theorem 6 growth measurements).
    """

    makespan: int
    schedule: Schedule
    stats: list[int]

    @property
    def total_configurations(self) -> int:
        return sum(self.stats)


def _fresh_remaining(instance: Instance, done: tuple[int, ...]) -> tuple[Fraction, ...]:
    return tuple(
        instance.job(i, done[i]).work if done[i] < instance.num_jobs(i) else ZERO
        for i in range(instance.num_processors)
    )


def _spent_vector(
    instance: Instance, done: tuple[int, ...], rem: tuple[Fraction, ...]
) -> tuple[Fraction, ...]:
    """The paper's ``v`` vector: resource already invested in each
    active job (0 for exhausted processors)."""
    out = []
    for i in range(instance.num_processors):
        if done[i] < instance.num_jobs(i):
            out.append(instance.job(i, done[i]).work - rem[i])
        else:
            out.append(ZERO)
    return tuple(out)


def _successors(
    instance: Instance, key: _Key
) -> list[tuple[_Key, tuple[tuple[int, ...], int | None, Fraction]]]:
    """All non-wasting, progressive one-step successors of *key*.

    Each successor comes with its move ``(F, p, c)``: the processors
    whose jobs finish, the processor receiving the leftover ``c``
    partially (or ``None``), used for schedule reconstruction.
    """
    done, rem = key
    m = instance.num_processors
    active = [i for i in range(m) if done[i] < instance.num_jobs(i)]
    if not active:
        return []

    def advance(finish: tuple[int, ...], partial: int | None, c: Fraction):
        new_done = list(done)
        new_rem = list(rem)
        for i in finish:
            new_done[i] += 1
            new_rem[i] = (
                instance.job(i, new_done[i]).work
                if new_done[i] < instance.num_jobs(i)
                else ZERO
            )
        if partial is not None:
            new_rem[partial] = rem[partial] - c
        return (tuple(new_done), tuple(new_rem)), (finish, partial, c)

    total = frac_sum(rem[i] for i in active)
    if total <= ONE:
        # Non-wasting forces finishing every active job.
        return [advance(tuple(active), None, ZERO)]

    # Zero-requirement jobs complete as soon as they are active, so
    # they belong to every finishing set.
    forced = tuple(i for i in active if rem[i] == ZERO)
    optional = [i for i in active if rem[i] > ZERO]

    out = []
    for size in range(0, len(optional) + 1):
        for chosen in combinations(optional, size):
            finish = forced + chosen
            if not finish:
                continue  # capacity 1 always finishes some unit job
            used = frac_sum(rem[i] for i in chosen)
            if used > ONE:
                continue
            c = ONE - used
            if c == ZERO:
                out.append(advance(finish, None, ZERO))
                continue
            # Leftover must go to exactly one job that will NOT finish
            # (w_p > c); if every remaining job fits in c, this finish
            # set wastes resource and a superset covers the case.
            for p in optional:
                if p in chosen:
                    continue
                if rem[p] > c:
                    out.append(advance(finish, p, c))
    return out


def _dominates(
    instance: Instance, a: _Key, b: _Key
) -> bool:
    """Lemma 4 order within a round: ``a`` is at least as far on every
    processor and has at least as much invested everywhere."""
    done_a, rem_a = a
    done_b, rem_b = b
    if any(x < y for x, y in zip(done_a, done_b)):
        return False
    va = _spent_vector(instance, done_a, rem_a)
    vb = _spent_vector(instance, done_b, rem_b)
    return all(x >= y for x, y in zip(va, vb))


def opt_res_assignment_general(
    instance: Instance,
    *,
    max_configurations: int = 2_000_000,
) -> OptGeneralResult:
    """Exact optimum for any (small) fixed ``m`` (Algorithm 2).

    Args:
        instance: unit-size instance; any number of processors, but the
            state space grows quickly -- intended for ``m <= 4`` and
            short queues (Theorem 6's polynomial has degree
            ``2(m+1)^2``).
        max_configurations: safety cap on total states explored.

    Raises:
        SolverError: if the cap is exceeded.
        UnitSizeRequiredError: for non-unit-size jobs.
    """
    instance.require_single_resource("OptResAssignment2")
    instance.require_unit_size("OptResAssignment2")
    instance.require_static("OptResAssignment2")
    m = instance.num_processors
    initial_done = (0,) * m
    initial: _Key = (initial_done, _fresh_remaining(instance, initial_done))
    final_done = tuple(instance.num_jobs(i) for i in range(m))

    #: parent[key] = (parent_key, move) for reconstruction.
    parent: dict[_Key, tuple[_Key, tuple[tuple[int, ...], int | None, Fraction]]] = {}
    current: list[_Key] = [initial]
    stats: list[int] = [1]
    explored = 1

    t = 0
    while True:
        # Check for the final configuration in the current round.
        for key in current:
            if key[0] == final_done:
                schedule = _reconstruct(instance, parent, key)
                if schedule.makespan != t:  # pragma: no cover
                    raise SolverError(
                        f"reconstructed makespan {schedule.makespan} != round {t}"
                    )
                return OptGeneralResult(makespan=t, schedule=schedule, stats=stats)

        # Expand one round.
        nxt: dict[_Key, tuple[_Key, tuple[tuple[int, ...], int | None, Fraction]]] = {}
        for key in current:
            for skey, move in _successors(instance, key):
                if skey not in nxt:
                    nxt[skey] = (key, move)
        explored += len(nxt)
        if explored > max_configurations:
            raise SolverError(
                f"configuration search exceeded {max_configurations} states; "
                f"instance too large for the exact fixed-m algorithm"
            )
        if not nxt:  # pragma: no cover - final config always reached
            raise SolverError("search space exhausted before completion")

        # Domination pruning (pairwise, within the round).
        keys = list(nxt)
        alive = [True] * len(keys)
        for a_idx in range(len(keys)):
            if not alive[a_idx]:
                continue
            for b_idx in range(len(keys)):
                if a_idx == b_idx or not alive[b_idx]:
                    continue
                if _dominates(instance, keys[a_idx], keys[b_idx]):
                    alive[b_idx] = False
        kept = [k for k, ok in zip(keys, alive) if ok]
        for k in kept:
            parent[k] = nxt[k]
        stats.append(len(kept))
        current = kept
        t += 1


def _reconstruct(
    instance: Instance,
    parent: dict[_Key, tuple[_Key, tuple[tuple[int, ...], int | None, Fraction]]],
    final_key: _Key,
) -> Schedule:
    moves = []
    key = final_key
    while key in parent:
        pkey, move = parent[key]
        moves.append((pkey, move))
        key = pkey
    moves.reverse()

    rows: list[list[Fraction]] = []
    for (pdone, prem), (finish, partial, c) in moves:
        row = [ZERO] * instance.num_processors
        for i in finish:
            row[i] = prem[i]
        if partial is not None:
            row[partial] = c
        rows.append(row)
    return Schedule(instance, rows, validate=True, trim=True)
