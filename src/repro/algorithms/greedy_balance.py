"""The GreedyBalance algorithm (Section 8.3, Theorem 8).

GreedyBalance water-fills the resource over the active processors,
prioritizing

1. processors with **more remaining jobs** (this is what makes its
   schedules *balanced* in the sense of Definition 5), and
2. among ties, jobs with **larger remaining resource requirement**
   (finishing the most loaded job first),
3. among full ties, the smaller processor index (deterministic).

Because water-filling grants every visited processor its full
remaining requirement until the capacity runs out, the resulting
schedules are non-wasting and progressive by construction, and the
priority order makes them balanced: if some processor finishes its job
this step, every processor with strictly more remaining jobs was
served before it and finished too.

Theorems 7 and 8: balanced schedules -- hence GreedyBalance -- are
(2 - 1/m)-approximations, and this ratio is tight for GreedyBalance
(the block construction in
:func:`repro.generators.worst_case.greedy_balance_adversarial`).
The policy runs in linear time per step (sorting aside), matching the
paper's "simple linear-time algorithm" description.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

import numpy as np

from ..core.state import ExecState
from .base import (
    Policy,
    register_policy,
    sort_key,
    water_fill,
    water_fill_array,
    water_fill_array_batch,
)

__all__ = ["GreedyBalance"]


@register_policy
class GreedyBalance(Policy):
    """Balanced greedy water-filling (Section 8.3).

    Example:
        >>> from repro.generators import fig1_instance
        >>> GreedyBalance().run(fig1_instance()).makespan
        6
    """

    name = "greedy-balance"

    def shares(self, state: ExecState) -> Sequence[Fraction]:
        order = sorted(
            state.active_processors(),
            key=lambda i: (
                -state.jobs_remaining(i),
                -state.remaining_work(i),
                i,
            ),
        )
        return water_fill(state, order)

    def shares_array(self, state) -> np.ndarray:
        # Same priority as `shares`: more remaining jobs first, then
        # larger remaining work, then index (lexsort's stability gives
        # the index tie-break; finished processors sort last with zero
        # useful share, so including them is harmless).
        order = np.lexsort((-sort_key(state.remaining), -state.jobs_remaining))
        return water_fill_array(state, order)

    def shares_batch(self, state) -> np.ndarray:
        # Same priority, one lexsort over the whole batch (lexsort
        # orders along the last axis, lane by lane); padded processors
        # carry zero useful share, so their position never matters.
        order = np.lexsort(
            (-sort_key(state.remaining), -state.jobs_remaining), axis=-1
        )
        return water_fill_array_batch(state, order)
