"""OptResAssignment: the exact O(n^2) algorithm for two processors
(Section 6, Algorithm 1, Theorem 5).

Dynamic program over cells ``(i1, i2)`` meaning "all jobs before
``(1, i1)`` and ``(2, i2)`` are finished" (0-based: ``i1`` jobs done on
processor 1, ``i2`` on processor 2).  Each cell stores the best pair
``(t, r)``: the earliest step count ``t`` at which the cell is
reachable and, among schedules achieving ``t``, the minimal sum ``r``
of the remaining requirements of the two current jobs.  Lemma 3 proves
this pair is a sufficient statistic: only the *sum* of the two
remaining requirements matters, because capacity can be freely shifted
between the two current jobs (each fits within one step's capacity).

Transitions from a cell with value ``(t, r)`` (``nxt`` denotes the full
requirement of the following job, 0 past the end):

* both processors at real jobs and ``r <= 1`` -- the step can finish
  both: advance both (fresh requirements), or advance only one (the
  other job is fully processed too but bookkept later; these "lazy"
  moves are the paper's lines 17-18 and are needed as boundary cases);
* ``r > 1`` -- finish either one job and pour the remaining capacity
  into the other, which then has ``r - 1`` left (the paper's lines
  20-21; the listing prints ``A1[i1]+A2[i2]-1`` where the cell's
  ``r - 1`` is meant -- they coincide only for fresh cells.  We
  implement the corrected recurrence; optimality is cross-validated
  against two independent oracles in the test-suite);
* one processor exhausted -- advance the other one job per step.

The DP fills the table diagonal by diagonal (phases of Algorithm 1) in
``O(n1 * n2)`` time; :func:`opt_res_assignment_pq` is the priority-
queue variant sketched after Theorem 5 which only visits reachable
cells.  Both reconstruct an explicit optimal schedule by walking parent
pointers forward and re-deriving the concrete share split per step.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction

from ..core.instance import Instance
from ..core.numerics import ONE, ZERO
from ..core.schedule import Schedule
from ..exceptions import SolverError

__all__ = ["OptTwoResult", "opt_res_assignment", "opt_res_assignment_pq"]

# Move codes (stored as parent pointers for reconstruction).
_BOTH = "both"  # finish both current jobs
_ONLY1 = "only1"  # r <= 1: advance 1; job on p2 fully processed too
_ONLY2 = "only2"  # r <= 1: advance 2; job on p1 fully processed too
_FIN1_SURPLUS2 = "fin1"  # r > 1: finish p1's job, surplus into p2's
_FIN2_SURPLUS1 = "fin2"  # r > 1: finish p2's job, surplus into p1's
_ADV1 = "adv1"  # p2 exhausted: p1 advances alone
_ADV2 = "adv2"  # p1 exhausted: p2 advances alone


@dataclass(frozen=True, slots=True)
class OptTwoResult:
    """Result of the two-processor exact algorithm.

    Attributes:
        makespan: the optimal makespan.
        schedule: an optimal schedule witnessing it.
        cells_expanded: number of DP cells whose value was computed
            (table variant: all of them; PQ variant: reachable only).
    """

    makespan: int
    schedule: Schedule
    cells_expanded: int


def _requirements(instance: Instance) -> tuple[list[Fraction], list[Fraction]]:
    instance.require_single_resource("OptResAssignment")
    instance.require_unit_size("OptResAssignment")
    instance.require_static("OptResAssignment")
    if instance.num_processors != 2:
        raise SolverError(
            f"OptResAssignment handles exactly 2 processors, got "
            f"{instance.num_processors}; use opt_general for fixed m"
        )
    return list(instance.requirements(0)), list(instance.requirements(1))


def _successors(
    i1: int,
    i2: int,
    t: int,
    r: Fraction,
    a1: list[Fraction],
    a2: list[Fraction],
) -> list[tuple[int, int, int, Fraction, str]]:
    """All Algorithm-1 transitions from cell ``(i1, i2)`` with value
    ``(t, r)``.  Returns ``(i1', i2', t', r', move)`` tuples."""
    n1, n2 = len(a1), len(a2)

    def nxt1(i: int) -> Fraction:
        return a1[i] if i < n1 else ZERO

    def nxt2(i: int) -> Fraction:
        return a2[i] if i < n2 else ZERO

    out: list[tuple[int, int, int, Fraction, str]] = []
    if i1 >= n1 and i2 >= n2:
        return out
    if i1 >= n1:
        # Processor 1 exhausted: p2 finishes one job per step (its
        # remaining requirement is at most 1, so one step suffices).
        out.append((i1, i2 + 1, t + 1, nxt2(i2 + 1), _ADV2))
    elif i2 >= n2:
        out.append((i1 + 1, i2, t + 1, nxt1(i1 + 1), _ADV1))
    elif r <= ONE:
        out.append((i1 + 1, i2 + 1, t + 1, nxt1(i1 + 1) + nxt2(i2 + 1), _BOTH))
        out.append((i1, i2 + 1, t + 1, nxt2(i2 + 1), _ONLY2))
        out.append((i1 + 1, i2, t + 1, nxt1(i1 + 1), _ONLY1))
    else:
        out.append((i1, i2 + 1, t + 1, (r - ONE) + nxt2(i2 + 1), _FIN2_SURPLUS1))
        out.append((i1 + 1, i2, t + 1, nxt1(i1 + 1) + (r - ONE), _FIN1_SURPLUS2))
    return out


def opt_res_assignment(instance: Instance) -> OptTwoResult:
    """Exact optimum for ``m = 2`` via the diagonal dynamic program
    (Algorithm 1, Theorem 5).  Runs in ``O(n1 * n2)`` time and space.

    Raises:
        SolverError: if the instance does not have exactly 2 processors.
        UnitSizeRequiredError: for non-unit-size jobs.
    """
    a1, a2 = _requirements(instance)
    n1, n2 = len(a1), len(a2)
    # best[(i1, i2)] = (t, r); parent[(i1, i2)] = (pi1, pi2, move)
    best: dict[tuple[int, int], tuple[int, Fraction]] = {}
    parent: dict[tuple[int, int], tuple[int, int, str]] = {}
    best[(0, 0)] = (0, a1[0] + a2[0])
    expanded = 0

    # Diagonal-by-diagonal fill: every transition increases i1 + i2 by
    # exactly one, so values on diagonal l are final when processing it.
    for level in range(0, n1 + n2):
        lo = max(0, level - n2)
        hi = min(level, n1)
        for i1 in range(lo, hi + 1):
            i2 = level - i1
            key = (i1, i2)
            if key not in best:
                continue
            expanded += 1
            t, r = best[key]
            for s1, s2, st, sr, move in _successors(i1, i2, t, r, a1, a2):
                skey = (s1, s2)
                old = best.get(skey)
                if old is None or (st, sr) < old:
                    best[skey] = (st, sr)
                    parent[skey] = (i1, i2, move)

    final = best.get((n1, n2))
    if final is None:  # pragma: no cover - always reachable
        raise SolverError("DP failed to reach the final cell")
    schedule = _reconstruct(instance, a1, a2, parent, (n1, n2))
    makespan = final[0]
    if schedule.makespan != makespan:  # pragma: no cover - consistency check
        raise SolverError(
            f"reconstructed schedule has makespan {schedule.makespan}, "
            f"DP value is {makespan}"
        )
    return OptTwoResult(makespan=makespan, schedule=schedule, cells_expanded=expanded)


def opt_res_assignment_pq(instance: Instance) -> OptTwoResult:
    """Priority-queue variant (discussed after Theorem 5).

    Cells are expanded in lexicographic ``(level, t, r)`` order from a
    heap, so only *reachable* cells are touched; on instances where
    many jobs pair up (``r <= 1``), most of the table is skipped.
    Produces the same optimum as :func:`opt_res_assignment`.
    """
    a1, a2 = _requirements(instance)
    n1, n2 = len(a1), len(a2)
    start = (0, 0)
    best: dict[tuple[int, int], tuple[int, Fraction]] = {start: (0, a1[0] + a2[0])}
    parent: dict[tuple[int, int], tuple[int, int, str]] = {}
    # Heap ordered by (level, t, r): levels are processed in order, and
    # within a level the best value for a cell pops first.
    heap: list[tuple[int, int, Fraction, int, int]] = [(0, 0, best[start][1], 0, 0)]
    settled: set[tuple[int, int]] = set()
    expanded = 0

    while heap:
        level, t, r, i1, i2 = heapq.heappop(heap)
        key = (i1, i2)
        if key in settled:
            continue
        if best.get(key) != (t, r):
            continue  # stale entry
        settled.add(key)
        expanded += 1
        if key == (n1, n2):
            schedule = _reconstruct(instance, a1, a2, parent, key)
            return OptTwoResult(makespan=t, schedule=schedule, cells_expanded=expanded)
        for s1, s2, st, sr, move in _successors(i1, i2, t, r, a1, a2):
            skey = (s1, s2)
            if skey in settled:
                continue
            old = best.get(skey)
            if old is None or (st, sr) < old:
                best[skey] = (st, sr)
                parent[skey] = (i1, i2, move)
                heapq.heappush(heap, (s1 + s2, st, sr, s1, s2))
    raise SolverError("priority queue exhausted before final cell")  # pragma: no cover


def _reconstruct(
    instance: Instance,
    a1: list[Fraction],
    a2: list[Fraction],
    parent: dict[tuple[int, int], tuple[int, int, str]],
    final: tuple[int, int],
) -> Schedule:
    """Walk the parent chain, then replay it forward tracking the true
    per-job remaining requirements to emit concrete share vectors."""
    n1, n2 = len(a1), len(a2)
    path: list[str] = []
    key = final
    while key != (0, 0):
        pi1, pi2, move = parent[key]
        path.append(move)
        key = (pi1, pi2)
    path.reverse()

    rows: list[tuple[Fraction, Fraction]] = []
    i1 = i2 = 0
    v1 = a1[0]
    v2 = a2[0]

    def advance1() -> None:
        nonlocal i1, v1
        i1 += 1
        v1 = a1[i1] if i1 < n1 else ZERO

    def advance2() -> None:
        nonlocal i2, v2
        i2 += 1
        v2 = a2[i2] if i2 < n2 else ZERO

    for move in path:
        if move == _BOTH:
            rows.append((v1, v2))
            advance1()
            advance2()
        elif move == _ONLY2:
            # r <= 1: both current jobs are fully served this step; the
            # DP only credits processor 2's advance (processor 1's job
            # physically completes now and its successor idles).
            rows.append((v1, v2))
            v1 = ZERO
            advance2()
        elif move == _ONLY1:
            rows.append((v1, v2))
            v2 = ZERO
            advance1()
        elif move == _FIN2_SURPLUS1:
            give1 = ONE - v2
            rows.append((give1, v2))
            v1 -= give1
            advance2()
        elif move == _FIN1_SURPLUS2:
            give2 = ONE - v1
            rows.append((v1, give2))
            v2 -= give2
            advance1()
        elif move == _ADV1:
            rows.append((v1, ZERO))
            advance1()
        elif move == _ADV2:
            rows.append((ZERO, v2))
            advance2()
        else:  # pragma: no cover
            raise SolverError(f"unknown move {move!r}")

    return Schedule(instance, rows, validate=True, trim=True)
