"""Brute-force exact oracle (for cross-validating the paper algorithms).

A deliberately *independent* implementation of optimal CRSharing: plain
memoized depth-first search over exact states, exploring a strictly
larger move space than :mod:`~repro.algorithms.opt_general`:

* any non-empty set of active jobs may be finished if their remaining
  requirements fit into the step (wasteful moves included -- we do not
  force non-wasting);
* the leftover capacity may go to any single other active job, which
  may or may not finish from it;
* no domination pruning -- only exact-state memoization.

Because the searched space is a superset of the non-wasting /
progressive / nested schedules, its optimum equals the true optimum
whenever Lemma 1 holds; agreement between this oracle, the m=2 dynamic
program, the fixed-m configuration search and the MILP oracle is the
test-suite's evidence that all four are correct.

Exponential: use on small instances only (guarded by ``max_states``).
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations

from ..core.instance import Instance
from ..core.numerics import ONE, ZERO, frac_sum
from ..exceptions import SolverError

__all__ = ["brute_force_makespan"]

_State = tuple[tuple[int, ...], tuple[Fraction, ...]]


def brute_force_makespan(instance: Instance, *, max_states: int = 500_000) -> int:
    """Optimal makespan by exhaustive search.

    Raises:
        SolverError: if more than *max_states* distinct states appear.
        UnitSizeRequiredError: for non-unit-size jobs.
    """
    instance.require_single_resource("brute_force_makespan")
    instance.require_unit_size("brute_force_makespan")
    instance.require_static("brute_force_makespan")
    m = instance.num_processors
    n_jobs = [instance.num_jobs(i) for i in range(m)]
    memo: dict[_State, int] = {}

    def fresh(done: tuple[int, ...]) -> tuple[Fraction, ...]:
        return tuple(
            instance.job(i, done[i]).work if done[i] < n_jobs[i] else ZERO
            for i in range(m)
        )

    def solve(state: _State) -> int:
        if state in memo:
            return memo[state]
        if len(memo) > max_states:
            raise SolverError(
                f"brute force exceeded {max_states} states; instance too large"
            )
        done, rem = state
        active = [i for i in range(m) if done[i] < n_jobs[i]]
        if not active:
            return 0
        memo[state] = 10**9  # cycle guard; every move makes progress
        # Active zero-work jobs complete this step no matter what.
        forced = tuple(i for i in active if rem[i] == ZERO)
        optional = [i for i in active if rem[i] > ZERO]
        best = 10**9

        def child(finish: tuple[int, ...], partial: int | None, amount: Fraction) -> int:
            new_done = list(done)
            new_rem = list(rem)
            for i in finish:
                new_done[i] += 1
            if partial is not None:
                new_rem[partial] = rem[partial] - amount
                if new_rem[partial] == ZERO:
                    new_done[partial] += 1
            for i in range(m):
                if new_done[i] != done[i]:
                    new_rem[i] = (
                        instance.job(i, new_done[i]).work
                        if new_done[i] < n_jobs[i]
                        else ZERO
                    )
            return solve((tuple(new_done), tuple(new_rem)))

        for size in range(0, len(optional) + 1):
            for chosen in combinations(optional, size):
                finish = forced + chosen
                used = frac_sum(rem[i] for i in chosen)
                if used > ONE:
                    continue
                spare = ONE - used
                if finish:
                    # Possibly wasteful: finish F, spare unused.
                    best = min(best, 1 + child(finish, None, ZERO))
                if spare > ZERO:
                    for p in optional:
                        if p in chosen:
                            continue
                        amount = min(spare, rem[p])
                        # Progress guarantee (termination): either some
                        # job finishes via F, or p itself completes
                        # (for unit jobs spare = 1 >= rem[p] whenever F
                        # is empty, so this always holds there).
                        if amount > ZERO and (finish or amount == rem[p]):
                            best = min(best, 1 + child(finish, p, amount))
        memo[state] = best
        return best

    start: _State = ((0,) * m, fresh((0,) * m))
    result = solve(start)
    if result >= 10**9:  # pragma: no cover
        raise SolverError("brute force failed to find any schedule")
    return result
