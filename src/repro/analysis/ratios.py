"""Empirical approximation-ratio studies.

The harness behind the THM3/THM7 benchmarks: sweep an instance family,
run a set of policies, compare against the best available reference
(an exact solver where affordable, otherwise certificate lower
bounds), and aggregate exact ratio statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterable, Sequence

from ..algorithms.base import Policy
from ..core.instance import Instance
from ..core.lower_bounds import best_lower_bound
from ..core.numerics import as_float

__all__ = ["RatioStudy", "PolicyStats", "run_ratio_study"]


@dataclass(frozen=True, slots=True)
class PolicyStats:
    """Ratio statistics of one policy over a family of instances.

    Ratios are against the study's reference (exact optimum when an
    oracle is supplied, else the strongest lower bound -- in which case
    they are *upper bounds* on the true ratios).
    """

    policy: str
    count: int
    mean_ratio: float
    max_ratio: Fraction
    max_ratio_seed: object
    mean_makespan: float

    def as_row(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "instances": self.count,
            "mean_ratio": round(self.mean_ratio, 4),
            "max_ratio": round(as_float(self.max_ratio), 4),
            "worst_case": self.max_ratio_seed,
            "mean_makespan": round(self.mean_makespan, 2),
        }


@dataclass(frozen=True, slots=True)
class RatioStudy:
    """Results of :func:`run_ratio_study`."""

    stats: tuple[PolicyStats, ...]
    exact_reference: bool

    def best(self) -> PolicyStats:
        return min(self.stats, key=lambda s: s.mean_ratio)


def run_ratio_study(
    instances: Iterable[tuple[object, Instance]],
    policies: Sequence[Policy],
    *,
    optimal: Callable[[Instance], int] | None = None,
) -> RatioStudy:
    """Run *policies* over labelled *instances* and aggregate ratios.

    Args:
        instances: ``(label, instance)`` pairs (label = seed/params,
            reported for the worst case).
        policies: policies to compare.
        optimal: optional exact oracle; when omitted, the reference is
            the strongest certificate lower bound, computed using the
            *first* policy's schedule for the Lemma 5/6 bounds (so pass
            GreedyBalance first for the tightest certificates).
    """
    pairs = list(instances)
    if not pairs:
        raise ValueError("need at least one instance")
    totals: dict[str, list[Fraction]] = {p.name: [] for p in policies}
    spans: dict[str, list[int]] = {p.name: [] for p in policies}
    worst: dict[str, tuple[Fraction, object]] = {}

    for label, inst in pairs:
        schedules = {p.name: p.run(inst) for p in policies}
        if optimal is not None:
            reference = optimal(inst)
        else:
            first = schedules[policies[0].name]
            reference = best_lower_bound(inst, first if inst.is_unit_size else None)
        reference = max(reference, 1)
        for name, sched in schedules.items():
            ratio = Fraction(sched.makespan, reference)
            totals[name].append(ratio)
            spans[name].append(sched.makespan)
            if name not in worst or ratio > worst[name][0]:
                worst[name] = (ratio, label)

    stats = []
    for p in policies:
        rs = totals[p.name]
        stats.append(
            PolicyStats(
                policy=p.name,
                count=len(rs),
                mean_ratio=float(sum(as_float(r) for r in rs) / len(rs)),
                max_ratio=worst[p.name][0],
                max_ratio_seed=worst[p.name][1],
                mean_makespan=float(sum(spans[p.name]) / len(rs)),
            )
        )
    return RatioStudy(stats=tuple(stats), exact_reference=optimal is not None)
