"""Independent full-schedule verification.

:class:`~repro.core.schedule.Schedule` already validates on
construction; this module re-derives everything from the raw share
rows with a *separate* implementation so tests can assert that the
two agree (defense against bugs in the canonical executor), and
produces a structured report usable in error messages.

Two entry points:

* :func:`verify_schedule` -- exact re-execution of a validated
  :class:`Schedule` (Fraction arithmetic, zero tolerance);
* :func:`verify_share_rows` -- epsilon-tolerant re-execution of *raw*
  share rows in float64, for auditing the output of
  :class:`~repro.backends.vector.VectorBackend` (whose schedules are
  correct only up to its completion tolerance and therefore cannot
  pass the exact validator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.instance import Instance
from ..core.numerics import ONE, ZERO, format_frac
from ..core.schedule import Schedule

__all__ = ["VerificationReport", "verify_schedule", "verify_share_rows"]


@dataclass(slots=True)
class VerificationReport:
    """Outcome of :func:`verify_schedule`.

    Attributes:
        ok: True iff no problems were found.
        problems: human-readable descriptions of each violation.
        completion_steps: independently computed completion step per
            job (0-based), for cross-checking the Schedule's own
            bookkeeping.
    """

    ok: bool = True
    problems: list[str] = field(default_factory=list)
    completion_steps: dict[tuple[int, int], int] = field(default_factory=dict)

    def fail(self, message: str) -> None:
        self.ok = False
        self.problems.append(message)


def verify_schedule(schedule: Schedule) -> VerificationReport:
    """Re-execute a schedule's share rows from scratch and check every
    model rule of Section 3.1.

    Checked: share bounds, per-step capacity, in-order processing, the
    speed cap, exact completion accounting, and agreement with the
    Schedule's own start/completion records.
    """
    report = VerificationReport()
    inst = schedule.instance
    m = inst.num_processors
    current = [0] * m
    left = [inst.job(i, 0).work for i in range(m)]

    for t in range(schedule.makespan):
        step = schedule.step(t)
        total = ZERO
        for i in range(m):
            share = step.shares[i]
            total += share
            if share < ZERO or share > ONE:
                report.fail(f"step {t}: share {format_frac(share)} out of [0,1]")
        if total > ONE:
            report.fail(f"step {t}: capacity overused ({format_frac(total)})")
        for i in range(m):
            if current[i] >= inst.num_jobs(i):
                continue
            if t < inst.release(i):
                # Not yet released: any granted share is wasted.
                if step.processed[i] != ZERO:
                    report.fail(
                        f"step {t}, processor {i}: recorded progress "
                        f"{format_frac(step.processed[i])} before its "
                        f"release time {inst.release(i)}"
                    )
                continue
            job = inst.job(i, current[i])
            progress = min(step.shares[i], job.requirement, left[i])
            if step.processed[i] != progress:
                report.fail(
                    f"step {t}, processor {i}: recorded progress "
                    f"{format_frac(step.processed[i])} != derived "
                    f"{format_frac(progress)}"
                )
            left[i] -= progress
            if left[i] == ZERO:
                jid = (i, current[i])
                report.completion_steps[jid] = t
                recorded = schedule.completion_steps.get(jid)
                if recorded != t:
                    report.fail(
                        f"job {jid}: schedule records completion at "
                        f"{recorded}, derived {t}"
                    )
                current[i] += 1
                if current[i] < inst.num_jobs(i):
                    left[i] = inst.job(i, current[i]).work

    for i in range(m):
        if current[i] < inst.num_jobs(i):
            report.fail(
                f"processor {i}: {inst.num_jobs(i) - current[i]} job(s) "
                f"unfinished at the end"
            )
    return report


def verify_share_rows(
    instance: Instance,
    rows: Sequence[Sequence[float]],
    *,
    atol: float = 1e-9,
) -> VerificationReport:
    """Epsilon-tolerant re-execution of raw float share rows.

    Checks every model rule of Section 3.1 with an absolute tolerance
    *atol*: shares may stray outside ``[0, 1]`` and per-step totals
    above 1 by at most *atol*, and a job counts as complete once its
    remaining work drops to ``<= atol``.  This is the independent
    auditor for :class:`~repro.backends.vector.VectorBackend` output;
    pass ``atol`` matching the backend's completion tolerance.

    The report's ``completion_steps`` are derived exactly as in
    :func:`verify_schedule`, so the two can be compared job by job
    when cross-validating backends.

    Multi-resource instances are audited with the same tolerance
    discipline: each step's row is then a ``k x m`` share matrix,
    every resource row is checked against its unit capacity, and
    progress follows the bottleneck rule
    (``min_l min(s_l, r_l) / r_l`` of full speed).
    """
    if instance.num_resources != 1:
        return _verify_share_matrix_rows(instance, rows, atol=atol)
    report = VerificationReport()
    m = instance.num_processors
    current = [0] * m
    left = [float(instance.job(i, 0).work) for i in range(m)]
    requirement = [float(instance.job(i, 0).requirement) for i in range(m)]

    for t, row in enumerate(rows):
        if len(row) != m:
            report.fail(f"step {t}: share row has {len(row)} entries, expected {m}")
            return report
        total = 0.0
        for i in range(m):
            share = float(row[i])
            total += share
            if share < -atol or share > 1.0 + atol:
                report.fail(f"step {t}: share {share} out of [0,1] (+/- {atol})")
        if total > 1.0 + atol:
            report.fail(f"step {t}: capacity overused ({total})")
        for i in range(m):
            if current[i] >= instance.num_jobs(i):
                continue
            if t < instance.release(i):
                continue  # not yet released: granted shares are wasted
            progress = min(max(float(row[i]), 0.0), requirement[i], left[i])
            left[i] -= progress
            if left[i] <= atol:
                report.completion_steps[(i, current[i])] = t
                current[i] += 1
                if current[i] < instance.num_jobs(i):
                    left[i] = float(instance.job(i, current[i]).work)
                    requirement[i] = float(instance.job(i, current[i]).requirement)

    for i in range(m):
        if current[i] < instance.num_jobs(i):
            report.fail(
                f"processor {i}: {instance.num_jobs(i) - current[i]} job(s) "
                f"unfinished at the end (remaining ~ {left[i]})"
            )
    return report


def _verify_share_matrix_rows(
    instance: Instance,
    rows: Sequence[Sequence[Sequence[float]]],
    *,
    atol: float,
) -> VerificationReport:
    """Multi-resource arm of :func:`verify_share_rows`.

    Each entry of *rows* is one step's ``k x m`` share matrix; the
    model rules are re-derived independently of both runtimes (the
    same defense-in-depth role the flat verifier plays for ``k = 1``).
    """
    report = VerificationReport()
    m = instance.num_processors
    k = instance.num_resources
    current = [0] * m
    left = [float(instance.job(i, 0).work) for i in range(m)]
    reqs = [
        [float(r) for r in instance.job(i, 0).requirements] for i in range(m)
    ]

    for t, matrix in enumerate(rows):
        if len(matrix) != k:
            report.fail(
                f"step {t}: share matrix has {len(matrix)} rows, "
                f"expected one per resource ({k})"
            )
            return report
        for lane, row in enumerate(matrix):
            if len(row) != m:
                report.fail(
                    f"step {t}, resource {lane}: share row has "
                    f"{len(row)} entries, expected {m}"
                )
                return report
            total = 0.0
            for share in row:
                share = float(share)
                total += share
                if share < -atol or share > 1.0 + atol:
                    report.fail(
                        f"step {t}, resource {lane}: share {share} out "
                        f"of [0,1] (+/- {atol})"
                    )
            if total > 1.0 + atol:
                report.fail(
                    f"step {t}, resource {lane}: capacity overused ({total})"
                )
        for i in range(m):
            if current[i] >= instance.num_jobs(i):
                continue
            if t < instance.release(i):
                continue  # not yet released: granted shares are wasted
            rstar = max(reqs[i])
            if rstar <= 0.0:
                progress = left[i]  # zero-requirement job: free
            else:
                fraction = 1.0
                for lane in range(k):
                    r = reqs[i][lane]
                    if r > 0.0:
                        granted = min(max(float(matrix[lane][i]), 0.0), r) / r
                        fraction = min(fraction, granted)
                progress = min(fraction * rstar, left[i])
            left[i] -= progress
            if left[i] <= atol:
                report.completion_steps[(i, current[i])] = t
                current[i] += 1
                if current[i] < instance.num_jobs(i):
                    nxt = instance.job(i, current[i])
                    left[i] = float(nxt.work)
                    reqs[i] = [float(r) for r in nxt.requirements]

    for i in range(m):
        if current[i] < instance.num_jobs(i):
            report.fail(
                f"processor {i}: {instance.num_jobs(i) - current[i]} job(s) "
                f"unfinished at the end (remaining ~ {left[i]})"
            )
    return report
