"""Schedule quality metrics.

Everything the experiment harness reports about a schedule, in exact
arithmetic: objective values (makespan by default, any registered
objective on request), utilization/waste, ratios against lower bounds
and optima, and per-step traces for visualization.

Since the objective-layer refactor the makespan-specific numbers are
computed *through* the :class:`~repro.objectives.base.Objective`
protocol (``Makespan`` is pinned bit-identical to
``Schedule.makespan``), and :func:`compute_metrics` can evaluate any
set of registered objectives into an objective-keyed report.  The
module also ships independent closed-form evaluators
(:func:`weighted_flow_time`, :func:`total_tardiness`,
:func:`max_lateness`, :func:`deadline_misses`) that recompute the
flow/tardiness objectives directly from a schedule's completion
records -- the defense-in-depth cross-check the tests hold the online
accumulators against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Iterable, Mapping

from ..core.lower_bounds import best_lower_bound
from ..core.numerics import as_float
from ..core.schedule import Schedule
from ..objectives import get_objective
from ..objectives.base import Objective

__all__ = [
    "ScheduleMetrics",
    "compute_metrics",
    "approximation_ratio",
    "total_completion_time",
    "mean_completion_time",
    "weighted_flow_time",
    "total_tardiness",
    "max_lateness",
    "deadline_misses",
]


@dataclass(frozen=True, slots=True)
class ScheduleMetrics:
    """Aggregate quality numbers for one schedule.

    Attributes:
        makespan: number of steps.
        total_work: the instance's total work (Observation 1 quantity).
        utilization: average fraction of capacity converted to work.
        waste: total capacity left unconverted, summed over steps.
        lower_bound: the strongest certificate lower bound available
            (Observation 1, length, and -- when the schedule is
            unit-size -- the Lemma 5/6 bounds derived from it).
        ratio_vs_lower_bound: ``makespan / lower_bound`` -- an upper
            bound on the true approximation ratio.
        objectives: objective-keyed report, one entry per evaluated
            objective: ``{"value", "lower_bound", "ratio"}``.  Always
            contains ``"makespan"``; more appear when
            :func:`compute_metrics` is asked for them.
    """

    makespan: int
    total_work: Fraction
    utilization: Fraction
    waste: Fraction
    lower_bound: int
    ratio_vs_lower_bound: Fraction
    objectives: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        """Flat dict for table/CSV rendering (floats for readability).

        The legacy makespan columns keep their exact names and values;
        every additionally evaluated objective contributes
        ``<name>`` and ``<name>_ratio`` columns.
        """
        row: dict[str, object] = {
            "makespan": self.makespan,
            "total_work": round(as_float(self.total_work), 4),
            "utilization": round(as_float(self.utilization), 4),
            "waste": round(as_float(self.waste), 4),
            "lower_bound": self.lower_bound,
            "ratio_vs_lb": round(as_float(self.ratio_vs_lower_bound), 4),
        }
        for name, report in self.objectives.items():
            if name == "makespan":
                continue
            row[name] = round(float(report["value"]), 4)
            row[f"{name}_ratio"] = round(float(report["ratio"]), 4)
        return row


def compute_metrics(
    schedule: Schedule,
    *,
    objectives: Iterable[Objective | str] = (),
) -> ScheduleMetrics:
    """Compute :class:`ScheduleMetrics` for a validated schedule.

    Args:
        schedule: the schedule to grade.
        objectives: extra objectives (registry names or instances) to
            evaluate alongside the makespan; their reports land in
            :attr:`ScheduleMetrics.objectives`.

    The makespan entry uses :func:`repro.core.lower_bounds.best_lower_bound`
    (the schedule-certificate bound, stronger than the instance-only
    :meth:`~repro.objectives.makespan.Makespan.lower_bound`), keeping
    the legacy columns bit-identical to the pre-objective-layer output.
    """
    instance = schedule.instance
    makespan_obj = get_objective("makespan")
    makespan = makespan_obj.value(schedule)
    lb = best_lower_bound(instance, schedule if instance.is_unit_size else None)
    report: dict[str, dict[str, Any]] = {
        "makespan": {
            "value": makespan,
            "lower_bound": lb,
            "ratio": makespan_obj.ratio(makespan, lb),
        }
    }
    for entry in objectives:
        objective = get_objective(entry) if isinstance(entry, str) else entry
        if objective.name == "makespan":
            continue
        value = objective.value(schedule)
        bound = objective.lower_bound(instance)
        report[objective.name] = {
            "value": value,
            "lower_bound": bound,
            "ratio": objective.ratio(value, bound),
        }
    return ScheduleMetrics(
        makespan=makespan,
        total_work=instance.total_work(),
        utilization=schedule.utilization(),
        waste=schedule.total_waste(),
        lower_bound=lb,
        ratio_vs_lower_bound=Fraction(makespan, max(lb, 1)),
        objectives=report,
    )


def approximation_ratio(schedule: Schedule, optimal_makespan: int) -> Fraction:
    """Exact ``S / OPT`` (the paper's abuse of notation ``S/OPT``)."""
    if optimal_makespan <= 0:
        raise ValueError("optimal makespan must be positive")
    return Fraction(schedule.makespan, optimal_makespan)


def total_completion_time(schedule: Schedule) -> int:
    """Sum of (1-based) job completion steps.

    The discrete-continuous literature the paper builds on also studies
    mean completion/flow time (Józefowska & Weglarz 1996, cited as [10]);
    exposing the objective lets the ratio studies compare policies under
    it even though the paper's analysis targets the makespan.
    """
    return sum(t + 1 for t in schedule.completion_steps.values())


def mean_completion_time(schedule: Schedule) -> Fraction:
    """Average (1-based) completion step over all jobs."""
    total = total_completion_time(schedule)
    return Fraction(total, schedule.instance.total_jobs)


def weighted_flow_time(schedule: Schedule) -> Fraction:
    """:math:`F_w = \\sum w_{ij} (C_{ij} - r_i)`, computed directly.

    Independent of the online accumulator in
    :mod:`repro.objectives.flow` (closed-form over the schedule's
    completion records); the tests assert the two agree.
    """
    instance = schedule.instance
    total = Fraction(0)
    for (i, j), t in schedule.completion_steps.items():
        total += instance.job(i, j).weight * (t + 1 - instance.release(i))
    return total


def total_tardiness(schedule: Schedule) -> Fraction:
    """:math:`\\sum w_{ij} \\max(0, C_{ij} - d_{ij})`, computed directly.

    Jobs without a deadline contribute nothing; the independent
    counterpart of the ``"tardiness"`` objective.
    """
    instance = schedule.instance
    total = Fraction(0)
    for (i, j), t in schedule.completion_steps.items():
        job = instance.job(i, j)
        if job.deadline is not None and t + 1 > job.deadline:
            total += job.weight * (t + 1 - job.deadline)
    return total


def max_lateness(schedule: Schedule) -> int:
    """:math:`L_{max} = \\max (C_{ij} - d_{ij})` over deadline jobs.

    0 when no job carries a deadline (matching the ``"max-lateness"``
    objective's convention); may be negative when every deadline is
    met with slack.
    """
    lateness = [
        t + 1 - job.deadline
        for (i, j), t in schedule.completion_steps.items()
        if (job := schedule.instance.job(i, j)).deadline is not None
    ]
    return max(lateness) if lateness else 0


def deadline_misses(schedule: Schedule) -> int:
    """Number of jobs completing after their due step.

    The independent counterpart of the ``"deadline-misses"``
    (feasibility-count) objective; 0 iff the schedule meets every
    deadline.
    """
    return len(schedule.lateness_by_job())
