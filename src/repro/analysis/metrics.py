"""Schedule quality metrics.

Everything the experiment harness reports about a schedule, in exact
arithmetic: makespan, utilization/waste, ratios against lower bounds
and optima, and per-step traces for visualization.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.lower_bounds import best_lower_bound
from ..core.numerics import as_float
from ..core.schedule import Schedule

__all__ = [
    "ScheduleMetrics",
    "compute_metrics",
    "approximation_ratio",
    "total_completion_time",
    "mean_completion_time",
]


@dataclass(frozen=True, slots=True)
class ScheduleMetrics:
    """Aggregate quality numbers for one schedule.

    Attributes:
        makespan: number of steps.
        total_work: the instance's total work (Observation 1 quantity).
        utilization: average fraction of capacity converted to work.
        waste: total capacity left unconverted, summed over steps.
        lower_bound: the strongest certificate lower bound available
            (Observation 1, length, and -- when the schedule is
            unit-size -- the Lemma 5/6 bounds derived from it).
        ratio_vs_lower_bound: ``makespan / lower_bound`` -- an upper
            bound on the true approximation ratio.
    """

    makespan: int
    total_work: Fraction
    utilization: Fraction
    waste: Fraction
    lower_bound: int
    ratio_vs_lower_bound: Fraction

    def as_row(self) -> dict[str, object]:
        """Flat dict for table/CSV rendering (floats for readability)."""
        return {
            "makespan": self.makespan,
            "total_work": round(as_float(self.total_work), 4),
            "utilization": round(as_float(self.utilization), 4),
            "waste": round(as_float(self.waste), 4),
            "lower_bound": self.lower_bound,
            "ratio_vs_lb": round(as_float(self.ratio_vs_lower_bound), 4),
        }


def compute_metrics(schedule: Schedule) -> ScheduleMetrics:
    """Compute :class:`ScheduleMetrics` for a validated schedule."""
    instance = schedule.instance
    lb = best_lower_bound(instance, schedule if instance.is_unit_size else None)
    return ScheduleMetrics(
        makespan=schedule.makespan,
        total_work=instance.total_work(),
        utilization=schedule.utilization(),
        waste=schedule.total_waste(),
        lower_bound=lb,
        ratio_vs_lower_bound=Fraction(schedule.makespan, max(lb, 1)),
    )


def approximation_ratio(schedule: Schedule, optimal_makespan: int) -> Fraction:
    """Exact ``S / OPT`` (the paper's abuse of notation ``S/OPT``)."""
    if optimal_makespan <= 0:
        raise ValueError("optimal makespan must be positive")
    return Fraction(schedule.makespan, optimal_makespan)


def total_completion_time(schedule: Schedule) -> int:
    """Sum of (1-based) job completion steps.

    The discrete-continuous literature the paper builds on also studies
    mean completion/flow time (Józefowska & Weglarz 1996, cited as [10]);
    exposing the objective lets the ratio studies compare policies under
    it even though the paper's analysis targets the makespan.
    """
    return sum(t + 1 for t in schedule.completion_steps.values())


def mean_completion_time(schedule: Schedule) -> Fraction:
    """Average (1-based) completion step over all jobs."""
    total = total_completion_time(schedule)
    return Fraction(total, schedule.instance.total_jobs)
