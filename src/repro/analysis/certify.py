"""Optimality certification over queue orders.

The public face of :mod:`repro.algorithms.opt_order`: run the
branch-and-bound order search and package the outcome as a
:class:`Certificate` -- value, witness order, search statistics, and
crucially the ``proved`` flag that separates "this is OPT" from "this
is the best order we found before the node budget ran out".

Two certification modes:

``mode="exact"``
    Each complete order is evaluated by the per-order exact oracles
    (Theorem 5's m=2 DP / Theorem 6's configuration search), so the
    certified value is the true sequencing-aware optimum

    .. math:: \\mathrm{OPT}^* = \\min_{\\sigma} \\mathrm{OPT}(I^\\sigma)

    over exact rational arithmetic.  Requires the oracles' model
    (single resource, unit sizes, no arrivals).

``mode="epsilon"``
    A *policy* is certified instead of the offline optimum: complete
    orders are evaluated by running the policy through a simulation
    backend (default the fast float64 vector backend, completion
    tolerance 1e-9 -- hence "epsilon").  The certificate then reads
    "no queue order lets this policy finish sooner than ``value``",
    which is exactly the quantity ``LocalSearchSequencer`` chases
    heuristically.  Works for any instance the backends accept
    (multi-resource, arrivals, non-unit sizes).

Telemetry: under an installed session, certification emits a
``certify.opt`` span and ``certify.nodes`` / ``certify.pruned`` /
``certify.bound_calls`` counters, so ``crsharing certify --trace``
shows where the search time went.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Callable

from ..algorithms.opt_order import (
    branch_and_bound_order,
    order_invariant_lower_bound,
    order_space_size,
)
from ..core.instance import Instance
from ..exceptions import SolverError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..algorithms.base import Policy

__all__ = ["Certificate", "certify_opt"]

#: Default branch-and-bound node budget (beyond it: ``proved=False``).
DEFAULT_MAX_NODES = 100_000


@dataclass(frozen=True, slots=True)
class Certificate:
    """Outcome of one :func:`certify_opt` call.

    Attributes:
        value: best makespan found over all queue orders.  When
            ``proved`` this is the certified optimum; otherwise it is
            only an upper bound on it.
        order: per-queue index permutations witnessing ``value``;
            ``instance.with_order([list(row) for row in order])``
            reproduces it.
        nodes: branch-and-bound nodes expanded.
        bound_calls: prefix-oracle lower-bound evaluations.
        proved: True iff the search closed every branch within the
            node budget -- only then may ``value`` be used as a lower
            bound on other runs.
        mode: ``"exact"`` (per-order exact oracles) or ``"epsilon"``
            (policy through a float64 backend).
        pruned: subtrees cut by the bound test.
        leaf_evaluations: complete orders actually evaluated.
        lower_bound: order-invariant global lower bound used at the
            root (``lower_bound <= value`` always).
        order_space: ``prod_i n_i!`` -- the unreduced search space.
        evaluator: human-readable description of the leaf evaluator.
        seconds: wall-clock time of the search.
    """

    value: int
    order: tuple[tuple[int, ...], ...]
    nodes: int
    bound_calls: int
    proved: bool
    mode: str = "exact"
    pruned: int = 0
    leaf_evaluations: int = 0
    lower_bound: int = 0
    order_space: int = 1
    evaluator: str = "exact-oracle"
    seconds: float = field(default=0.0, compare=False)

    def witness(self, instance: Instance) -> Instance:
        """*instance* reordered to the certified order (the witness)."""
        return instance.with_order([list(row) for row in self.order])

    def gap(self, value: int | float) -> float:
        """Optimality gap of *value* against the certified optimum.

        ``(value - OPT) / OPT`` -- 0.0 means *value* matches the
        certificate.  Raises :class:`SolverError` when the certificate
        is unproved (its value is an upper bound, so a "gap" against
        it would be meaningless and possibly negative).
        """
        if not self.proved:
            raise SolverError(
                "cannot compute an optimality gap from an unproved "
                "certificate (value is only an upper bound); raise "
                "max_nodes and re-certify"
            )
        return (value - self.value) / self.value

    def summary(self) -> dict:
        """A JSON-friendly dict of the certificate (CLI / bench stores)."""
        return {
            "value": self.value,
            "order": [list(row) for row in self.order],
            "proved": self.proved,
            "mode": self.mode,
            "nodes": self.nodes,
            "bound_calls": self.bound_calls,
            "pruned": self.pruned,
            "leaf_evaluations": self.leaf_evaluations,
            "lower_bound": self.lower_bound,
            "order_space": self.order_space,
            "evaluator": self.evaluator,
            "seconds": self.seconds,
        }


def _policy_evaluator(
    policy, backend: str, objective: str | None
) -> tuple[Callable[[Instance], int | float], str]:
    """Build an ``Instance -> value`` evaluator running *policy*."""
    from ..core.simulator import run_policy

    kwargs: dict = {}
    if objective is not None:
        kwargs["objectives"] = (objective,)

    def evaluate(inst: Instance) -> int | float:
        result = run_policy(inst, policy, backend=backend, **kwargs)
        if objective is not None:
            return result.objective_values[objective]
        return result.makespan

    name = policy if isinstance(policy, str) else type(policy).__name__
    target = objective or "makespan"
    return evaluate, f"policy:{name}/{backend}/{target}"


def certify_opt(
    instance: Instance,
    *,
    oracle: str = "auto",
    policy=None,
    backend: str = "vector",
    objective: str | None = None,
    max_nodes: int = DEFAULT_MAX_NODES,
) -> Certificate:
    """Certify the optimal queue order of *instance*.

    With no *policy* (the default), runs the exact mode: branch and
    bound over per-queue orders with each leaf evaluated by the
    per-order exact *oracle* -- the certified value is the true
    order-aware optimum OPT*.  With a *policy* (name or object), runs
    the epsilon mode: leaves are evaluated by simulating the policy
    through *backend* (and optionally a registered *objective*), so
    the certificate bounds what any queue order can achieve **for that
    policy**.

    Args:
        instance: the instance to certify.
        oracle: per-order exact oracle name for the exact mode
            ("auto", "opt-two", "opt-general", "brute-force", "milp").
        policy: optional policy (registry name or object) switching to
            the epsilon mode.
        backend: simulation backend for the epsilon mode.
        objective: optional registered objective name for the epsilon
            mode (default: makespan).
        max_nodes: branch-and-bound node budget; when exhausted the
            certificate comes back with ``proved=False``.

    Returns:
        A :class:`Certificate`.  Check ``certificate.proved`` before
        using ``certificate.value`` as a lower bound on anything.

    Example:
        >>> from repro.core import Instance
        >>> cert = certify_opt(Instance([["1/2", 1, "1/2"], [1, "1/2", 1]]))
        >>> cert.value, cert.proved, cert.mode
        (5, True, 'exact')
    """
    from ..telemetry import get_session

    t0 = perf_counter()
    if policy is None:
        mode = "exact"
        evaluator = None
        evaluator_name = f"exact-oracle:{oracle}"
        prefix_bounds = True
    else:
        mode = "epsilon" if backend != "exact" else "exact"
        evaluator, evaluator_name = _policy_evaluator(policy, backend, objective)
        # Prefix oracle bounds stay admissible for policies: any
        # policy's makespan on a completion is >= OPT of that order,
        # which is >= OPT of the committed prefix.  They are NOT valid
        # for non-makespan objectives, where the oracle bounds the
        # wrong quantity.
        prefix_bounds = objective is None
    result = branch_and_bound_order(
        instance,
        evaluator=evaluator,
        oracle=oracle,
        max_nodes=max_nodes,
        prefix_bounds=prefix_bounds,
        lower_bound_fn=(
            order_invariant_lower_bound if objective is None else (lambda inst: 0)
        ),
    )
    seconds = perf_counter() - t0
    session = get_session()
    if session is not None:
        session.metrics.counter("certify.nodes").inc(result.nodes)
        session.metrics.counter("certify.pruned").inc(result.pruned)
        session.metrics.counter("certify.bound_calls").inc(result.bound_calls)
        session.tracer.complete(
            "certify.opt",
            t0,
            seconds,
            mode=mode,
            value=result.value,
            proved=result.proved,
            nodes=result.nodes,
            pruned=result.pruned,
            bound_calls=result.bound_calls,
            order_space=order_space_size(instance),
        )
    return Certificate(
        value=result.value,
        order=result.order,
        nodes=result.nodes,
        bound_calls=result.bound_calls,
        proved=result.proved,
        mode=mode,
        pruned=result.pruned,
        leaf_evaluations=result.leaf_evaluations,
        lower_bound=result.lower_bound,
        order_space=result.order_space,
        evaluator=evaluator_name,
        seconds=seconds,
    )
