"""Schedule analysis: metrics, verification, certification, ratio studies."""

from .certify import Certificate, certify_opt
from .metrics import (
    ScheduleMetrics,
    approximation_ratio,
    compute_metrics,
    deadline_misses,
    max_lateness,
    mean_completion_time,
    total_completion_time,
    total_tardiness,
    weighted_flow_time,
)
from .ratios import PolicyStats, RatioStudy, run_ratio_study
from .verification import VerificationReport, verify_schedule, verify_share_rows

__all__ = [
    "Certificate",
    "PolicyStats",
    "RatioStudy",
    "ScheduleMetrics",
    "VerificationReport",
    "approximation_ratio",
    "certify_opt",
    "compute_metrics",
    "deadline_misses",
    "max_lateness",
    "mean_completion_time",
    "run_ratio_study",
    "total_completion_time",
    "total_tardiness",
    "verify_schedule",
    "weighted_flow_time",
    "verify_share_rows",
]
