"""Schedule analysis: metrics, verification, and ratio studies."""

from .metrics import (
    ScheduleMetrics,
    approximation_ratio,
    compute_metrics,
    mean_completion_time,
    total_completion_time,
)
from .ratios import PolicyStats, RatioStudy, run_ratio_study
from .verification import VerificationReport, verify_schedule, verify_share_rows

__all__ = [
    "PolicyStats",
    "RatioStudy",
    "ScheduleMetrics",
    "VerificationReport",
    "approximation_ratio",
    "compute_metrics",
    "mean_completion_time",
    "run_ratio_study",
    "total_completion_time",
    "verify_schedule",
    "verify_share_rows",
]
