"""Pluggable admission control for the scheduling service.

On every arrival the engine proposes a queue placement, assembles an
:class:`AdmissionContext` describing the system at that instant, and
asks the configured policy whether to admit the job.  Rejected jobs
never enter the instance; the decision is recorded in the event log
so replays reproduce it exactly (policies must therefore be
deterministic functions of the context).

Three policies ship:

* ``accept-all`` -- the open-loop default;
* ``utilization-cap`` -- admit while the projected backlog stays
  under ``cap`` times a work window (load shedding);
* ``deadline-feasibility`` -- admit deadline jobs only when the
  proposed queue can still finish them by their deadline even at full
  speed (jobs without a deadline are always admitted).

Resolve policies by registry name via :func:`get_admission`; unknown
names raise :class:`~repro.exceptions.ServiceError` listing
:func:`available_admission`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..core.job import Job
from ..exceptions import ServiceError

__all__ = [
    "AcceptAll",
    "AdmissionContext",
    "AdmissionPolicy",
    "DeadlineFeasibility",
    "UtilizationCap",
    "available_admission",
    "get_admission",
]


@dataclass(frozen=True, slots=True)
class AdmissionContext:
    """Everything an admission policy may look at for one arrival.

    Attributes:
        time: the arrival step.
        job: the candidate job.
        queue_index: the queue the engine proposes to append to.
        queue_backlog: full-speed steps of unfinished work already
            queued on ``queue_index`` (the candidate's wait bound).
        total_backlog: unfinished work (processing volume) across all
            queues, as a float.
        num_processors: current logical queue count of the service.
    """

    time: int
    job: Job
    queue_index: int
    queue_backlog: float
    total_backlog: float
    num_processors: int


class AdmissionPolicy(ABC):
    """Decides, per arrival, whether a job enters the system.

    Implementations must be deterministic in the context -- the event
    log records only the *decision*, and replay re-derives it.
    """

    #: Registry name (set by subclasses).
    name: str = "?"

    @abstractmethod
    def admit(self, ctx: AdmissionContext) -> bool:
        """True to accept the arrival, False to shed it."""

    def describe(self) -> str:
        """Human-readable one-line form for reports and logs."""
        return self.name

    def options(self) -> dict[str, float | int]:
        """Constructor options for event-log configs (replayability)."""
        return {}


class AcceptAll(AdmissionPolicy):
    """Admit every arrival (the open-loop default)."""

    name = "accept-all"

    def admit(self, ctx: AdmissionContext) -> bool:
        """Always True."""
        return True


class UtilizationCap(AdmissionPolicy):
    """Shed load once the backlog fills a utilization window.

    Admits an arrival iff the projected total backlog (current
    unfinished work plus the candidate's processing volume) stays
    within ``cap * window`` units of work.  With the default
    ``cap=0.9, window=64`` the service keeps roughly a 90%-full
    64-step work buffer and rejects bursts beyond it.

    Args:
        cap: target utilization in ``(0, 1]``.
        window: work-buffer size in full-speed steps (>= 1).
    """

    name = "utilization-cap"

    def __init__(self, *, cap: float = 0.9, window: int = 64) -> None:
        if not 0 < cap <= 1:
            raise ServiceError(f"cap must be in (0, 1], got {cap}")
        if window < 1:
            raise ServiceError(f"window must be >= 1, got {window}")
        self.cap = float(cap)
        self.window = int(window)

    def admit(self, ctx: AdmissionContext) -> bool:
        """True while backlog + candidate work fits the capped window."""
        projected = ctx.total_backlog + float(ctx.job.work)
        return projected <= self.cap * self.window

    def describe(self) -> str:
        """Name plus the cap/window parameters."""
        return f"{self.name}(cap={self.cap}, window={self.window})"

    def options(self) -> dict[str, float | int]:
        """The cap/window parameters (for event-log configs)."""
        return {"cap": self.cap, "window": self.window}


class DeadlineFeasibility(AdmissionPolicy):
    """Reject deadline jobs that can no longer make their deadline.

    A job with deadline ``d`` is admitted iff even the optimistic
    bound -- arrival time plus the proposed queue's full-speed backlog
    plus the job's own full-speed steps -- does not exceed ``d``.
    Queues are sequential, so this bound is a true feasibility
    necessary condition; jobs without a deadline always pass.
    """

    name = "deadline-feasibility"

    def admit(self, ctx: AdmissionContext) -> bool:
        """True when the deadline is absent or still reachable."""
        if ctx.job.deadline is None:
            return True
        finish_bound = (
            ctx.time + ctx.queue_backlog + ctx.job.steps_at_full_speed()
        )
        return finish_bound <= ctx.job.deadline


_REGISTRY: dict[str, type[AdmissionPolicy]] = {
    AcceptAll.name: AcceptAll,
    UtilizationCap.name: UtilizationCap,
    DeadlineFeasibility.name: DeadlineFeasibility,
}


def available_admission() -> list[str]:
    """Sorted registry names of the admission policies."""
    return sorted(_REGISTRY)


def get_admission(policy: str | AdmissionPolicy, **options) -> AdmissionPolicy:
    """Resolve an admission policy by name (or pass one through).

    Args:
        policy: a registry name or an :class:`AdmissionPolicy`.
        options: keyword options for the named policy's constructor
            (e.g. ``cap=0.8`` for ``utilization-cap``).

    Raises:
        ServiceError: unknown name, or options passed alongside an
            already-constructed policy.
    """
    if isinstance(policy, AdmissionPolicy):
        if options:
            raise ServiceError(
                "options are only accepted with a registry name, "
                f"not an {type(policy).__name__} object"
            )
        return policy
    cls = _REGISTRY.get(policy)
    if cls is None:
        raise ServiceError(
            f"unknown admission policy {policy!r}; "
            f"available: {available_admission()}"
        )
    try:
        return cls(**options)
    except TypeError as exc:
        raise ServiceError(
            f"bad options for admission policy {policy!r}: {exc}"
        ) from exc
