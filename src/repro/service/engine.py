"""The always-on scheduling service: event-driven incremental runs.

:class:`SchedulingService` keeps one live kernel runtime and reacts to
arrival events instead of re-simulating from ``t=0``:

1. **advance** the runtime to the arrival step (idle gaps are
   fast-forwarded through the checkpoint layer, never simulated);
2. **place** the job -- a new logical queue while the service is
   below ``max_queues``, otherwise the least-loaded existing queue;
3. **admit or shed** via the pluggable admission policy
   (:mod:`repro.service.admission`);
4. on admission, **extend** the instance (tail-append or new queue
   released at the arrival step) and restore the checkpoint into it --
   the grown run continues bit-identically.

Every decision lands in an event log replayable through
:func:`replay_log`; :meth:`SchedulingService.report` summarizes
steady-state utilization and per-event scheduling-latency percentiles.

``mode="from-scratch"`` keeps identical semantics but rebuilds the
kernel state from ``t=0`` on every event -- the quadratic baseline the
service benchmark gates the incremental path against (>= 5x on a
500-job stream, see ``benchmarks/bench_service.py``).

Example:
    >>> from repro.service import ArrivalEvent, SchedulingService
    >>> from repro.core import Job
    >>> svc = SchedulingService(policy="greedy-balance", max_queues=2)
    >>> svc.submit(ArrivalEvent(0, Job("1/2")))
    True
    >>> svc.submit(ArrivalEvent(1, Job("3/4")))
    True
    >>> svc.drain()
    2
    >>> svc.report().completed
    2
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..algorithms import get_policy
from ..backends.vector import VectorRuntime
from ..core.checkpoint import checkpoint_run, restore_runtime
from ..core.instance import Instance
from ..core.job import Job
from ..core.kernel import CompletionRecorder, ExactRuntime, run_kernel
from ..core.simulator import default_step_limit
from ..exceptions import ServiceError
from ..io.serialization import job_from_dict, job_to_dict
from ..telemetry import get_session
from .admission import AdmissionContext, AdmissionPolicy, get_admission
from .events import ArrivalEvent

__all__ = ["SchedulingService", "ServiceReport", "replay_log"]

_BACKENDS = ("exact", "vector")
_MODES = ("incremental", "from-scratch")


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values), max(1, math.ceil(q * len(sorted_values))))
    return sorted_values[rank - 1]


@dataclass(frozen=True, slots=True)
class ServiceReport:
    """Steady-state summary of one service run.

    Attributes:
        policy: scheduling policy registry name.
        backend: kernel backend (``"exact"`` / ``"vector"``).
        admission: admission policy description.
        mode: ``"incremental"`` or ``"from-scratch"``.
        num_queues: logical queues at shutdown.
        final_step: the step the run drained at (0 if nothing ran).
        submitted: arrival events offered to the service.
        admitted: arrivals accepted into the system.
        rejected: arrivals shed by admission control.
        completed: jobs finished by drain time.
        dropped_events: events lost by the engine -- always 0; the
            soak test pins it.
        total_work: processing volume admitted (float).
        utilization: admitted work / (queues x elapsed steps), the
            steady-state busy fraction in ``[0, 1]``.
        latency_percentiles: per-event scheduling-latency seconds at
            p50/p90/p99, plus mean and max.
    """

    policy: str
    backend: str
    admission: str
    mode: str
    num_queues: int
    final_step: int
    submitted: int
    admitted: int
    rejected: int
    completed: int
    dropped_events: int
    total_work: float
    utilization: float
    latency_percentiles: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the ``crsharing serve`` report payload)."""
        return {
            "policy": self.policy,
            "backend": self.backend,
            "admission": self.admission,
            "mode": self.mode,
            "num_queues": self.num_queues,
            "final_step": self.final_step,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "dropped_events": self.dropped_events,
            "total_work": self.total_work,
            "utilization": self.utilization,
            "latency_percentiles": dict(self.latency_percentiles),
        }

    def render(self) -> str:
        """Human-readable multi-line report for the CLI."""
        lat = self.latency_percentiles
        lines = [
            f"policy={self.policy} backend={self.backend} "
            f"admission={self.admission} mode={self.mode}",
            f"queues={self.num_queues} final_step={self.final_step}",
            f"events: submitted={self.submitted} admitted={self.admitted} "
            f"rejected={self.rejected} completed={self.completed} "
            f"dropped={self.dropped_events}",
            f"utilization={self.utilization:.3f} "
            f"(total_work={self.total_work:.2f})",
            "scheduling latency: "
            + " ".join(
                f"{key}={lat.get(key, 0.0) * 1e3:.3f}ms"
                for key in ("p50", "p90", "p99", "max")
            ),
        ]
        return "\n".join(lines)


class SchedulingService:
    """A long-running, event-driven scheduler over the stepping kernel.

    Args:
        policy: scheduling policy registry name (or callable accepted
            by :func:`repro.algorithms.get_policy` names only here --
            the event log must be able to name it).
        backend: ``"vector"`` (default, float64) or ``"exact"``
            (Fraction arithmetic).
        admission: admission policy registry name or
            :class:`~repro.service.admission.AdmissionPolicy` object.
        max_queues: logical queue cap -- the service grows one queue
            per early arrival up to this many "cores", then places on
            the least-loaded queue.
        mode: ``"incremental"`` (advance the live runtime between
            events; the point of this subsystem) or ``"from-scratch"``
            (rebuild kernel state from ``t=0`` on every event; the
            quadratic baseline for the benchmark gate).  Both modes
            produce bit-identical schedules.

    Raises:
        ServiceError: unknown backend/mode/admission, bad
            ``max_queues``.
    """

    def __init__(
        self,
        *,
        policy: str = "greedy-balance",
        backend: str = "vector",
        admission: str | AdmissionPolicy = "accept-all",
        max_queues: int = 8,
        mode: str = "incremental",
    ) -> None:
        if backend not in _BACKENDS:
            raise ServiceError(
                f"unknown service backend {backend!r}; "
                f"available: {list(_BACKENDS)}"
            )
        if mode not in _MODES:
            raise ServiceError(
                f"unknown service mode {mode!r}; available: {list(_MODES)}"
            )
        if max_queues < 1:
            raise ServiceError(f"max_queues must be >= 1, got {max_queues}")
        self.policy_name = policy
        self._policy = get_policy(policy)
        self.backend = backend
        self.admission = get_admission(admission)
        self.max_queues = int(max_queues)
        self.mode = mode
        self._instance: Instance | None = None
        self._runtime = None
        self._recorder = CompletionRecorder()
        self._clock = 0
        self._closed = False
        self._seq = 0
        self._records: list[dict[str, Any]] = []
        self._history: list[tuple[Job, int, int]] = []
        self._latencies: list[float] = []
        self._logged_completions: set[tuple[int, int]] = set()
        self.submitted = 0
        self.admitted = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    # Kernel plumbing
    # ------------------------------------------------------------------
    def _new_runtime(self, instance: Instance):
        if self.backend == "exact":
            return ExactRuntime(instance)
        return VectorRuntime(instance)

    def _sim_to(self, target: int) -> None:
        """Step the live runtime forward to *target* (no rebuild)."""
        if self._instance is None:
            return
        limit = default_step_limit(self._instance) + target + 16
        finished = run_kernel(
            self._runtime,
            self._policy,
            (self._recorder,),
            max_steps=limit,
            stop=lambda rt: rt.t >= target,
        )
        if finished is not None and finished < target:
            # Drained before the event: fast-forward over the idle gap
            # instead of simulating empty steps.
            ckpt = checkpoint_run(self._runtime).at_step(target)
            self._runtime = restore_runtime(ckpt)

    def _rebuild_from_history(self, target: int) -> None:
        """The from-scratch baseline: replay every admitted extension
        from ``t=0`` and re-simulate up to *target*.

        A queue extension is an *event*, not part of a static
        instance: a job appended to a queue that drained before its
        arrival must not start before the arrival step.  Re-running
        the extension history reproduces the incremental run
        bit-identically while paying the full ``O(t)`` simulation cost
        per event -- the quadratic baseline ``benchmarks/
        bench_service.py`` gates the incremental path against.
        """
        self._instance = None
        self._runtime = None
        self._recorder = CompletionRecorder()
        for job, queue_index, at in self._history:
            self._sim_to(at)
            self._extend(job, queue_index, at)
        self._sim_to(target)

    def _advance(self, target: int) -> None:
        """Bring the kernel state to step *target* (>= current clock)."""
        if self.mode == "from-scratch":
            self._rebuild_from_history(target)
        else:
            self._sim_to(target)
        self._clock = target
        self._log_new_completions()

    def _log_new_completions(self) -> None:
        fresh = [
            (t, i, j)
            for (i, j), t in self._recorder.completion_steps.items()
            if (i, j) not in self._logged_completions
        ]
        for t, i, j in sorted(fresh):
            self._logged_completions.add((i, j))
            self._records.append(
                {"type": "completion", "t": t, "queue": i, "index": j}
            )

    # ------------------------------------------------------------------
    # Placement / admission
    # ------------------------------------------------------------------
    def _queue_backlogs(self) -> list[float]:
        """Full-speed steps of unfinished work per queue."""
        if self._instance is None:
            return []
        state = self._runtime.state
        backlogs: list[float] = []
        for i, queue in enumerate(self._instance.queues):
            done = int(state.done[i])
            steps = 0.0
            if done < len(queue):
                active = queue[done]
                bottleneck = float(active.requirement)
                if bottleneck > 0:
                    steps += float(state.remaining[i]) / bottleneck
                steps += sum(
                    job.steps_at_full_speed() for job in queue[done + 1 :]
                )
            backlogs.append(steps)
        return backlogs

    def _total_backlog(self) -> float:
        """Unfinished processing volume across all queues."""
        if self._instance is None:
            return 0.0
        state = self._runtime.state
        total = 0.0
        for i, queue in enumerate(self._instance.queues):
            done = int(state.done[i])
            if done < len(queue):
                total += float(state.remaining[i])
                total += sum(float(job.work) for job in queue[done + 1 :])
        return total

    def _placement(self) -> int:
        """The queue the next arrival would be appended to."""
        if self._instance is None:
            return 0
        if self._instance.num_processors < self.max_queues:
            return self._instance.num_processors
        backlogs = self._queue_backlogs()
        return min(range(len(backlogs)), key=lambda i: (backlogs[i], i))

    def _extend(self, job: Job, queue_index: int, at: int) -> None:
        """Grow the instance by *job* and carry the run state over."""
        if self._instance is None:
            self._instance = Instance([[job]], releases=[at])
            ckpt = checkpoint_run(self._new_runtime(self._instance))
            self._runtime = restore_runtime(ckpt.at_step(at))
            return
        queues = [list(queue) for queue in self._instance.queues]
        releases = list(self._instance.releases)
        if queue_index == len(queues):
            queues.append([job])
            releases.append(at)
        else:
            queues[queue_index].append(job)
        grown = Instance(queues, releases=releases)
        ckpt = checkpoint_run(self._runtime)
        self._runtime = restore_runtime(ckpt, instance=grown)
        self._instance = grown

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, event: ArrivalEvent) -> bool:
        """Process one arrival; returns the admission decision.

        Raises:
            ServiceError: after :meth:`drain` (the engine is closed),
                or when *event* is earlier than an already-processed
                event (the clock never rewinds).
        """
        if self._closed:
            raise ServiceError("service is closed (drain() already ran)")
        if event.time < self._clock:
            raise ServiceError(
                f"event at step {event.time} arrived after the clock "
                f"reached {self._clock}; arrivals must be in order"
            )
        started = time.perf_counter()
        self._advance(event.time)
        queue_index = self._placement()
        backlogs = self._queue_backlogs()
        ctx = AdmissionContext(
            time=event.time,
            job=event.job,
            queue_index=queue_index,
            queue_backlog=(
                backlogs[queue_index] if queue_index < len(backlogs) else 0.0
            ),
            total_backlog=self._total_backlog(),
            num_processors=(
                self._instance.num_processors if self._instance else 0
            ),
        )
        decision = bool(self.admission.admit(ctx))
        if decision:
            self._extend(event.job, queue_index, event.time)
            self._history.append((event.job, queue_index, event.time))
            self.admitted += 1
        else:
            self.rejected += 1
        self.submitted += 1
        self._records.append(
            {
                "type": "arrival",
                "seq": self._seq,
                "t": event.time,
                "job": job_to_dict(event.job),
                "admitted": decision,
                "queue": queue_index if decision else None,
            }
        )
        self._seq += 1
        elapsed = time.perf_counter() - started
        self._latencies.append(elapsed)
        session = get_session()
        if session is not None:
            session.metrics.counter("service.arrivals").inc()
            session.metrics.counter(
                "service.admitted" if decision else "service.rejected"
            ).inc()
            session.metrics.histogram("service.latency_seconds").observe(
                elapsed
            )
        return decision

    def drain(self) -> int:
        """Run the admitted workload to completion and close the engine.

        Returns:
            The final step (0 if nothing was ever admitted).  The
            service accepts no further events afterwards.
        """
        if self._closed:
            raise ServiceError("service is closed (drain() already ran)")
        makespan = 0
        if self.mode == "from-scratch":
            self._rebuild_from_history(self._clock)
        if self._instance is not None:
            limit = default_step_limit(self._instance) + self._clock + 16
            finished = run_kernel(
                self._runtime,
                self._policy,
                (self._recorder,),
                max_steps=limit,
            )
            makespan = finished if finished is not None else self._clock
            self._clock = max(self._clock, makespan)
            self._log_new_completions()
        self._records.append({"type": "drain", "t": self._clock})
        self._closed = True
        session = get_session()
        if session is not None:
            session.metrics.counter("service.completions").inc(self.completed)
        return makespan

    def run_stream(self, stream: Iterable[ArrivalEvent]) -> "ServiceReport":
        """Feed every event of *stream*, drain, and report.

        Under an installed telemetry session the whole run is wrapped
        in a ``service.stream`` span.
        """
        session = get_session()
        if session is None:
            for event in stream:
                self.submit(event)
            self.drain()
            return self.report()
        with session.tracer.span(
            "service.stream", policy=self.policy_name, backend=self.backend
        ) as span:
            for event in stream:
                self.submit(event)
            self.drain()
            report = self.report()
            span.note(
                submitted=report.submitted,
                admitted=report.admitted,
                final_step=report.final_step,
            )
        return report

    @property
    def completed(self) -> int:
        """Jobs finished so far."""
        return len(self._recorder.completion_steps)

    @property
    def clock(self) -> int:
        """The step the kernel state currently sits at."""
        return self._clock

    @property
    def closed(self) -> bool:
        """True once :meth:`drain` has run."""
        return self._closed

    def config(self) -> dict[str, Any]:
        """The replayable engine configuration (event-log header)."""
        return {
            "policy": self.policy_name,
            "backend": self.backend,
            "admission": {
                "name": self.admission.name,
                "options": self.admission.options(),
            },
            "max_queues": self.max_queues,
            "mode": self.mode,
        }

    @property
    def event_log(self) -> list[dict[str, Any]]:
        """The event records so far (copy; pair with :meth:`config`)."""
        return list(self._records)

    def report(self) -> ServiceReport:
        """Summarize the run (valid mid-stream or after drain)."""
        total_work = 0.0
        if self._instance is not None:
            total_work = sum(
                float(job.work)
                for queue in self._instance.queues
                for job in queue
            )
        queues = self._instance.num_processors if self._instance else 0
        elapsed = max(self._clock, 1)
        utilization = (
            total_work / (queues * elapsed) if queues else 0.0
        )
        ordered = sorted(self._latencies)
        percentiles = {
            "p50": _percentile(ordered, 0.50),
            "p90": _percentile(ordered, 0.90),
            "p99": _percentile(ordered, 0.99),
            "mean": (
                sum(ordered) / len(ordered) if ordered else 0.0
            ),
            "max": ordered[-1] if ordered else 0.0,
        }
        return ServiceReport(
            policy=self.policy_name,
            backend=self.backend,
            admission=self.admission.describe(),
            mode=self.mode,
            num_queues=queues,
            final_step=self._clock,
            submitted=self.submitted,
            admitted=self.admitted,
            rejected=self.rejected,
            completed=self.completed,
            dropped_events=0,
            total_work=total_work,
            utilization=min(1.0, utilization),
            latency_percentiles=percentiles,
        )

    @property
    def completion_steps(self) -> dict[tuple[int, int], int]:
        """Completion step per finished ``(queue, index)`` job."""
        return dict(self._recorder.completion_steps)


def replay_log(
    config: dict[str, Any], records: Iterable[dict[str, Any]]
) -> tuple[ServiceReport, SchedulingService]:
    """Deterministically re-run a recorded event log.

    Rebuilds the service from the log's config, re-submits every
    arrival, re-derives every admission decision, and checks each one
    against the recorded decision -- a mismatch means the log and the
    engine disagree and the replay is rejected.

    Returns:
        ``(report, service)`` for the re-run.

    Raises:
        ServiceError: malformed config/records, or an admission
            decision that diverges from the record.
    """
    try:
        admission_doc = config.get("admission", {"name": "accept-all"})
        service = SchedulingService(
            policy=config["policy"],
            backend=config.get("backend", "vector"),
            admission=get_admission(
                admission_doc["name"], **admission_doc.get("options", {})
            ),
            max_queues=config.get("max_queues", 8),
            mode=config.get("mode", "incremental"),
        )
    except (KeyError, TypeError) as exc:
        raise ServiceError(f"malformed event-log config: {exc}") from exc
    for record in records:
        if record.get("type") != "arrival":
            continue
        try:
            event = ArrivalEvent(
                time=int(record["t"]), job=job_from_dict(record["job"])
            )
            recorded = bool(record["admitted"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(
                f"malformed arrival record {record!r}: {exc}"
            ) from exc
        decision = service.submit(event)
        if decision != recorded:
            raise ServiceError(
                f"replay diverged at seq {record.get('seq')}: recorded "
                f"admitted={recorded} but the engine decided {decision}"
            )
    service.drain()
    return service.report(), service
