"""Content-addressed result store and sharded cached campaigns.

The store memoizes campaign rows on disk, keyed by the *content* of
the run -- ``(instance digest, policy, objectives, sequencer,
backend)`` hashed to one SHA-256 address -- so repeating a campaign
(or sharing a store between campaigns) only pays for rows never
computed before.  Hits and misses feed the telemetry counters
``store.hits`` / ``store.misses``.

:func:`run_cached_campaign` is the sharded entry point: cache lookups
happen in the parent, only the misses fan out across the
:class:`~repro.backends.batch.BatchRunner` worker processes, and
fresh rows are written back before the merged, input-ordered row list
returns.  Cached and uncached campaigns produce identical rows (the
round-trip is pinned by ``tests/service/test_store.py``).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from ..backends.batch import BatchRunner
from ..core.instance import Instance
from ..exceptions import ServiceError
from ..io.serialization import instance_to_dict
from ..telemetry import get_session

__all__ = ["ResultStore", "instance_digest", "run_cached_campaign"]

_STORE_FORMAT = "crsharing-result"
_STORE_VERSION = 1


def instance_digest(instance: Instance) -> str:
    """SHA-256 over the canonical serialized form of *instance*.

    Two instances digest equally iff their lossless JSON documents
    match -- same queues, sizes, releases, weights, deadlines.
    """
    doc = json.dumps(
        instance_to_dict(instance), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


class ResultStore:
    """A content-addressed JSON result cache on disk.

    Keys are ``(instance digest, policy, objectives, sequencer,
    backend)`` tuples; addresses shard into 256 two-hex-character
    subdirectories to keep directories small.  Values are arbitrary
    JSON-serializable dicts (campaign rows).

    Args:
        root: cache directory (created on first write).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def address(
        digest: str,
        policy: str,
        objectives: Sequence[str] = (),
        sequencer: str | None = None,
        backend: str = "vector",
    ) -> str:
        """The SHA-256 cache address for one run key."""
        key = json.dumps(
            {
                "instance": digest,
                "policy": policy,
                "objectives": sorted(objectives),
                "sequencer": sequencer,
                "backend": backend,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(key.encode("utf-8")).hexdigest()

    def _path(self, address: str) -> Path:
        return self.root / address[:2] / f"{address}.json"

    def get(self, address: str) -> dict[str, Any] | None:
        """The cached row at *address*, or None; counts hit/miss.

        Raises:
            ServiceError: if the stored document is corrupted.
        """
        path = self._path(address)
        if not path.exists():
            self.misses += 1
            self._count("store.misses")
            return None
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise ServiceError(
                f"corrupted result-store entry {path}: {exc}"
            ) from exc
        if (
            not isinstance(doc, dict)
            or doc.get("format") != _STORE_FORMAT
            or doc.get("version") != _STORE_VERSION
        ):
            raise ServiceError(f"unrecognized result-store entry {path}")
        self.hits += 1
        self._count("store.hits")
        return doc["row"]

    def put(self, address: str, row: dict[str, Any]) -> None:
        """Persist *row* at *address* (atomic via rename)."""
        path = self._path(address)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"format": _STORE_FORMAT, "version": _STORE_VERSION, "row": row}
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(doc), encoding="utf-8")
        tmp.replace(path)

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    @staticmethod
    def _count(name: str) -> None:
        session = get_session()
        if session is not None:
            session.metrics.counter(name).inc()


def run_cached_campaign(
    instances: Iterable[Instance],
    runner: BatchRunner,
    store: ResultStore,
) -> list[dict[str, Any]]:
    """A sharded campaign with content-addressed memoization.

    Looks every instance up in *store* first; only the misses are
    dispatched to *runner* (which shards them across its worker
    processes), and their fresh rows are written back.  Rows return in
    input order and are identical to an uncached
    ``runner.run(instances)`` -- modulo the measured ``seconds`` /
    ``worker`` fields, which describe whichever process actually
    computed the row.

    Args:
        instances: campaign instances.
        runner: a configured :class:`~repro.backends.batch.BatchRunner`
            (its policy/backend/objectives/sequencer become part of
            the cache key).
        store: the result cache.

    Returns:
        One row dict per instance, in input order.
    """
    instances = list(instances)
    addresses = [
        store.address(
            instance_digest(inst),
            runner.policy,
            runner.objectives,
            runner.sequencer,
            runner.backend,
        )
        for inst in instances
    ]
    rows: list[dict[str, Any] | None] = [
        store.get(address) for address in addresses
    ]
    missing = [i for i, row in enumerate(rows) if row is None]
    if missing:
        fresh = runner.run([instances[i] for i in missing]).rows
        for i, row in zip(missing, fresh):
            store.put(addresses[i], row)
            rows[i] = row
    return rows  # type: ignore[return-value]  # all slots filled above
