"""Event model and JSONL wire formats for the scheduling service.

Two line-oriented JSON formats live here:

**Trace format** (input): one arrival per line, replayable workload
descriptions.  Each line is ``{"t": <step>, "job": {...}}`` with the
job document from :func:`repro.io.job_to_dict`::

    {"t": 0, "job": {"r": "1/2", "p": 1}}
    {"t": 3, "job": {"r": "3/4", "p": 2, "d": 9}}

**Event-log format** (output): the service's authoritative record of
what happened -- a header line carrying the engine configuration,
then one line per event (arrivals with their admission decision and
queue placement, completions, the final drain).  Re-running a log
through :func:`repro.service.engine.replay_log` reproduces the run
deterministically; ``crsharing replay`` builds on that.

All malformed documents raise the typed
:class:`~repro.exceptions.ServiceError` -- never a bare ``KeyError``
from half-parsed JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

from ..core.job import Job
from ..exceptions import ServiceError
from ..io.serialization import job_from_dict, job_to_dict

__all__ = [
    "ArrivalEvent",
    "EVENT_LOG_FORMAT",
    "TRACE_FORMAT",
    "read_event_log",
    "read_trace",
    "write_event_log",
    "write_trace",
]

#: Format tag carried by event-log header lines.
EVENT_LOG_FORMAT = "crsharing-events"
#: Nominal name of the arrival trace format (trace lines carry no tag;
#: they are kept minimal so workloads are easy to write by hand).
TRACE_FORMAT = "crsharing-trace"
_EVENT_LOG_VERSION = 1


@dataclass(frozen=True, slots=True)
class ArrivalEvent:
    """A job arriving at the service at a given step.

    Attributes:
        time: the arrival step (0-based, non-decreasing within a
            trace).
        job: the arriving :class:`~repro.core.job.Job`.
    """

    time: int
    job: Job

    def to_dict(self) -> dict[str, Any]:
        """The trace-line form of this arrival."""
        return {"t": self.time, "job": job_to_dict(self.job)}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "ArrivalEvent":
        """Parse a trace line.

        Raises:
            ServiceError: on a malformed document (missing keys, bad
                time, invalid job payload).
        """
        if not isinstance(doc, dict):
            raise ServiceError(
                f"trace record must be an object, got {type(doc).__name__}"
            )
        try:
            time = int(doc["t"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"trace record has no valid 't': {doc!r}") from exc
        if time < 0:
            raise ServiceError(f"arrival time must be >= 0, got {time}")
        try:
            job = job_from_dict(doc["job"])
        except KeyError as exc:
            raise ServiceError(f"trace record has no 'job': {doc!r}") from exc
        except ValueError as exc:
            raise ServiceError(f"trace record carries a bad job: {exc}") from exc
        return cls(time=time, job=job)


def _iter_jsonl(source: str | Path | Iterable[str]) -> Iterator[tuple[int, Any]]:
    """Yield ``(lineno, parsed)`` for every non-blank JSONL line."""
    if isinstance(source, (str, Path)):
        text = Path(source).read_text(encoding="utf-8")
        lines: Iterable[str] = text.splitlines()
    else:
        lines = source
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            yield lineno, json.loads(line)
        except ValueError as exc:
            raise ServiceError(f"line {lineno}: unparseable JSON: {exc}") from exc


def read_trace(source: str | Path | Iterable[str]) -> list[ArrivalEvent]:
    """Parse a JSONL arrival trace (path, or an iterable of lines).

    Arrival times must be non-decreasing -- the service processes
    events in submission order and cannot rewind its clock.

    Raises:
        ServiceError: on malformed lines or out-of-order arrivals.
    """
    events: list[ArrivalEvent] = []
    for lineno, doc in _iter_jsonl(source):
        event = ArrivalEvent.from_dict(doc)
        if events and event.time < events[-1].time:
            raise ServiceError(
                f"line {lineno}: arrival times must be non-decreasing "
                f"({events[-1].time} then {event.time})"
            )
        events.append(event)
    return events


def write_trace(events: Iterable[ArrivalEvent], path: str | Path) -> int:
    """Write arrivals as a JSONL trace; returns the line count."""
    out = Path(path)
    lines = [json.dumps(e.to_dict()) for e in events]
    out.write_text("".join(line + "\n" for line in lines), encoding="utf-8")
    return len(lines)


def event_log_header(config: dict[str, Any]) -> dict[str, Any]:
    """The header line for an event log carrying *config*."""
    return {
        "format": EVENT_LOG_FORMAT,
        "version": _EVENT_LOG_VERSION,
        "config": dict(config),
    }


def read_event_log(
    source: str | Path | Iterable[str],
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Parse an event log into ``(config, event records)``.

    Raises:
        ServiceError: on a missing/invalid header or malformed lines.
    """
    config: dict[str, Any] | None = None
    records: list[dict[str, Any]] = []
    for lineno, doc in _iter_jsonl(source):
        if config is None:
            if (
                not isinstance(doc, dict)
                or doc.get("format") != EVENT_LOG_FORMAT
            ):
                raise ServiceError(
                    "event log must start with a "
                    f"{EVENT_LOG_FORMAT!r} header line"
                )
            if doc.get("version") != _EVENT_LOG_VERSION:
                raise ServiceError(
                    f"unsupported event-log version {doc.get('version')!r}"
                )
            if not isinstance(doc.get("config"), dict):
                raise ServiceError("event-log header carries no config")
            config = doc["config"]
            continue
        if not isinstance(doc, dict) or "type" not in doc:
            raise ServiceError(f"line {lineno}: event record has no 'type'")
        records.append(doc)
    if config is None:
        raise ServiceError("empty event log (no header line)")
    return config, records


def write_event_log(
    config: dict[str, Any],
    records: Iterable[dict[str, Any]],
    path: str | Path,
) -> int:
    """Write a header + event records as JSONL; returns the line count."""
    lines = [json.dumps(event_log_header(config))]
    lines.extend(json.dumps(r) for r in records)
    Path(path).write_text(
        "".join(line + "\n" for line in lines), encoding="utf-8"
    )
    return len(lines)
