"""Arrival streams: trace replay and seeded Poisson generation.

A *stream* is simply an iterable of
:class:`~repro.service.events.ArrivalEvent` in non-decreasing time
order.  Two sources ship:

* :class:`TraceStream` -- replays a JSONL trace file (or in-memory
  lines), the deterministic workload path;
* :class:`PoissonStream` -- samples a seeded Poisson arrival process
  with uniform-requirement jobs, the stochastic workload path used by
  the soak tests and ``crsharing serve --rate/--count``.

Both are re-iterable: each ``iter()`` yields the same events, so one
stream object can drive an incremental run and its from-scratch
baseline in the same benchmark.
"""

from __future__ import annotations

import random
from fractions import Fraction
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..core.job import Job
from ..exceptions import ServiceError
from .events import ArrivalEvent, read_trace

__all__ = ["PoissonStream", "TraceStream"]


class TraceStream:
    """Replays a fixed arrival sequence (from a file or from memory).

    Args:
        events: parsed arrivals, already in non-decreasing time order.

    Use :meth:`from_path` / :meth:`from_lines` to parse the JSONL
    trace format (validation included).
    """

    def __init__(self, events: Sequence[ArrivalEvent]) -> None:
        events = tuple(events)
        for earlier, later in zip(events, events[1:]):
            if later.time < earlier.time:
                raise ServiceError(
                    "trace events must be in non-decreasing time order "
                    f"({earlier.time} then {later.time})"
                )
        self.events = events

    @classmethod
    def from_path(cls, path: str | Path) -> "TraceStream":
        """Parse a JSONL trace file (see :func:`repro.service.events.read_trace`)."""
        return cls(read_trace(path))

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "TraceStream":
        """Parse in-memory JSONL trace lines."""
        return cls(read_trace(lines))

    def __iter__(self) -> Iterator[ArrivalEvent]:
        """Yield the trace's arrivals in order (re-iterable)."""
        return iter(self.events)

    def __len__(self) -> int:
        """Number of arrivals in the trace."""
        return len(self.events)


class PoissonStream:
    """A seeded Poisson arrival process with uniform-requirement jobs.

    Inter-arrival gaps are exponential with intensity *rate* (expected
    ``rate`` arrivals per step), accumulated and floored to integer
    steps, so several jobs may share one step -- exactly the shape of
    :func:`repro.generators.poisson_arrivals`, but producing an
    unbounded *stream* of jobs instead of release times for a fixed
    instance.  Requirements are uniform on ``{low/grid .. high/grid}``,
    sizes are unit.  Identical seeds yield identical streams, so
    stochastic soak runs are still replayable.

    Args:
        rate: arrival intensity per step (> 0).
        count: number of arrivals to generate (>= 0).
        seed: RNG seed (streams with the same seed are identical).
        grid: requirement denominator (default percent grid).
        low: minimum requirement numerator (>= 0).
        high: maximum requirement numerator (defaults to *grid*).
    """

    def __init__(
        self,
        *,
        rate: float,
        count: int,
        seed: int | None = None,
        grid: int = 100,
        low: int = 1,
        high: int | None = None,
    ) -> None:
        if rate <= 0:
            raise ServiceError(f"rate must be > 0, got {rate}")
        if count < 0:
            raise ServiceError(f"count must be >= 0, got {count}")
        if high is None:
            high = grid
        if not 0 <= low <= high <= grid:
            raise ServiceError(
                f"need 0 <= low <= high <= grid, got {low}, {high}, {grid}"
            )
        self.rate = float(rate)
        self.count = int(count)
        self.seed = seed
        self.grid = int(grid)
        self.low = int(low)
        self.high = int(high)

    def __iter__(self) -> Iterator[ArrivalEvent]:
        """Sample the stream afresh (same seed, same events)."""
        rng = random.Random(self.seed)
        clock = 0.0
        for _ in range(self.count):
            clock += rng.expovariate(self.rate)
            requirement = Fraction(rng.randint(self.low, self.high), self.grid)
            yield ArrivalEvent(time=int(clock), job=Job(requirement))

    def __len__(self) -> int:
        """Number of arrivals the stream will generate."""
        return self.count
