"""The always-on scheduling service (event-driven incremental runs).

This subpackage turns the batch-oriented kernel into a long-running
service: :class:`SchedulingService` accepts streaming job arrivals
(JSONL traces via :class:`TraceStream`, or seeded stochastic
:class:`PoissonStream` workloads), re-schedules *incrementally* on
every event through the checkpoint layer
(:mod:`repro.core.checkpoint`) instead of re-simulating from ``t=0``,
sheds load through pluggable admission control
(:mod:`repro.service.admission`), and reports steady-state
utilization plus scheduling-latency percentiles.  Runs are recorded
as replayable event logs (:func:`replay_log`, ``crsharing replay``),
and :class:`ResultStore` / :func:`run_cached_campaign` add a
content-addressed cache in front of sharded campaigns.
"""

from .admission import (
    AcceptAll,
    AdmissionContext,
    AdmissionPolicy,
    DeadlineFeasibility,
    UtilizationCap,
    available_admission,
    get_admission,
)
from .engine import SchedulingService, ServiceReport, replay_log
from .events import (
    ArrivalEvent,
    read_event_log,
    read_trace,
    write_event_log,
    write_trace,
)
from .store import ResultStore, instance_digest, run_cached_campaign
from .streams import PoissonStream, TraceStream

__all__ = [
    "AcceptAll",
    "AdmissionContext",
    "AdmissionPolicy",
    "ArrivalEvent",
    "DeadlineFeasibility",
    "PoissonStream",
    "ResultStore",
    "SchedulingService",
    "ServiceReport",
    "TraceStream",
    "UtilizationCap",
    "available_admission",
    "get_admission",
    "instance_digest",
    "read_event_log",
    "read_trace",
    "replay_log",
    "run_cached_campaign",
    "write_event_log",
    "write_trace",
]
