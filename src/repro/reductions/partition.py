"""The Partition problem (substrate for the Theorem 4 reduction).

Partition: given positive integers ``a_1..a_n`` with even total ``2A``,
decide whether some subset sums to exactly ``A``.  NP-complete; the
paper reduces it to CRSharing with unit-size jobs to prove Theorem 4.

This module provides the problem type, two solvers (exhaustive and the
classic pseudo-polynomial bitset DP -- cross-checked against each other
in the tests), and generators for planted YES and guaranteed NO
instances used by the FIG4 benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations

__all__ = [
    "PartitionInstance",
    "solve_partition_bruteforce",
    "solve_partition_dp",
    "random_yes_instance",
    "random_no_instance",
]


@dataclass(frozen=True, slots=True)
class PartitionInstance:
    """A Partition instance: positive integer values.

    Attributes:
        values: the multiset ``a_1..a_n``.
    """

    values: tuple[int, ...]

    def __init__(self, values) -> None:
        vals = tuple(int(v) for v in values)
        if not vals:
            raise ValueError("Partition instance needs at least one value")
        if any(v <= 0 for v in vals):
            raise ValueError(f"Partition values must be positive, got {vals}")
        object.__setattr__(self, "values", vals)

    @property
    def total(self) -> int:
        return sum(self.values)

    @property
    def half(self) -> int:
        """The target ``A`` (only meaningful when the total is even)."""
        return self.total // 2

    @property
    def is_balanced_total(self) -> bool:
        """True iff the total is even (otherwise trivially a NO-instance)."""
        return self.total % 2 == 0


def solve_partition_bruteforce(instance: PartitionInstance) -> tuple[int, ...] | None:
    """Exhaustive subset search.

    Returns the indices of a subset summing to ``A``, or ``None`` for a
    NO-instance.  Exponential; fine for the reduction experiments
    (``n <= ~20``).
    """
    if not instance.is_balanced_total:
        return None
    target = instance.half
    n = len(instance.values)
    for size in range(0, n + 1):
        for subset in combinations(range(n), size):
            if sum(instance.values[i] for i in subset) == target:
                return subset
    return None


def solve_partition_dp(instance: PartitionInstance) -> tuple[int, ...] | None:
    """Pseudo-polynomial subset-sum DP with witness reconstruction.

    Bitset over achievable sums; ``O(n * A)`` time via Python big-int
    shifts.  Returns a witness subset (indices) or ``None``.
    """
    if not instance.is_balanced_total:
        return None
    target = instance.half
    values = instance.values
    # reachable[k] = bitmask of sums achievable with the first k values.
    reachable = [1]
    for v in values:
        reachable.append(reachable[-1] | (reachable[-1] << v))
    if not (reachable[-1] >> target) & 1:
        return None
    # Walk backwards: value k-1 is used iff the sum is unreachable
    # without it.
    chosen: list[int] = []
    remaining = target
    for k in range(len(values), 0, -1):
        if (reachable[k - 1] >> remaining) & 1:
            continue
        chosen.append(k - 1)
        remaining -= values[k - 1]
    assert remaining == 0, "DP witness reconstruction failed"
    return tuple(sorted(chosen))


def random_yes_instance(
    n: int, *, max_value: int = 50, seed: int | None = None
) -> tuple[PartitionInstance, tuple[int, ...]]:
    """A planted YES-instance with *exactly* ``n`` values and a witness.

    The first ``k = n // 2`` values form the planted subset with sum
    ``A``; the remaining ``n - k`` values are drawn to sum to ``A`` as
    well (the last one balances the books), retrying until every value
    is positive.
    """
    if n < 2:
        raise ValueError("need at least two values")
    rng = random.Random(seed)
    k = max(1, n // 2)
    for _ in range(10_000):
        left = [rng.randint(1, max_value) for _ in range(k)]
        target = sum(left)
        rest = n - k
        if target < rest:  # cannot fill with positive integers
            continue
        right: list[int] = []
        budget = target
        feasible = True
        for slot in range(rest - 1):
            slots_after = rest - slot - 1
            hi = min(max_value, budget - slots_after)
            if hi < 1:
                feasible = False
                break
            v = rng.randint(1, hi)
            right.append(v)
            budget -= v
        if not feasible or not (1 <= budget <= max_value):
            continue
        right.append(budget)
        values = left + right
        inst = PartitionInstance(values)
        witness = tuple(range(k))
        assert sum(values[i] for i in witness) == inst.half
        return inst, witness
    raise RuntimeError("failed to plant a YES-instance")  # pragma: no cover


def random_no_instance(
    n: int, *, max_value: int = 50, seed: int | None = None
) -> PartitionInstance:
    """A guaranteed *non-trivial* NO-instance.

    Rejection-samples instances with an even total and every value at
    most half the total (so the Theorem 4 gadget's requirements stay in
    ``[0, 1]`` -- the reduction needs ``a_i <= A``), verifying NO with
    the DP solver.  Such instances are plentiful for small ``n``.

    Raises:
        RuntimeError: if sampling fails repeatedly (practically
            impossible for small ``n``).
    """
    if n < 2:
        raise ValueError("need at least two values")
    rng = random.Random(seed)
    for _ in range(100_000):
        values = [rng.randint(1, max_value) for _ in range(n)]
        total = sum(values)
        if total % 2 == 1:
            # Nudge one value to make the total even, staying in range.
            idx = rng.randrange(n)
            values[idx] += 1 if values[idx] < max_value else -1
            total = sum(values)
        if max(values) > total // 2:
            continue
        candidate = PartitionInstance(values)
        if solve_partition_dp(candidate) is None:
            return candidate
    raise RuntimeError("failed to sample a NO-instance")  # pragma: no cover
