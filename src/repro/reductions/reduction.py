"""The Theorem 4 reduction: Partition -> CRSharing with unit-size jobs.

Given a Partition instance ``a_1..a_n`` with total ``2A``, pick
``eps in (0, 1/n)`` and ``delta = n * eps < 1``, and build a CRSharing
instance on ``n`` processors with three unit jobs each:

* first and third jobs: ``a~_i = a_i / (A + delta)``,
* middle job: ``eps~ = eps / (A + delta)``.

The first column cannot finish in one step (its total is
``2A/(A+delta) > 1``), so with three jobs per processor any schedule
needs at least 4 steps.  The paper shows makespan 4 is achievable iff
the Partition instance is a YES-instance, and that NO-instances force
makespan >= 5 -- hence NP-hardness and (Corollary 1) a 5/4
inapproximability bound.

This module builds the gadget, the explicit 4-step witness schedule of
Figure 4a for YES-instances, and helpers that verify the biconditional
with an exact solver.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.instance import Instance
from ..core.numerics import ZERO
from ..core.schedule import Schedule
from .partition import PartitionInstance, solve_partition_dp

__all__ = [
    "reduction_instance",
    "default_epsilon",
    "yes_witness_schedule",
    "verify_reduction",
    "INAPPROXIMABILITY_GAP",
]

#: Corollary 1: distinguishing makespan 4 from 5 is NP-hard.
INAPPROXIMABILITY_GAP = Fraction(5, 4)


def default_epsilon(partition: PartitionInstance) -> Fraction:
    """A valid ``eps``: the paper requires ``eps in (0, 1/n)``; we take
    ``1/(2n)``, making ``delta = 1/2``."""
    return Fraction(1, 2 * len(partition.values))


def reduction_instance(
    partition: PartitionInstance, epsilon: Fraction | None = None
) -> Instance:
    """The CRSharing gadget for a Partition instance.

    Raises:
        ValueError: if the Partition total is odd (the reduction is
            defined for even totals; odd totals are trivial NOs) or if
            *epsilon* is outside ``(0, 1/n)``.
    """
    if not partition.is_balanced_total:
        raise ValueError(
            "the Theorem 4 reduction expects an even total (odd totals "
            "are trivially NO-instances)"
        )
    if max(partition.values) > partition.half:
        raise ValueError(
            "the reduction needs every value <= A = total/2, otherwise "
            "a_i/(A+delta) exceeds 1 (such instances are trivially NO "
            "anyway: the outlier cannot be balanced)"
        )
    n = len(partition.values)
    eps = default_epsilon(partition) if epsilon is None else epsilon
    if not (ZERO < eps < Fraction(1, n)):
        raise ValueError(f"epsilon must lie in (0, 1/{n}), got {eps}")
    a_total = partition.half
    delta = n * eps
    denom = a_total + delta
    rows = []
    for a in partition.values:
        a_tilde = Fraction(a) / denom
        eps_tilde = eps / denom
        rows.append([a_tilde, eps_tilde, a_tilde])
    return Instance.from_requirements(rows)


def yes_witness_schedule(
    partition: PartitionInstance,
    subset: tuple[int, ...],
    epsilon: Fraction | None = None,
) -> Schedule:
    """The explicit 4-step schedule of Figure 4a for a YES-instance.

    Steps (S = the witness subset, S' = its complement):

    1. first jobs of S            (total ``A/(A+delta) < 1``);
    2. first jobs of S' + middle jobs of S;
    3. third jobs of S + middle jobs of S';
    4. third jobs of S'.

    Raises:
        ValueError: if *subset* does not sum to ``A``.
    """
    if sum(partition.values[i] for i in subset) != partition.half:
        raise ValueError("subset is not a valid Partition witness")
    inst = reduction_instance(partition, epsilon)
    n = len(partition.values)
    in_s = [False] * n
    for i in subset:
        in_s[i] = True

    def row(assign: dict[int, Fraction]) -> list[Fraction]:
        out = [ZERO] * n
        for i, v in assign.items():
            out[i] = v
        return out

    first = {i: inst.requirement(i, 0) for i in range(n)}
    mid = {i: inst.requirement(i, 1) for i in range(n)}
    third = {i: inst.requirement(i, 2) for i in range(n)}

    rows = [
        row({i: first[i] for i in range(n) if in_s[i]}),
        row(
            {i: first[i] for i in range(n) if not in_s[i]}
            | {i: mid[i] for i in range(n) if in_s[i]}
        ),
        row(
            {i: third[i] for i in range(n) if in_s[i]}
            | {i: mid[i] for i in range(n) if not in_s[i]}
        ),
        row({i: third[i] for i in range(n) if not in_s[i]}),
    ]
    return Schedule(inst, rows, validate=True, trim=True)


def verify_reduction(
    partition: PartitionInstance,
    epsilon: Fraction | None = None,
    *,
    optimal_makespan,
) -> dict:
    """Check the Theorem 4 biconditional on one Partition instance.

    Args:
        partition: the Partition instance.
        epsilon: gadget parameter (default :func:`default_epsilon`).
        optimal_makespan: a callable ``Instance -> int`` computing the
            exact optimum (brute force / MILP / fixed-m search); kept
            injectable so the benchmark can choose the cheapest oracle.

    Returns:
        dict with keys ``is_yes`` (Partition answer via the DP solver),
        ``opt`` (exact CRSharing optimum of the gadget), and
        ``consistent`` (True iff ``opt == 4`` exactly for YES and
        ``opt >= 5`` for NO).
    """
    witness = solve_partition_dp(partition)
    inst = reduction_instance(partition, epsilon)
    opt = optimal_makespan(inst)
    if witness is not None:
        consistent = opt == 4
    else:
        consistent = opt >= 5
    return {"is_yes": witness is not None, "opt": opt, "consistent": consistent}
