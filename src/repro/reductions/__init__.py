"""NP-hardness machinery: Partition and the Theorem 4 reduction."""

from .partition import (
    PartitionInstance,
    random_no_instance,
    random_yes_instance,
    solve_partition_bruteforce,
    solve_partition_dp,
)
from .reduction import (
    INAPPROXIMABILITY_GAP,
    default_epsilon,
    reduction_instance,
    verify_reduction,
    yes_witness_schedule,
)

__all__ = [
    "INAPPROXIMABILITY_GAP",
    "PartitionInstance",
    "default_epsilon",
    "random_no_instance",
    "random_yes_instance",
    "reduction_instance",
    "solve_partition_bruteforce",
    "solve_partition_dp",
    "verify_reduction",
    "yes_witness_schedule",
]
