"""Minimal editable-install shim -- metadata lives in ``pyproject.toml``.

Offline environments that ship setuptools without ``wheel`` have no
PEP 660 editable path (``build_editable`` needs to build a wheel);
this shim keeps ``pip install -e .`` working there via the legacy
``setup.py develop`` fallback.  It declares nothing: every field,
including ``requires-python`` and the classifiers, is defined once in
``pyproject.toml``.
"""

from setuptools import setup

setup()
