"""Setup shim.

The offline environment ships setuptools but not ``wheel``, so PEP 660
editable installs (which build a wheel) are unavailable; this shim lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
