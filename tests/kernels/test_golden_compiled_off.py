"""Golden pinning: ``compiled="off"`` is the untouched per-step engine.

The compiled tier must be strictly additive: with ``compiled="off"``
the vector backend reproduces the pre-tier golden makespans
(``tests/data/golden_schedules.json``), and a ``compiled="auto"`` run
that needs per-step share rows (``record_shares=True`` forces the
fallback) emits share rows bit-identical to an explicit ``"off"`` run.
"""

import json

import numpy as np
import pytest

from repro.algorithms import get_policy
from repro.backends import VectorBackend

from ..data.make_golden import CASES, GOLDEN_PATH

GOLDEN = json.loads(GOLDEN_PATH.read_text())
_BUILDERS = dict(CASES)


@pytest.mark.parametrize(
    "entry",
    GOLDEN["entries"],
    ids=lambda e: f"{e['case']}-{e['policy']}",
)
def test_compiled_off_reproduces_golden_makespans(entry):
    instance = _BUILDERS[entry["case"]]()
    result = VectorBackend().run(
        instance,
        get_policy(entry["policy"]),
        record_shares=False,
        compiled="off",
    )
    assert result.makespan == entry["vector_makespan"]


@pytest.mark.parametrize(
    "entry",
    GOLDEN["entries"],
    ids=lambda e: f"{e['case']}-{e['policy']}",
)
def test_auto_with_share_recording_is_bit_identical_to_off(entry):
    instance = _BUILDERS[entry["case"]]()
    policy = get_policy(entry["policy"])
    backend = VectorBackend()
    auto = backend.run(
        instance, policy, record_shares=True, compiled="auto"
    )
    off = backend.run(instance, policy, record_shares=True, compiled="off")
    assert auto.makespan == off.makespan
    assert np.array_equal(np.asarray(auto.shares), np.asarray(off.shares))
