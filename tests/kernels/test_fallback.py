"""Numba-optionality tests: the tier degrades (and upgrades) cleanly.

The import guard lives in exactly one module
(:mod:`repro.kernels._numba`); these tests mask numba out with a
``sys.modules`` stub (and inject a fake one) and reload that module to
verify both sides of the guard without requiring a numba install
either way.  Dispatch-level fallback behavior (reasons, telemetry,
``compiled="on"`` errors) is covered against the live configuration.
"""

import importlib
import sys
import types

import pytest

import repro.kernels._numba as numba_guard
from repro.exceptions import CompiledUnsupportedError
from repro.generators import uniform_instance


@pytest.fixture
def reload_guard():
    """Reload the guard module around a sys.modules manipulation."""
    sentinel = object()
    original = sys.modules.get("numba", sentinel)

    def _reload():
        return importlib.reload(numba_guard)

    yield _reload
    if original is sentinel:
        sys.modules.pop("numba", None)
    else:
        sys.modules["numba"] = original
    importlib.reload(numba_guard)


def test_masked_numba_degrades_to_noop(reload_guard):
    """With numba masked, njit is the identity and the flag is False."""
    sys.modules["numba"] = None  # import numba -> ImportError
    module = reload_guard()
    assert module.NUMBA_AVAILABLE is False
    assert module.numba_version() is None

    def f(x):
        return x + 1

    assert module.njit(f) is f  # bare form
    assert module.njit(cache=False)(f) is f  # parameterized form
    assert module.njit(f)(2) == 3


def test_stub_numba_enables_the_tier(reload_guard):
    """A numba module in sys.modules flips the guard on."""
    calls = []
    stub = types.ModuleType("numba")
    stub.__version__ = "9.99-stub"

    def njit(*args, **kwargs):
        calls.append(kwargs)
        return lambda func: func

    stub.njit = njit
    sys.modules["numba"] = stub
    module = reload_guard()
    assert module.NUMBA_AVAILABLE is True
    assert module.numba_version() == "9.99-stub"

    def f(x):
        return x * 2

    assert module.njit(f)(3) == 6
    assert calls and calls[-1].get("cache") is True  # cached by default
    module.njit(cache=False)(f)
    assert calls[-1].get("cache") is False  # overridable


def test_kernels_import_without_numba(reload_guard):
    """The whole package imports and runs with numba masked out."""
    sys.modules["numba"] = None
    reload_guard()
    import numpy as np

    from repro.kernels import fill_single

    shares = fill_single(
        np.array([0.5, 0.5]),
        np.array([0.6, 0.6]),
        np.array([True, True]),
        np.array([0, 1], dtype=np.int64),
    )
    assert shares.sum() <= 1.0 + 1e-12


class TestDispatchFallback:
    """decide()/note_fallback behavior around missing eligibility."""

    def test_auto_without_numba_falls_back(self, monkeypatch):
        from repro.algorithms import get_policy
        from repro.kernels import dispatch

        monkeypatch.setattr(dispatch, "NUMBA_AVAILABLE", False)
        decision = dispatch.decide(get_policy("greedy-balance"), "auto")
        assert decision.code is None
        assert decision.reason == "numba-missing"

    def test_auto_with_numba_compiles(self, monkeypatch):
        from repro.algorithms import get_policy
        from repro.kernels import dispatch

        monkeypatch.setattr(dispatch, "NUMBA_AVAILABLE", True)
        decision = dispatch.decide(get_policy("greedy-balance"), "auto")
        assert decision.code is not None

    def test_on_forces_interpreted_driver(self, monkeypatch):
        """compiled='on' uses the fused driver even without numba."""
        from repro.algorithms import get_policy
        from repro.kernels import dispatch

        monkeypatch.setattr(dispatch, "NUMBA_AVAILABLE", False)
        decision = dispatch.decide(get_policy("greedy-balance"), "on")
        assert decision.code is not None

    def test_unknown_policy_reason(self):
        from repro.kernels import decide

        class NotRegistered:
            name = "custom"

        decision = decide(NotRegistered(), "auto")
        assert decision.code is None and decision.reason == "policy"

    def test_subclass_never_inherits_the_code(self):
        from repro.algorithms.greedy_balance import GreedyBalance
        from repro.kernels import compiled_policy_code

        class Tweaked(GreedyBalance):
            """A subclass that may override the share rule."""

        assert compiled_policy_code(GreedyBalance()) is not None
        assert compiled_policy_code(Tweaked()) is None

    def test_on_with_unknown_policy_raises(self):
        from repro.kernels import decide

        class NotRegistered:
            name = "custom"

        with pytest.raises(CompiledUnsupportedError):
            decide(NotRegistered(), "on")

    def test_on_with_record_shares_raises(self):
        from repro.algorithms import get_policy
        from repro.kernels import decide

        with pytest.raises(CompiledUnsupportedError):
            decide(get_policy("greedy-balance"), "on", record_shares=True)

    def test_record_shares_reason_under_auto(self, monkeypatch):
        from repro.algorithms import get_policy
        from repro.kernels import dispatch

        monkeypatch.setattr(dispatch, "NUMBA_AVAILABLE", True)
        decision = dispatch.decide(
            get_policy("greedy-balance"), "auto", record_shares=True
        )
        assert decision.code is None and decision.reason == "record-shares"


class TestBackendFallbackTelemetry:
    """Auto-mode fallbacks surface in the compiled.fallbacks counter."""

    def test_fallback_counter(self, monkeypatch):
        from repro.backends import VectorBackend
        from repro.kernels import dispatch
        from repro.telemetry import TelemetrySession, use_session

        monkeypatch.setattr(dispatch, "NUMBA_AVAILABLE", False)
        inst = uniform_instance(2, 3, seed=0)
        session = TelemetrySession()
        with use_session(session):
            VectorBackend().run(
                inst, "greedy-balance", record_shares=False, compiled="auto"
            )
        samples = {
            tuple(sorted(labels.items())): metric.value
            for name, labels, metric in session.metrics.items()
            if name == "compiled.fallbacks"
        }
        assert samples.get((("reason", "numba-missing"),)) == 1

    def test_on_run_emits_compiled_counters(self):
        from repro.backends import VectorBackend
        from repro.telemetry import TelemetrySession, use_session

        inst = uniform_instance(2, 3, seed=0)
        session = TelemetrySession()
        with use_session(session):
            result = VectorBackend().run(
                inst, "greedy-balance", record_shares=False, compiled="on"
            )
        counters = {
            name: metric.value
            for name, labels, metric in session.metrics.items()
            if name in ("compiled.runs", "compiled.steps")
        }
        assert counters.get("compiled.runs") == 1
        assert counters.get("compiled.steps") == result.makespan
