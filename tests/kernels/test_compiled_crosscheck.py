"""Seeded crosscheck matrix for the fused compiled driver.

The acceptance bar for the compiled tier: a ``compiled="on"`` vector
run must agree with the exact Fraction backend (integer makespans, so
equality) and with the per-step ``compiled="off"`` vector run within
1e-9 on every objective -- across every built-in policy,
``k in {1, 2, 3}``, the arrival axis, weighted and deadline-carrying
jobs, and ragged batched runs.  Well over 100 seeded cases run here;
each case audits one (policy, instance) pair through all three
engines.
"""

import pytest

from repro.algorithms import available_policies, get_policy
from repro.backends import ExactBackend, VectorBackend, run_batch
from repro.generators import (
    bag_instance,
    general_size_instance,
    multi_resource_instance,
    uniform_instance,
    with_arrivals,
    with_deadlines,
    with_resources,
    with_weights,
)

RTOL = 1e-9

OBJECTIVES = ("makespan", "weighted-flow", "tardiness")


def assert_compiled_matches(instance, policy, *, objectives=OBJECTIVES):
    """One instance through exact, per-step vector, and fused driver."""
    exact = ExactBackend().run(
        instance, policy, record_shares=False, objectives=objectives
    )
    backend = VectorBackend()
    off = backend.run(
        instance,
        policy,
        record_shares=False,
        objectives=objectives,
        compiled="off",
    )
    on = backend.run(
        instance,
        policy,
        record_shares=False,
        objectives=objectives,
        compiled="on",
    )
    assert on.makespan == off.makespan == exact.makespan, policy.name
    assert on.completion_steps == off.completion_steps, policy.name
    for name in objectives:
        got = on.objective_values[name]
        assert got == pytest.approx(
            off.objective_values[name], rel=RTOL, abs=RTOL
        ), (policy.name, name)
        assert float(got) == pytest.approx(
            float(exact.objective_values[name]), rel=RTOL, abs=RTOL
        ), (policy.name, name)
    return on


class TestAllPoliciesSingleResource:
    """Every built-in policy over seeded k=1 instances."""

    @pytest.mark.parametrize("policy_name", sorted(available_policies()))
    @pytest.mark.parametrize("seed", range(6))
    def test_uniform(self, policy_name, seed):
        inst = uniform_instance(2 + seed % 4, 2 + seed % 5, seed=31 * seed)
        assert_compiled_matches(inst, get_policy(policy_name))

    @pytest.mark.parametrize("policy_name", sorted(available_policies()))
    @pytest.mark.parametrize("seed", range(3))
    def test_general_sizes(self, policy_name, seed):
        inst = general_size_instance(3, 4, seed=47 * seed + 1)
        assert_compiled_matches(inst, get_policy(policy_name))


class TestAxes:
    """Arrival, weight, and deadline axes through the fused driver."""

    @pytest.mark.parametrize(
        "policy_name", ["greedy-balance", "round-robin", "proportional-share"]
    )
    @pytest.mark.parametrize("seed", range(5))
    def test_arrivals(self, policy_name, seed):
        inst = with_arrivals(
            uniform_instance(3, 4, seed=seed), max_release=6, seed=900 + seed
        )
        assert_compiled_matches(inst, get_policy(policy_name))

    @pytest.mark.parametrize("policy_name", ["weighted-srpt", "greedy-balance"])
    @pytest.mark.parametrize("seed", range(5))
    def test_weights(self, policy_name, seed):
        inst = with_weights(bag_instance(3, 4, seed=seed), seed=40 + seed)
        assert_compiled_matches(inst, get_policy(policy_name))

    @pytest.mark.parametrize("profile", ["loose", "tight"])
    @pytest.mark.parametrize("seed", range(4))
    def test_deadlines(self, profile, seed):
        inst = with_deadlines(
            uniform_instance(3, 4, seed=seed), profile=profile, seed=70 + seed
        )
        assert_compiled_matches(
            inst,
            get_policy("edf-waterfill"),
            objectives=("makespan", "tardiness", "deadline-misses"),
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_arrivals_and_weights(self, seed):
        inst = with_weights(
            with_arrivals(
                uniform_instance(4, 3, seed=seed), max_release=5, seed=seed
            ),
            seed=seed,
        )
        assert_compiled_matches(inst, get_policy("weighted-srpt"))


class TestMultiResource:
    """k in {2, 3} instances through the multi-resource fill kernel."""

    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize(
        "profile", ["independent", "correlated", "anti-correlated"]
    )
    @pytest.mark.parametrize("seed", range(3))
    def test_multires(self, k, profile, seed):
        inst = multi_resource_instance(3, 4, k, profile=profile, seed=seed)
        assert_compiled_matches(inst, get_policy("greedy-balance"))

    @pytest.mark.parametrize(
        "policy_name",
        ["proportional-share", "greedy-finish-jobs", "round-robin"],
    )
    @pytest.mark.parametrize("seed", range(3))
    def test_multires_policies(self, policy_name, seed):
        inst = with_resources(
            uniform_instance(3, 4, seed=seed), 2, seed=seed + 5
        )
        assert_compiled_matches(inst, get_policy(policy_name))

    @pytest.mark.parametrize("seed", range(3))
    def test_multires_arrivals(self, seed):
        inst = with_resources(
            with_arrivals(
                uniform_instance(3, 4, seed=seed), max_release=6, seed=seed
            ),
            2,
            profile="correlated",
            seed=seed,
        )
        assert_compiled_matches(inst, get_policy("greedy-balance"))


class TestBatchedCompiled:
    """Batched compiled runs, including ragged batches and B=1."""

    @pytest.mark.parametrize("policy_name", ["greedy-balance", "edf-waterfill"])
    @pytest.mark.parametrize("seed", range(3))
    def test_ragged_batch(self, policy_name, seed):
        insts = [
            uniform_instance(3, 4, seed=seed),
            uniform_instance(2, 6, seed=seed + 1),
            multi_resource_instance(4, 3, 2, seed=seed),
            with_arrivals(
                uniform_instance(3, 3, seed=seed + 2), max_release=5, seed=seed
            ),
        ]
        off = run_batch(insts, policy_name, objectives=OBJECTIVES, compiled="off")
        on = run_batch(insts, policy_name, objectives=OBJECTIVES, compiled="on")
        assert on.compiled and not off.compiled
        assert (on.makespans == off.makespans).all()
        for name in OBJECTIVES:
            assert on.objective_values[name] == pytest.approx(
                off.objective_values[name], rel=RTOL, abs=RTOL
            )
        assert on.steps == int(on.makespans.max())
        assert on.lane_steps == int(on.makespans.sum())

    def test_single_lane_batch(self):
        inst = uniform_instance(3, 4, seed=123)
        on = run_batch([inst], "greedy-balance", compiled="on")
        ref = VectorBackend().run(inst, "greedy-balance", compiled="off")
        assert on.lanes == 1 and int(on.makespans[0]) == ref.makespan


class TestRunPolicyEntry:
    """The run_policy entry point honors the compiled argument."""

    @pytest.mark.parametrize("seed", range(3))
    def test_run_policy_on_off_agree(self, seed):
        from repro.core.simulator import run_policy

        inst = uniform_instance(3, 4, seed=seed)
        on = run_policy(
            inst,
            "greedy-balance",
            backend="vector",
            compiled="on",
            record_shares=False,
        )
        off = run_policy(inst, "greedy-balance", backend="vector", compiled="off")
        assert on.makespan == off.makespan
        assert on.shares is None  # the fused driver records completions

    def test_compiled_on_rejects_exact_backend(self):
        from repro.core.simulator import run_policy
        from repro.exceptions import BackendError

        inst = uniform_instance(2, 2, seed=0)
        with pytest.raises(BackendError):
            run_policy(inst, "greedy-balance", backend="exact", compiled="on")

    def test_cross_validate_compiled(self):
        from repro.backends import cross_validate

        inst = uniform_instance(3, 4, seed=5)
        check = cross_validate(inst, "greedy-balance", compiled="on")
        assert check.ok
        assert check.max_share_deviation is None  # shares not compared


class TestDriverLimits:
    """The fused driver mirrors the interpreted kernel's aborts."""

    def test_step_limit(self):
        from repro.exceptions import SimulationLimitError

        inst = uniform_instance(3, 6, seed=0)
        with pytest.raises(SimulationLimitError, match="compiled"):
            VectorBackend().run(
                inst,
                "greedy-balance",
                compiled="on",
                record_shares=False,
                max_steps=1,
            )

    def test_limit_matches_interpreted(self):
        """Both engines abort (or not) at exactly the same budget."""
        from repro.exceptions import SimulationLimitError

        inst = uniform_instance(3, 4, seed=9)
        backend = VectorBackend()
        need = backend.run(
            inst, "greedy-balance", compiled="off", record_shares=False
        ).makespan
        for budget in (need - 1, need):
            outcomes = []
            for mode in ("off", "on"):
                try:
                    backend.run(
                        inst,
                        "greedy-balance",
                        compiled=mode,
                        record_shares=False,
                        max_steps=budget,
                    )
                    outcomes.append("ok")
                except SimulationLimitError:
                    outcomes.append("limit")
            assert outcomes[0] == outcomes[1], budget


def test_case_count_floor():
    """The matrix above keeps its >= 100 seeded-case floor."""
    policies = len(available_policies())
    count = (
        policies * 6  # TestAllPoliciesSingleResource.test_uniform
        + policies * 3  # test_general_sizes
        + 3 * 5  # arrivals
        + 2 * 5  # weights
        + 2 * 4  # deadlines
        + 3  # arrivals+weights
        + 2 * 3 * 3  # multires
        + 3 * 3  # multires policies
        + 3  # multires arrivals
        + 2 * 3  # ragged batches
    )
    assert count >= 100, count
