"""Unit tests for the kernel primitives and the dispatch helpers.

The water-fill kernels are checked against brute-force sequential
references; ``stable_order``/``round_key`` against ``np.lexsort`` and
the interpreted policies' ``sort_key``; the dispatch helpers against
their documented contracts (mode normalization, instance flattening,
completion replay ordering).
"""

import numpy as np
import pytest

from repro.generators import uniform_instance, with_arrivals, with_deadlines
from repro.kernels import (
    COMPILED_MODES,
    fill_multi,
    fill_single,
    instance_tables,
    normalize_compiled,
    replay_run,
    round_key,
    run_fused_instance,
    stable_order,
)


class TestNormalizeCompiled:
    def test_modes(self):
        assert COMPILED_MODES == ("auto", "on", "off")
        assert normalize_compiled(None) == "auto"
        assert normalize_compiled(None, default="off") == "off"
        assert normalize_compiled(True) == "on"
        assert normalize_compiled(False) == "off"
        for mode in COMPILED_MODES:
            assert normalize_compiled(mode) == mode

    @pytest.mark.parametrize("bad", ["ON", "yes", 1, 0.5, object()])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            normalize_compiled(bad)


class TestOrderingPrimitives:
    def test_round_key_matches_sort_key(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 3, size=256)
        assert np.array_equal(round_key(values), np.round(values, 9))

    @pytest.mark.parametrize("seed", range(10))
    def test_stable_order_matches_lexsort(self, seed):
        rng = np.random.default_rng(seed)
        primary = rng.integers(0, 5, size=32).astype(np.float64)
        secondary = rng.integers(0, 5, size=32).astype(np.float64)
        got = stable_order(primary, secondary)
        want = np.lexsort((secondary, primary))
        assert np.array_equal(got, want)


class TestFillKernels:
    @pytest.mark.parametrize("seed", range(20))
    def test_fill_single_reference(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 9))
        remaining = rng.uniform(0, 1.5, m)
        req = rng.uniform(0, 1.0, m)
        eligible = rng.random(m) < 0.8
        order = np.argsort(rng.random(m)).astype(np.int64)
        shares = fill_single(remaining, req, eligible, order)
        # Reference: sequential unit-capacity grants in order.
        want = np.zeros(m)
        left = 1.0
        for i in order:
            if not eligible[i] or left <= 0.0:
                continue
            grant = min(left, req[i], remaining[i])
            if grant > 0.0:
                want[i] = grant
                left -= grant
        assert np.allclose(shares, want, atol=0, rtol=0)
        assert shares.sum() <= 1.0 + 1e-12

    @pytest.mark.parametrize("seed", range(20))
    def test_fill_multi_reference(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(2, 4))
        m = int(rng.integers(1, 7))
        remaining = rng.uniform(0, 1.5, m)
        reqk = rng.uniform(0, 0.8, (k, m)) * (rng.random((k, m)) < 0.8)
        rstar = reqk.max(axis=0)
        eligible = (rng.random(m) < 0.85) & (rstar > 0)
        order = np.argsort(rng.random(m)).astype(np.int64)
        shares = fill_multi(remaining, rstar, reqk, eligible, order)
        want = np.zeros((k, m))
        left = np.ones(k)
        for i in order:
            if not eligible[i] or rstar[i] <= 0.0:
                continue
            fraction = min(1.0, remaining[i] / rstar[i])
            for lane in range(k):
                if reqk[lane, i] > 0.0:
                    fraction = min(fraction, left[lane] / reqk[lane, i])
            if fraction <= 0.0:
                continue
            grant = fraction * reqk[:, i]
            want[:, i] = grant
            left -= grant
            np.maximum(left, 0.0, out=left)
        assert np.allclose(shares, want, atol=0, rtol=0)
        assert (shares.sum(axis=1) <= 1.0 + 1e-12).all()


class TestInstanceTables:
    def test_shapes_and_values(self):
        inst = with_deadlines(
            with_arrivals(uniform_instance(3, 4, seed=1), max_release=5, seed=2),
            seed=3,
        )
        num_jobs, release, work, req, reqk, wgt, dl = instance_tables(inst)
        m, nmax = inst.num_processors, inst.max_jobs
        assert num_jobs.shape == (m,) and release.shape == (m,)
        assert work.shape == req.shape == wgt.shape == dl.shape == (m, nmax)
        assert reqk.shape == (inst.num_resources, m, nmax)
        for i, queue in enumerate(inst.queues):
            assert num_jobs[i] == len(queue)
            for j, job in enumerate(queue):
                assert work[i, j] == float(job.work)
                assert req[i, j] == float(job.requirement)

    def test_k1_reqk_is_a_view(self):
        _, _, _, req, reqk, _, _ = instance_tables(uniform_instance(2, 3, seed=0))
        assert reqk.base is req  # no copy for the single-resource model


class TestReplayRun:
    def test_event_order_and_map(self):
        completion = np.array([[2, 5, -1], [0, 2, -1]], dtype=np.int64)
        events = []

        class Observer:
            def on_complete(self, job, t):
                events.append(("complete", job, t))

            def on_finish(self, makespan):
                events.append(("finish", makespan))

        steps = replay_run(completion, 6, [Observer()])
        assert steps == {(0, 0): 2, (0, 1): 5, (1, 0): 0, (1, 1): 2}
        # Ascending step, then ascending processor; finish last.
        assert events == [
            ("complete", (1, 0), 0),
            ("complete", (0, 0), 2),
            ("complete", (1, 1), 2),
            ("complete", (0, 1), 5),
            ("finish", 6),
        ]


class TestRunFusedInstance:
    def test_matches_vector_makespan(self):
        from repro.backends import VectorBackend
        from repro.kernels import compiled_policy_code
        from repro.algorithms import get_policy

        inst = uniform_instance(3, 4, seed=11)
        policy = get_policy("greedy-balance")
        code = compiled_policy_code(policy)
        makespan, completion = run_fused_instance(inst, code, tol=1e-9)
        ref = VectorBackend().run(
            inst, policy, record_shares=False, compiled="off"
        )
        assert makespan == ref.makespan
        assert (completion >= 0).sum() == inst.total_jobs

    def test_step_limit_raises(self):
        from repro.exceptions import SimulationLimitError
        from repro.kernels import compiled_policy_code
        from repro.algorithms import get_policy

        inst = uniform_instance(3, 4, seed=11)
        code = compiled_policy_code(get_policy("greedy-balance"))
        with pytest.raises(SimulationLimitError):
            run_fused_instance(inst, code, tol=1e-9, max_steps=1)
