"""Tests for the compiled kernel tier (src/repro/kernels)."""
