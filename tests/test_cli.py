"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core import Instance
from repro.io import save_instance


@pytest.fixture
def instance_file(tmp_path):
    path = tmp_path / "instance.json"
    save_instance(
        Instance.from_requirements([["9/10", "1/10"], ["1/10", "9/10"]]), path
    )
    return path


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "FIG3" in out
        assert "greedy-balance" in out


class TestExperiment:
    def test_runs_and_prints(self, capsys):
        assert main(["experiment", "FIG1"]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out

    def test_csv_output(self, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        assert main(["experiment", "FIG1", "--csv", str(csv_path)]) == 0
        assert csv_path.read_text().startswith("component")

    def test_unknown_experiment(self, capsys):
        with pytest.raises(KeyError):
            main(["experiment", "FIG99"])


class TestSolve:
    def test_two_processor_instance(self, instance_file, capsys):
        assert main(["solve", str(instance_file)]) == 0
        out = capsys.readouterr().out
        assert "optimal makespan: 2" in out


class TestSchedule:
    def test_default_policy(self, instance_file, capsys):
        assert main(["schedule", str(instance_file)]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "metrics" in out

    def test_svg_and_json_outputs(self, instance_file, tmp_path, capsys):
        svg = tmp_path / "sched.svg"
        js = tmp_path / "sched.json"
        assert (
            main(
                [
                    "schedule",
                    str(instance_file),
                    "--policy",
                    "round-robin",
                    "--svg",
                    str(svg),
                    "--json",
                    str(js),
                ]
            )
            == 0
        )
        assert svg.read_text().startswith("<svg")
        data = json.loads(js.read_text())
        assert data["format"] == "crsharing-schedule"


class TestRunAliasAndArrivals:
    def test_run_is_an_alias_of_schedule(self, instance_file, capsys):
        assert main(["run", str(instance_file)]) == 0
        run_out = capsys.readouterr().out
        assert main(["schedule", str(instance_file)]) == 0
        sched_out = capsys.readouterr().out
        assert run_out == sched_out
        assert "makespan" in run_out

    def test_run_with_arrivals_exact(self, instance_file, capsys):
        assert (
            main(
                [
                    "run",
                    str(instance_file),
                    "--arrivals",
                    "4",
                    "--arrival-seed",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "arrivals: releases=" in out
        assert "makespan" in out

    def test_run_with_arrivals_vector(self, instance_file, capsys):
        assert (
            main(
                [
                    "run",
                    str(instance_file),
                    "--arrivals",
                    "4",
                    "--arrival-seed",
                    "1",
                    "--backend",
                    "vector",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "feasible (tolerance 1e-9): True" in out

    def test_batch_with_arrivals(self, capsys):
        assert (
            main(
                [
                    "batch",
                    "--count",
                    "4",
                    "--m",
                    "3",
                    "--n",
                    "3",
                    "--arrivals",
                    "5",
                    "--arrival-seed",
                    "2",
                    "--workers",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "arrivals=5" in out
        assert "mean_ratio" in out

    def test_crosscheck_with_arrivals(self, capsys):
        assert (
            main(
                [
                    "crosscheck",
                    "--count",
                    "5",
                    "--m",
                    "3",
                    "--n",
                    "3",
                    "--arrivals",
                    "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "arrivals=5" in out
        assert "result: OK" in out

    def test_arr_experiment_listed(self, capsys):
        assert main(["list"]) == 0
        assert "ARR" in capsys.readouterr().out


class TestMultiResourceFlags:
    def test_list_groups_and_mentions_resources(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "experiments (" in out
        assert "policies (" in out
        assert "backends (" in out
        assert "--resources K" in out
        assert "MULTIRES" in out

    def test_run_with_resources_exact(self, instance_file, capsys):
        assert main(["run", str(instance_file), "--resources", "2"]) == 0
        out = capsys.readouterr().out
        assert "resources: lifted to k=2" in out
        assert "feasible (tolerance 1e-9): True" in out

    def test_run_with_resources_vector(self, instance_file, capsys):
        assert (
            main(
                [
                    "run",
                    str(instance_file),
                    "--resources",
                    "3",
                    "--resource-profile",
                    "anti-correlated",
                    "--backend",
                    "vector",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "feasible (tolerance 1e-9): True" in out

    def test_run_resources_compose_with_arrivals(self, instance_file, capsys):
        assert (
            main(
                [
                    "run",
                    str(instance_file),
                    "--resources",
                    "2",
                    "--arrivals",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "resources: lifted to k=2" in out
        assert "arrivals: releases=" in out

    def test_batch_with_resources(self, capsys):
        assert (
            main(
                [
                    "batch",
                    "--count",
                    "4",
                    "--m",
                    "3",
                    "--n",
                    "3",
                    "--resources",
                    "2",
                    "--workers",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "resources=2" in out
        assert "mean_ratio" in out

    def test_crosscheck_with_resources(self, capsys):
        assert (
            main(
                [
                    "crosscheck",
                    "--count",
                    "5",
                    "--m",
                    "3",
                    "--n",
                    "3",
                    "--resources",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "resources=3" in out
        assert "result: OK" in out

    def test_multires_experiment_runs(self, capsys):
        # Keep it tiny: the registry default would be slower.
        from repro.experiments import get_experiment

        result = get_experiment("MULTIRES").run(
            m=3, n=3, resources=(1, 2), seeds=(0,)
        )
        assert result.verdict


class TestVerify:
    def test_valid_schedule(self, instance_file, tmp_path, capsys):
        js = tmp_path / "sched.json"
        main(["schedule", str(instance_file), "--json", str(js)])
        capsys.readouterr()
        assert main(["verify", str(js)]) == 0
        out = capsys.readouterr().out
        assert "feasible: True" in out
        assert "balanced:" in out

    def test_corrupted_schedule(self, instance_file, tmp_path, capsys):
        js = tmp_path / "sched.json"
        main(["schedule", str(instance_file), "--json", str(js)])
        data = json.loads(js.read_text())
        data["shares"] = data["shares"][:-1]
        js.write_text(json.dumps(data))
        # Loading re-validates; the CLI surfaces the failure.
        with pytest.raises(Exception):
            main(["verify", str(js)])


class TestCertify:
    def test_certify_instance_file(self, instance_file, capsys):
        assert main(["certify", str(instance_file)]) == 0
        out = capsys.readouterr().out
        assert "PROVED optimal" in out
        assert "offline optimum" in out
        assert "witness order" in out

    def test_certify_generated_instance(self, capsys):
        assert main(["certify", "--m", "2", "--n", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "uniform(m=2, n=3, seed=1)" in out
        assert "PROVED optimal" in out

    def test_certify_policy_mode(self, instance_file, capsys):
        assert (
            main(["certify", str(instance_file), "--policy", "round-robin"])
            == 0
        )
        out = capsys.readouterr().out
        assert "best order for policy 'round-robin'" in out
        assert "epsilon mode" in out

    def test_certify_json_and_trace(self, instance_file, tmp_path, capsys):
        js = tmp_path / "cert.json"
        trace = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "certify",
                    str(instance_file),
                    "--json",
                    str(js),
                    "--trace",
                    str(trace),
                ]
            )
            == 0
        )
        capsys.readouterr()
        cert = json.loads(js.read_text())
        assert cert["proved"] is True
        assert cert["value"] >= 1
        assert any(
            json.loads(line)["name"] == "certify.opt"
            for line in trace.read_text().splitlines()
        )

    def test_certify_budget_exhaustion_exits_nonzero(self, capsys):
        # An instance needing real search, strangled to one node.
        code = main(
            [
                "certify",
                "--m",
                "2",
                "--n",
                "4",
                "--grid",
                "7",
                "--seed",
                "1",
                "--max-nodes",
                "1",
            ]
        )
        out = capsys.readouterr().out
        if "upper bound only" in out:
            assert code == 1
        else:  # the seed closed at the root; still a proof, exit 0
            assert code == 0

    def test_crosscheck_certify_flag(self, capsys):
        assert (
            main(
                [
                    "crosscheck",
                    "--count",
                    "4",
                    "--m",
                    "2",
                    "--n",
                    "3",
                    "--certify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "certified: 4/4 proved" in out
        assert "result: OK" in out


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1 instance" in out
        assert "hypergraph" in out


class TestObjectiveFlags:
    def test_list_mentions_objectives(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "objectives (" in out
        assert "weighted-flow" in out
        assert "--objective NAME" in out
        assert "FLOW" in out and "DEADLINE" in out

    def test_run_with_tardiness_objective(self, instance_file, capsys):
        assert (
            main(
                [
                    "run",
                    str(instance_file),
                    "--objective",
                    "tardiness",
                    "--deadline-profile",
                    "tight",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "deadlines: tight profile" in out
        assert "objective tardiness:" in out

    def test_run_vector_with_flow_objective(self, instance_file, capsys):
        assert (
            main(
                [
                    "run",
                    str(instance_file),
                    "--backend",
                    "vector",
                    "--objective",
                    "weighted-flow",
                    "--weights-profile",
                    "skewed",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "weights: skewed profile" in out
        assert "objective weighted-flow:" in out

    def test_default_run_output_has_no_objective_noise(self, instance_file, capsys):
        assert main(["run", str(instance_file)]) == 0
        out = capsys.readouterr().out
        assert "objective " not in out

    def test_batch_with_objective(self, capsys):
        assert (
            main(
                [
                    "batch",
                    "--count",
                    "3",
                    "--m",
                    "3",
                    "--n",
                    "3",
                    "--workers",
                    "1",
                    "--objective",
                    "weighted-flow",
                    "--weights-profile",
                    "uniform",
                    "--arrival-rate",
                    "1.0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "objective=weighted-flow" in out
        assert "objective weighted-flow: mean_value=" in out
        assert "poisson(rate=1)" in out

    def test_crosscheck_with_objective(self, capsys):
        assert (
            main(
                [
                    "crosscheck",
                    "--count",
                    "4",
                    "--m",
                    "3",
                    "--n",
                    "3",
                    "--objective",
                    "tardiness",
                    "--deadline-profile",
                    "mixed",
                    "--policy",
                    "edf-waterfill",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "objective=tardiness" in out
        assert "max relative objective error" in out
        assert "result: OK" in out

    def test_flow_and_deadline_experiments_run(self, capsys):
        assert main(["experiment", "FLOW"]) == 0
        assert "REPRODUCED" in capsys.readouterr().out
        assert main(["experiment", "DEADLINE"]) == 0
        assert "REPRODUCED" in capsys.readouterr().out


class TestBenchReport:
    def test_reports_stores(self, tmp_path, capsys):
        (tmp_path / "BENCH_demo.json").write_text(
            json.dumps(
                {
                    "benchmark": "demo",
                    "generated_at": "2026-07-31T00:00:00+00:00",
                    "rows": [{"m": 8, "speedup": 42.0}],
                }
            )
        )
        assert main(["bench-report", "--results", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert "speedup=42.0" in out

    def test_empty_directory_fails(self, tmp_path, capsys):
        assert main(["bench-report", "--results", str(tmp_path)]) == 1
        assert "no BENCH_*.json" in capsys.readouterr().out

    def test_repo_results_directory_summarizes(self, capsys):
        from pathlib import Path

        results = Path(__file__).resolve().parents[1] / "benchmarks" / "results"
        if not any(results.glob("BENCH_*.json")):
            import pytest

            pytest.skip("no benchmark stores present")
        assert main(["bench-report", "--results", str(results)]) == 0
        assert "benchmark stores" in capsys.readouterr().out


class TestServeAndReplay:
    TRACE = (
        '{"t": 0, "job": {"r": "1/2", "p": 1}}\n'
        '{"t": 1, "job": {"r": "3/4", "p": 2}}\n'
        '{"t": 4, "job": {"r": "1/4", "p": 1}}\n'
    )

    def test_poisson_stream_report(self, capsys):
        assert main(["serve", "--rate", "2", "--count", "30"]) == 0
        out = capsys.readouterr().out
        assert "poisson(rate=2" in out
        assert "submitted=30" in out
        assert "dropped=0" in out

    def test_trace_replay_and_event_log(self, tmp_path, capsys):
        trace = tmp_path / "arrivals.jsonl"
        trace.write_text(self.TRACE)
        log = tmp_path / "events.jsonl"
        assert main(["serve", str(trace), "--event-log", str(log)]) == 0
        out = capsys.readouterr().out
        assert "(3 arrivals)" in out
        assert log.exists()
        assert main(["replay", str(log)]) == 0
        assert "deterministic" in capsys.readouterr().out

    def test_tampered_log_fails_replay(self, tmp_path, capsys):
        trace = tmp_path / "arrivals.jsonl"
        trace.write_text(self.TRACE)
        log = tmp_path / "events.jsonl"
        assert main(["serve", str(trace), "--event-log", str(log)]) == 0
        capsys.readouterr()
        tampered = log.read_text().replace(
            '"admitted": true', '"admitted": false', 1
        )
        log.write_text(tampered)
        assert main(["replay", str(log)]) == 1
        assert "diverged" in capsys.readouterr().out

    def test_telemetry_trace_does_not_clobber_the_arrival_trace(
        self, tmp_path, capsys
    ):
        # The serve positional (input trace) and the telemetry --trace
        # (output file) must stay independent argparse dests.
        trace = tmp_path / "arrivals.jsonl"
        trace.write_text(self.TRACE)
        out_trace = tmp_path / "telemetry.jsonl"
        assert main(["serve", str(trace), "--trace", str(out_trace)]) == 0
        capsys.readouterr()
        assert trace.read_text() == self.TRACE
        assert out_trace.exists()

    def test_json_report(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        assert main(
            ["serve", "--rate", "1", "--count", "10", "--json", str(report)]
        ) == 0
        capsys.readouterr()
        doc = json.loads(report.read_text())
        assert doc["submitted"] == 10
        assert doc["dropped_events"] == 0

    def test_admission_listed(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "utilization-cap" in out
        assert "deadline-feasibility" in out
